"""`repro.cluster`: the multi-machine substrate.

Three subsystems independently reinvented the same two primitives --
atomic-rename JSON documents (QoS coordinator, shard metrics exchange)
and per-pid append-only JSONL spools with a merging follower (telemetry
bus, sharded metrics).  This package owns them once:

* :mod:`repro.cluster.documents` -- ``atomic_write_json``/``pid_alive``,
  the staleness horizons, a generalized publisher-liveness rule that
  works for *remote* publishers (where a pid means nothing), and a
  :class:`DocumentStore` with corrupt-document count-and-drop over a
  pluggable transport.
* :mod:`repro.cluster.spool` -- :class:`SpoolWriter` (per-writer
  monotonic sequence numbers) and :class:`SpoolFollower` (merging tail
  whose cross-file order survives cross-machine clock skew).
* :mod:`repro.cluster.membership` -- :class:`ClusterMember` identity and
  a heartbeat :class:`MembershipRoster`.
* :mod:`repro.cluster.transport` -- :class:`LocalDirTransport` (today's
  shared directory, bit-compatible with existing spools) and
  :class:`SocketTransport` (length-prefixed JSON frames over TCP with
  the deadline/retry/backoff client vocabulary).
* :mod:`repro.cluster.agent` -- the node-local asyncio TCP agent serving
  document GET/PUT, spool append and work leases.
* :mod:`repro.cluster.worker` -- the remote sweep executor pair:
  :class:`SweepHub` (parent side) and :class:`RemoteWorker` (leases
  :class:`~repro.eval.sweep.SweepPoint` groups and streams results back
  into the parent's content-addressed store).

``transport``/``agent``/``worker`` import serving vocabulary and are
deliberately *not* imported here -- the light, stdlib-only layers below
stay importable from anywhere without cycles.
"""

from repro.cluster.documents import (
    METRICS_STALE_AFTER_S,
    QOS_STALE_AFTER_S,
    DocumentCorrupt,
    DocumentStore,
    atomic_write_json,
    local_host,
    pid_alive,
    publisher_alive,
)
from repro.cluster.membership import ClusterMember, MembershipRoster
from repro.cluster.spool import (
    DEFAULT_ROTATE_BYTES,
    Event,
    SpoolFollower,
    SpoolWriter,
)

__all__ = [
    "METRICS_STALE_AFTER_S",
    "QOS_STALE_AFTER_S",
    "DocumentCorrupt",
    "DocumentStore",
    "atomic_write_json",
    "local_host",
    "pid_alive",
    "publisher_alive",
    "ClusterMember",
    "MembershipRoster",
    "DEFAULT_ROTATE_BYTES",
    "Event",
    "SpoolFollower",
    "SpoolWriter",
]
