"""Replicated JSON documents: the cluster's shared-state primitive.

Every piece of cross-process shared state in the repo -- QoS shard
documents, metrics exchange payloads, membership heartbeats, sweep work
leases -- is one small JSON document replaced atomically as a whole.
This module owns the primitive once:

* :func:`atomic_write_json` -- write-to-temp + ``os.replace``; readers
  never see a torn file (previously cloned in ``telemetry/bus.py``,
  ``telemetry/coordinator.py`` and ``serve/sharding.py``).
* :data:`QOS_STALE_AFTER_S` / :data:`METRICS_STALE_AFTER_S` -- the two
  staleness horizons those subsystems had each hardcoded.
* :func:`publisher_alive` -- the liveness rule generalized to remote
  publishers: a document is live while its heartbeat is fresh, and a
  *local* publisher is additionally required to have a live pid (fast
  eviction on crash).  A remote publisher's pid means nothing here, so
  staleness is its only death certificate.
* :class:`DocumentStore` -- get/put/list/delete over a pluggable
  transport (:class:`~repro.cluster.transport.LocalDirTransport` today,
  :class:`~repro.cluster.transport.SocketTransport` across machines)
  with the corrupt-document count-and-drop contract: a document that
  fails to parse is counted and excluded, never raised into a QoS tick
  or a metrics merge.
"""

from __future__ import annotations

import json
import os
import socket as socket_module
import time

#: A QoS shard document older than this is excluded from the quorum (a
#: shard that stopped ticking must not pin the service to its last
#: desire).
QOS_STALE_AFTER_S = 5.0

#: A metrics payload older than this is reported but flagged stale (a
#: shard that crashed stops publishing; its last counters remain valid
#: history until reaped).
METRICS_STALE_AFTER_S = 10.0

_LOCAL_HOST: str | None = None


def local_host() -> str:
    """This machine's name, as stamped into published documents."""
    global _LOCAL_HOST
    if _LOCAL_HOST is None:
        try:
            _LOCAL_HOST = socket_module.gethostname() or "localhost"
        except OSError:  # pragma: no cover - no hostname configured
            _LOCAL_HOST = "localhost"
    return _LOCAL_HOST


class DocumentCorrupt(ValueError):
    """A stored document exists but does not parse to a JSON object."""


def atomic_write_json(directory: str, filename: str, document: dict) -> None:
    """Atomically replace ``directory/filename`` with one JSON document.

    Write-to-temp + ``os.replace``: readers never see a torn file.  The
    shared primitive behind the sharding metrics exchange, the QoS
    coordination channel and the cluster document store.
    """
    import tempfile

    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=directory,
        prefix=f".{filename}.",
        suffix=".tmp",
        delete=False,
        encoding="utf-8",
    )
    try:
        json.dump(document, handle)
        handle.close()
        os.replace(handle.name, os.path.join(directory, filename))
    except BaseException:  # pragma: no cover - directory torn down
        handle.close()
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this machine."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's pid
        return True
    except OSError:  # pragma: no cover - non-POSIX
        return False
    return True


def publisher_process_alive(document: dict, host: str | None = None):
    """Whether the document's publishing process is alive.

    Returns ``True``/``False`` for a publisher on *this* machine (pid
    probe), and ``None`` for a remote publisher -- its process liveness
    is unknowable here, so callers must fall back to heartbeat
    staleness.  Documents without a ``host`` field predate the cluster
    substrate and are treated as local.
    """
    doc_host = document.get("host")
    if doc_host is not None and doc_host != (host or local_host()):
        return None
    try:
        pid = int(document.get("pid", 0) or 0)
    except (TypeError, ValueError):
        return False
    if not pid:
        # Published before pids were recorded: nothing to probe.
        return None
    return pid_alive(pid)


def publisher_alive(
    document: dict,
    stale_after_s: float,
    now: float | None = None,
    host: str | None = None,
) -> bool:
    """The generalized liveness rule for one published document.

    Live means: the heartbeat (``published_at``) is within
    ``stale_after_s``, *and* -- when the publisher runs on this machine
    -- its pid still names a live process.  A remote publisher is judged
    on freshness alone: the pid/staleness eviction the QoS coordinator
    used for local shards, extended to nodes whose pids we cannot probe.
    """
    if now is None:
        now = time.time()
    try:
        published_at = float(document.get("published_at", 0.0))
    except (TypeError, ValueError):
        return False
    if now - published_at > stale_after_s:
        return False
    return publisher_process_alive(document, host=host) is not False


class DocumentStore:
    """Named JSON documents in one *space*, over a pluggable transport.

    A space is a flat namespace of small documents (``shard-0.json``,
    ``member-a.json``, ...) mapped by the transport onto a directory --
    local (:class:`~repro.cluster.transport.LocalDirTransport`,
    bit-compatible with the pre-cluster spool directories) or behind a
    node agent (:class:`~repro.cluster.transport.SocketTransport`).

    The store owns the corrupt-document contract shared by every
    consumer: :meth:`get` returns ``None`` for a document that exists
    but does not parse, counting it in :attr:`corrupt_documents`;
    callers that reject *structurally* invalid documents count them into
    the same tally via :meth:`note_corrupt`.  An optional
    :class:`~repro.utils.diskbudget.DiskBudget` bounds :meth:`put` with
    the count-and-drop degrade (only net growth is charged: a put
    replaces the previous version of the same document).
    """

    def __init__(self, transport, space: str = "", budget=None):
        self.transport = transport
        self.space = str(space)
        self.budget = budget
        self.corrupt_documents = 0
        self.dropped_puts = 0

    @classmethod
    def for_directory(cls, directory: str, budget=None) -> "DocumentStore":
        """A store over a plain local directory (the pre-cluster layout)."""
        from repro.cluster.transport import LocalDirTransport

        return cls(LocalDirTransport(directory), "", budget=budget)

    def put(self, name: str, document: dict) -> bool:
        """Atomically replace one document; False when dropped (budget)."""
        if self.budget is not None:
            size = len(json.dumps(document, separators=(",", ":")))
            old_size = self.transport.doc_size(self.space, name)
            if not self.budget.admit(max(0, size - old_size)):
                self.dropped_puts += 1
                return False
        try:
            self.transport.doc_put(self.space, name, document)
        except OSError as exc:
            from repro.utils.diskbudget import is_enospc

            if is_enospc(exc):
                self.dropped_puts += 1
                if self.budget is not None:
                    self.budget.note_enospc()
                return False
            raise
        return True

    def get(self, name: str) -> dict | None:
        """One document, or ``None`` when absent or corrupt (counted)."""
        try:
            return self.transport.doc_get(self.space, name)
        except DocumentCorrupt:
            self.corrupt_documents += 1
            return None

    def note_corrupt(self) -> None:
        """Count a document the caller parsed but found structurally bad."""
        self.corrupt_documents += 1

    def list(self) -> list[str]:
        return self.transport.doc_list(self.space)

    def delete(self, name: str) -> None:
        self.transport.doc_delete(self.space, name)

    def size(self, name: str) -> int:
        return self.transport.doc_size(self.space, name)

    def get_all(self) -> dict[str, dict]:
        """Every parseable document by name (corrupt ones counted out)."""
        documents: dict[str, dict] = {}
        for name in self.list():
            document = self.get(name)
            if document is not None:
                documents[name] = document
        return documents
