"""Cluster transports: how documents and spool records travel.

Two implementations of one duck-typed interface (``doc_put``,
``doc_get``, ``doc_list``, ``doc_delete``, ``doc_size``,
``spool_append``), selected by whoever builds a
:class:`~repro.cluster.documents.DocumentStore`:

* :class:`LocalDirTransport` -- named *spaces* mapped onto local
  directories.  Bit-compatible with the pre-cluster layout: a document
  is exactly the atomic-rename JSON file the metrics exchange and QoS
  channel always wrote, a spool append is exactly the JSONL line the
  telemetry spools always appended, so existing followers and stores
  read it unchanged.
* :class:`SocketTransport` -- a blocking TCP client speaking
  **length-prefixed JSON frames** (4-byte big-endian length, then one
  UTF-8 JSON object) to a :class:`~repro.cluster.agent.ClusterAgent`.
  Wire calls reuse the request-lifeline vocabulary from PR 7: every
  call may carry a :class:`~repro.serve.deadline.Deadline`, and failed
  calls retry on a :class:`~repro.serve.client.RetryPolicy`
  (capped-exponential backoff with seeded jitter, never retrying past
  the deadline), reconnecting between attempts.

:class:`RemoteSpoolWriter` adapts either transport to the
:class:`~repro.cluster.spool.SpoolWriter` sink interface the telemetry
bus expects, so a process on another machine can stream its events into
the hub's spool directory (per-writer ``wseq`` stamped client-side: the
ordering guarantee crosses the wire intact).
"""

from __future__ import annotations

import json
import os
import random
import socket
import struct
import threading
import time

from repro.cluster.documents import DocumentCorrupt, atomic_write_json, local_host

#: Refuse frames larger than this (a garbage length prefix must not make
#: either side allocate gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class TransportError(RuntimeError):
    """The transport could not complete a call (after retries)."""


class CallFailed(TransportError):
    """The agent answered, but refused the call (``ok: false``)."""


def encode_frame(document: dict) -> bytes:
    data = json.dumps(document, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise TransportError(f"frame too large: {len(data)} bytes")
    return _LENGTH.pack(len(data)) + data


def decode_frame_length(header: bytes) -> int:
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame too large: {length} bytes")
    return length


def parse_address(address) -> tuple[str, int]:
    """``(host, port)`` from a tuple or a ``host:port`` string."""
    if isinstance(address, (tuple, list)):
        return str(address[0]), int(address[1])
    host, _, port = str(address).rpartition(":")
    if not host:
        raise ValueError(f"address {address!r} is not host:port")
    return host, int(port)


def safe_name(name: str, suffix: str | None = None) -> str:
    """Validate a client-supplied file name (no traversal, no hidden files)."""
    if (
        not name
        or name != os.path.basename(name)
        or name.startswith(".")
        or "/" in name
        or "\\" in name
        or ".." in name
    ):
        raise ValueError(f"unsafe name: {name!r}")
    if suffix is not None and not name.endswith(suffix):
        raise ValueError(f"name {name!r} must end with {suffix!r}")
    return name


class LocalDirTransport:
    """Spaces as local directories; documents as atomic-rename files."""

    def __init__(self, root: str | None = None, spaces: dict | None = None):
        if root is None and not spaces:
            raise ValueError("LocalDirTransport needs a root or a space map")
        self.root = str(root) if root is not None else None
        self.spaces = {
            name: str(path) for name, path in (spaces or {}).items()
        }

    def space_dir(self, space: str) -> str:
        if space in self.spaces:
            return self.spaces[space]
        if self.root is None:
            raise KeyError(f"unknown space: {space!r}")
        return os.path.join(self.root, space) if space else self.root

    def _ensure_dir(self, space: str) -> str:
        directory = self.space_dir(space)
        os.makedirs(directory, exist_ok=True)
        return directory

    def doc_put(self, space: str, name: str, document: dict) -> None:
        atomic_write_json(self._ensure_dir(space), safe_name(name), document)

    def doc_get(self, space: str, name: str) -> dict | None:
        path = os.path.join(self.space_dir(space), safe_name(name))
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError:
            return None
        except ValueError as exc:
            raise DocumentCorrupt(str(exc)) from None
        if not isinstance(document, dict):
            raise DocumentCorrupt(f"{name}: not a JSON object")
        return document

    def doc_list(self, space: str) -> list[str]:
        try:
            names = os.listdir(self.space_dir(space))
        except (OSError, KeyError):
            return []
        return sorted(
            name
            for name in names
            if name.endswith(".json") and not name.startswith(".")
        )

    def doc_delete(self, space: str, name: str) -> None:
        try:
            os.unlink(os.path.join(self.space_dir(space), safe_name(name)))
        except OSError:
            pass

    def doc_size(self, space: str, name: str) -> int:
        try:
            return os.path.getsize(
                os.path.join(self.space_dir(space), safe_name(name))
            )
        except OSError:
            return 0

    def spool_append(self, space: str, writer: str, lines: list[str]) -> None:
        """Append complete JSONL lines to one writer file of a space."""
        directory = self._ensure_dir(space)
        path = os.path.join(directory, safe_name(writer, suffix=".jsonl"))
        with open(path, "a", encoding="utf-8") as handle:
            for line in lines:
                if "\n" in line:
                    raise ValueError("spool lines must not contain newlines")
                handle.write(line + "\n")
            handle.flush()

    def close(self) -> None:
        pass


class SocketTransport:
    """Blocking framed-JSON client for one :class:`ClusterAgent`.

    Thread-safe (calls serialize on one connection; a heartbeat thread
    and the work loop may share a transport).  Fork-aware: a pid change
    abandons the inherited connection -- the parent still owns that
    socket -- and reconnects.
    """

    def __init__(
        self,
        address,
        *,
        node: str | None = None,
        role: str = "client",
        retry=None,
        timeout_s: float = 10.0,
        connect_timeout_s: float = 5.0,
        rng: random.Random | None = None,
        clock=time.monotonic,
    ):
        from repro.serve.client import RetryPolicy

        self.address = parse_address(address)
        self.role = role
        self.node = node or f"{local_host()}-{role}-{os.getpid()}"
        self.retry = retry if retry is not None else RetryPolicy(
            max_retries=4, base_backoff_ms=25.0, max_backoff_ms=500.0
        )
        self.timeout_s = float(timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.rng = rng if rng is not None else random.Random(0xC1B5)
        self.clock = clock
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._pid = os.getpid()
        self.calls = 0
        self.retries = 0
        self.reconnects = 0
        #: When set, every outgoing frame is stamped with this trace id
        #: (the wire-level analog of the HTTP ``X-Trace-Id`` header), so
        #: a remote sweep point or federated tick carries its parent
        #: trace across the machine boundary.  Per-call ``trace_id=``
        #: fields win over this default.
        self.trace_id: str | None = None

    # -- connection --------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            self.address, timeout=self.connect_timeout_s
        )
        sock.settimeout(self.timeout_s)
        self.reconnects += 1
        return sock

    def _ensure(self) -> socket.socket:
        if self._pid != os.getpid():
            # Crossed a fork: the inherited socket is the parent's.
            # Dropping our fd copy is safe; never speak on it.
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None
            self._pid = os.getpid()
        if self._sock is None:
            self._sock = self._connect()
        return self._sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop()

    def rearm_after_fork(self) -> None:
        """Replace the (possibly held) lock in a freshly forked child."""
        self._lock = threading.Lock()
        self._pid = 0  # force _ensure to abandon the inherited socket

    # -- framing -----------------------------------------------------------
    def _recv_exact(self, sock: socket.socket, count: int) -> bytes:
        chunks = []
        while count:
            chunk = sock.recv(min(count, 1 << 20))
            if not chunk:
                raise TransportError("connection closed mid-frame")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _roundtrip(self, request: dict) -> dict:
        sock = self._ensure()
        sock.sendall(encode_frame(request))
        length = decode_frame_length(self._recv_exact(sock, 4))
        response = json.loads(self._recv_exact(sock, length).decode("utf-8"))
        if not isinstance(response, dict):
            raise TransportError(f"malformed response: {response!r}")
        return response

    # -- calls -------------------------------------------------------------
    def call(self, op: str, deadline=None, **fields) -> dict:
        """One request/response, with reconnect + capped-backoff retries.

        ``deadline`` is a :class:`~repro.serve.deadline.Deadline`: no
        retry is ever scheduled past it (the no-retry-past-the-deadline
        budget from the PR 7 client).
        """
        request = {"op": op, "node": self.node, **fields}
        if self.trace_id is not None:
            request.setdefault("trace_id", self.trace_id)
        attempt = 0
        while True:
            self.calls += 1
            with self._lock:
                try:
                    response = self._roundtrip(request)
                except (OSError, ValueError, TransportError) as exc:
                    self._drop()
                    error = exc
                else:
                    error = None
            if error is None:
                if not response.get("ok", False):
                    raise CallFailed(
                        str(response.get("error", "call refused"))
                    )
                return response
            delay_ms = self.retry.delay_ms(attempt, rng=self.rng)
            remaining_ms = (
                deadline.remaining_ms(self.clock)
                if deadline is not None
                else None
            )
            if not self.retry.should_retry(attempt, delay_ms, remaining_ms):
                raise TransportError(
                    f"{op} to {self.address[0]}:{self.address[1]} failed "
                    f"after {attempt + 1} attempt(s): {error}"
                ) from error
            self.retries += 1
            attempt += 1
            time.sleep(delay_ms / 1000.0)

    # -- membership --------------------------------------------------------
    def hello(self, pid: int | None = None, info: dict | None = None) -> dict:
        return self.call(
            "hello",
            host=local_host(),
            pid=pid if pid is not None else os.getpid(),
            role=self.role,
            info=info or {},
        )

    def heartbeat(self) -> dict:
        return self.call(
            "heartbeat", host=local_host(), pid=os.getpid(), role=self.role
        )

    def members(self) -> list[dict]:
        return self.call("members").get("members", [])

    def ping(self) -> dict:
        return self.call("ping")

    # -- document interface ------------------------------------------------
    def doc_put(self, space: str, name: str, document: dict) -> None:
        self.call("doc_put", space=space, name=name, document=document)

    def doc_get(self, space: str, name: str) -> dict | None:
        response = self.call("doc_get", space=space, name=name)
        if response.get("corrupt"):
            raise DocumentCorrupt(f"{space}/{name}: corrupt at the agent")
        return response.get("document")

    def doc_list(self, space: str) -> list[str]:
        return list(self.call("doc_list", space=space).get("names", []))

    def doc_delete(self, space: str, name: str) -> None:
        self.call("doc_delete", space=space, name=name)

    def doc_size(self, space: str, name: str) -> int:
        return int(self.call("doc_size", space=space, name=name).get("size", 0))

    def spool_append(self, space: str, writer: str, lines: list[str]) -> None:
        self.call("spool_append", space=space, writer=writer, lines=list(lines))

    # -- work leases -------------------------------------------------------
    def lease_next(self) -> dict:
        return self.call("lease_next", host=local_host(), pid=os.getpid(),
                         role=self.role)

    def lease_done(self, lease: int, completed: list[str]) -> dict:
        return self.call("lease_done", lease=int(lease), completed=completed)

    def lease_fail(self, lease: int, error: str = "") -> dict:
        return self.call("lease_fail", lease=int(lease), error=error)


def _sanitize(part: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "._-" else "-" for ch in str(part)
    ) or "node"


class RemoteSpoolWriter:
    """A telemetry-bus spool sink that appends through a transport.

    Drop-in for :class:`~repro.cluster.spool.SpoolWriter` where the bus
    is concerned (``append``/``close``/``stats``/``rearm_after_fork``,
    ``path``/``directory``): events are stamped with this writer's
    monotonic ``wseq`` and shipped as complete JSONL lines to the
    agent's spool space.  Telemetry stays best-effort across the wire:
    a failed append (after the transport's own retries) is dropped and
    counted, never raised into the publishing hot path.
    """

    def __init__(self, transport, space: str, role: str = "events"):
        self.transport = transport
        self.space = space
        self.role = role
        self.dropped_events = 0
        self.enospc_drops = 0
        self._lock = threading.Lock()
        self._wseq = 0
        self._pid = os.getpid()

    @property
    def writer_name(self) -> str:
        return (
            f"{_sanitize(self.role)}-{_sanitize(local_host())}"
            f"-{os.getpid()}.jsonl"
        )

    @property
    def path(self) -> str:
        return f"{self.space}/{self.writer_name}"

    @property
    def directory(self) -> str:
        host, port = self.transport.address
        return f"cluster://{host}:{port}/{self.space}"

    def append(self, event) -> None:
        with self._lock:
            if self._pid != os.getpid():
                self._pid = os.getpid()
                self._wseq = 0  # new pid -> new writer file at the agent
            self._wseq += 1
            event.wseq = self._wseq
            line = event.to_json()
        try:
            self.transport.spool_append(self.space, self.writer_name, [line])
        except (TransportError, OSError, ValueError):
            with self._lock:
                self.dropped_events += 1

    def rearm_after_fork(self) -> None:
        self._lock = threading.Lock()
        self._pid = 0
        self.transport.rearm_after_fork()

    def stats(self) -> dict:
        return {
            "dropped_events": self.dropped_events,
            "enospc_drops": self.enospc_drops,
        }

    def close(self) -> None:
        pass
