"""Cluster membership: node identity + heartbeat liveness.

A :class:`ClusterMember` is the identity one process presents to the
cluster: a node id, the host it runs on, its pid, a role, and the
wall-clock timestamp of its latest heartbeat.  Liveness generalizes the
QoS coordinator's pid/staleness eviction to remote nodes
(:func:`repro.cluster.documents.publisher_alive`): a member is live
while its heartbeat is fresh, and a member on *this* host additionally
dies the instant its pid does.  A remote member's pid is unprobeable, so
a remote crash is observed as heartbeat staleness -- within one horizon,
exactly like a local shard that stopped ticking.

The :class:`MembershipRoster` is the agent-side ledger of members:
``beat`` upserts a member from any message carrying its identity,
``live`` filters by the rule above, and ``evict`` removes (and returns)
the dead so work leased to them can be recycled.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.cluster.documents import (
    QOS_STALE_AFTER_S,
    local_host,
    pid_alive,
)


def node_id(role: str = "node") -> str:
    """A default node identity: unique per process per host."""
    return f"{local_host()}-{role}-{os.getpid()}"


@dataclass
class ClusterMember:
    """One node's identity and latest heartbeat."""

    node: str
    host: str = ""
    pid: int = 0
    role: str = "node"
    beat_at: float = 0.0
    info: dict = field(default_factory=dict)

    def document(self) -> dict:
        """JSON-able form (also a valid liveness document: the heartbeat
        doubles as ``published_at``)."""
        return {
            "node": self.node,
            "host": self.host,
            "pid": self.pid,
            "role": self.role,
            "published_at": self.beat_at,
            "info": dict(self.info),
        }

    @classmethod
    def from_document(cls, document: dict) -> "ClusterMember":
        return cls(
            node=str(document.get("node", "")),
            host=str(document.get("host", "")),
            pid=int(document.get("pid", 0) or 0),
            role=str(document.get("role", "node")),
            beat_at=float(document.get("published_at", 0.0) or 0.0),
            info=dict(document.get("info", {}) or {}),
        )

    def live(
        self,
        stale_after_s: float = QOS_STALE_AFTER_S,
        now: float | None = None,
        host: str | None = None,
    ) -> bool:
        """The generalized liveness rule (see module docstring)."""
        if now is None:
            now = time.time()
        if now - self.beat_at > stale_after_s:
            return False
        if self.host and self.host != (host or local_host()):
            return True
        if self.pid:
            return pid_alive(self.pid)
        return True


class MembershipRoster:
    """Thread-safe ledger of the members that have ever announced."""

    def __init__(
        self,
        stale_after_s: float = QOS_STALE_AFTER_S,
        clock=time.time,
        host: str | None = None,
    ):
        self.stale_after_s = float(stale_after_s)
        self.clock = clock
        self.host = host or local_host()
        self._lock = threading.Lock()
        self._members: dict[str, ClusterMember] = {}

    def beat(
        self,
        node: str,
        host: str | None = None,
        pid: int | None = None,
        role: str | None = None,
        info: dict | None = None,
    ) -> ClusterMember:
        """Upsert one member from a heartbeat (or any identified message)."""
        with self._lock:
            member = self._members.get(node)
            if member is None:
                member = ClusterMember(node=node)
                self._members[node] = member
            if host is not None:
                member.host = str(host)
            if pid is not None:
                member.pid = int(pid)
            if role is not None:
                member.role = str(role)
            if info:
                member.info.update(info)
            member.beat_at = self.clock()
            return member

    def get(self, node: str) -> ClusterMember | None:
        with self._lock:
            return self._members.get(node)

    def members(self) -> list[ClusterMember]:
        with self._lock:
            return list(self._members.values())

    def live(self) -> list[ClusterMember]:
        now = self.clock()
        return [
            member
            for member in self.members()
            if member.live(self.stale_after_s, now=now, host=self.host)
        ]

    def is_live(self, node: str) -> bool:
        member = self.get(node)
        return member is not None and member.live(
            self.stale_after_s, now=self.clock(), host=self.host
        )

    def evict(self) -> list[ClusterMember]:
        """Remove and return every dead member (lease-recycling hook)."""
        now = self.clock()
        evicted: list[ClusterMember] = []
        with self._lock:
            for node in list(self._members):
                member = self._members[node]
                if not member.live(self.stale_after_s, now=now, host=self.host):
                    evicted.append(self._members.pop(node))
        return evicted

    def forget(self, node: str) -> None:
        with self._lock:
            self._members.pop(node, None)

    def snapshot(self) -> dict:
        now = self.clock()
        return {
            "stale_after_s": self.stale_after_s,
            "members": [
                dict(
                    member.document(),
                    live=member.live(
                        self.stale_after_s, now=now, host=self.host
                    ),
                    age_s=now - member.beat_at,
                )
                for member in self.members()
            ],
        }
