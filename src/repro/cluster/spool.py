"""Event spools: per-writer append-only JSONL files + a merging follower.

The cross-process (and now cross-machine) event transport: each writer
appends events to its own ``<role>-<pid>.jsonl`` file in a shared spool
directory (append-only, one JSON document per line, atomic size-based
rotation to a single ``.old`` generation), and a :class:`SpoolFollower`
tails every file in the directory into one merged stream.  The telemetry
bus, the sharded metrics spool and the sweep progress ticker are all
thin clients of this module.

**Ordering across clock skew.**  Events carry a wall-clock ``at`` stamp
(they cross processes and machines, so monotonic clocks would not
compare), but wall clocks drift and can be stepped -- on another machine
or under :class:`repro.chaos.actors.ClockPerturber`, a writer's
timestamps may jump backwards.  Each writer therefore also stamps a
**per-writer monotonic sequence number** (``wseq``) into every record,
and the follower merges with per-writer *monotone-clamped* effective
timestamps: one writer's events can never be reordered or interleaved
out of write order by its own clock going backwards, while cross-writer
order still approximates wall time.  Old spools without the field fall
back to file order, which is the same guarantee for records written by
one process.
"""

from __future__ import annotations

import io
import json
import os
import threading

#: Rotate a spool file once it grows past this many bytes (one rotated
#: ``.old`` generation is kept so followers can finish reading it).
DEFAULT_ROTATE_BYTES = 4 * 1024 * 1024

#: How far back :class:`SpoolWriter` looks in an existing file to resume
#: its per-writer sequence counter (a tail window is enough: sequence
#: numbers only need to keep growing, not be dense).
_WSEQ_TAIL_BYTES = 64 * 1024


class Event:
    """One typed telemetry event.

    ``type`` names the event (``point_finished``, ``rung_transition``,
    ...); ``at`` is a ``time.time()`` wall-clock stamp (events cross
    processes, so monotonic clocks would not compare); ``source``
    identifies the publishing process (pid, role, optional shard index);
    ``seq`` orders events of one publisher; ``wseq`` is the per-writer
    monotonic spool sequence stamped at append time (``None`` until the
    event hits a spool, and on records written before the field
    existed); ``data`` carries the JSON-able payload.
    """

    __slots__ = ("type", "at", "source", "seq", "data", "wseq")

    def __init__(
        self, type: str, at: float, source: dict, seq: int, data: dict,
        wseq: int | None = None,
    ):
        self.type = type
        self.at = at
        self.source = source
        self.seq = seq
        self.data = data
        self.wseq = wseq

    def to_json(self) -> str:
        document = {
            "type": self.type,
            "at": self.at,
            "source": self.source,
            "seq": self.seq,
            "data": self.data,
        }
        if self.wseq is not None:
            document["wseq"] = self.wseq
        return json.dumps(document, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "Event":
        doc = json.loads(line)
        if not isinstance(doc, dict):
            raise ValueError(f"event line is not a JSON object: {line!r}")
        wseq = doc.get("wseq")
        return cls(
            type=doc["type"],
            at=float(doc["at"]),
            source=doc.get("source", {}),
            seq=int(doc.get("seq", 0)),
            data=doc.get("data", {}),
            wseq=int(wseq) if wseq is not None else None,
        )

    def describe(self) -> dict:
        return {
            "type": self.type,
            "at": self.at,
            "source": self.source,
            "seq": self.seq,
            "data": self.data,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.type!r}, seq={self.seq}, data={self.data!r})"


class SpoolWriter:
    """Append-only JSONL writer for one process's share of a spool dir.

    The file is named ``<role>-<pid>.jsonl`` so concurrent writers never
    contend; a write is one line + flush (readers only parse complete
    lines).  Once the file passes ``rotate_bytes`` it is atomically
    renamed to ``.old`` (replacing the previous generation) and a fresh
    file is started.  The writer is fork-safe: a pid change is detected on
    the next append and a new per-pid file is opened.

    Every appended record is stamped with this writer's monotonic
    ``wseq`` (resumed from the file tail when re-opening an existing
    spool, carried across rotation) so followers can order one writer's
    events even when its wall clock is skewed or stepped.
    """

    #: Inherited parent file objects abandoned after a fork.  Kept alive
    #: forever (one small object per fork) so their destructors never run:
    #: close()/GC-flush in the child would write the child's copy of any
    #: partially-buffered parent line into the parent's shared fd, tearing
    #: the parent's next event line.
    _ABANDONED_HANDLES: list = []

    def __init__(
        self, directory: str, role: str = "events",
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        budget=None,
    ):
        self.directory = str(directory)
        self.role = role
        self.rotate_bytes = int(rotate_bytes)
        #: Optional :class:`repro.utils.diskbudget.DiskBudget` over the
        #: spool directory.  Telemetry is auxiliary: an event that would
        #: bust the quota (or hits real ENOSPC) is *dropped and counted*,
        #: never raised into the publishing hot path.
        self.budget = budget
        self.dropped_events = 0
        self.enospc_drops = 0
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._pid: int | None = None
        self._handle: io.TextIOWrapper | None = None
        self._written = 0
        self._wseq = 0

    @property
    def path(self) -> str:
        return os.path.join(self.directory, f"{self.role}-{os.getpid()}.jsonl")

    def _recover_wseq(self) -> int:
        """The highest ``wseq`` already in this writer's file pair.

        Re-opening an existing spool (a restart reusing a pid, or a
        rotation-surviving writer) must keep the sequence monotone; only
        the tail window is scanned -- a partial first line after the
        seek simply fails to parse and is skipped.
        """
        best = 0
        for path in (self.path + ".old", self.path):
            try:
                size = os.path.getsize(path)
                with open(path, "rb") as handle:
                    handle.seek(max(0, size - _WSEQ_TAIL_BYTES))
                    tail = handle.read()
            except OSError:
                continue
            for line in tail.splitlines():
                try:
                    doc = json.loads(line)
                    best = max(best, int(doc.get("wseq", 0)))
                except (TypeError, ValueError):
                    continue
        return best

    def _ensure_open(self) -> None:
        pid = os.getpid()
        if self._handle is not None and self._pid == pid:
            if self._handle.closed:  # pragma: no cover - failed rotation
                self._handle = None
            else:
                return
        if self._handle is not None:
            # Crossed a fork: the handle belongs to the parent's file.
            # Never close it here (see _ABANDONED_HANDLES).
            SpoolWriter._ABANDONED_HANDLES.append(self._handle)
        self._pid = pid
        self._handle = open(self.path, "a", encoding="utf-8")
        self._written = self._handle.tell()
        self._wseq = self._recover_wseq()

    def rearm_after_fork(self) -> None:
        """Make this (inherited) spool usable in a freshly forked child.

        The inherited lock may be held by a parent thread that was inside
        :meth:`append` at fork time -- that thread does not exist in the
        child, so the lock would never be released.  The child is
        single-threaded at this point, so replacing the lock (and
        abandoning the inherited handle) is race-free.
        """
        self._lock = threading.Lock()
        if self._handle is not None:
            SpoolWriter._ABANDONED_HANDLES.append(self._handle)
            self._handle = None
        self._pid = None

    def append(self, event: Event) -> None:
        with self._lock:
            self._ensure_open()
            self._wseq += 1
            event.wseq = self._wseq
            line = event.to_json() + "\n"
            if self.budget is not None and not self.budget.admit(len(line)):
                # A dropped event leaves a gap in ``wseq`` -- the
                # sequence is monotone, not dense, so followers are
                # unaffected.
                self.dropped_events += 1
                return
            try:
                self._handle.write(line)
                self._handle.flush()
            except OSError as exc:
                from repro.utils.diskbudget import is_enospc

                if is_enospc(exc):
                    # The disk itself is full (quota or not): drop with a
                    # counter -- the degrade contract for spools.
                    self.dropped_events += 1
                    self.enospc_drops += 1
                    if self.budget is not None:
                        self.budget.note_enospc()
                    return
                raise
            self._written += len(line)
            if self._written >= self.rotate_bytes:
                self._rotate()

    def stats(self) -> dict:
        """Degrade counters (and the budget's view, when one is attached)."""
        stats = {
            "dropped_events": self.dropped_events,
            "enospc_drops": self.enospc_drops,
        }
        if self.budget is not None:
            stats["budget"] = self.budget.snapshot()
        return stats

    def _rotate(self) -> None:
        # Drop the handle reference first: if the rename or reopen fails
        # (spool directory torn down mid-shutdown), the next append must
        # find no handle and retry the open -- never write to the closed
        # object, which would raise ValueError past publish()'s OSError
        # guard and crash the publishing thread.
        handle, self._handle = self._handle, None
        handle.close()
        try:
            os.replace(self.path, self.path + ".old")
        except OSError:  # pragma: no cover - spool dir torn down
            pass
        self._handle = open(self.path, "a", encoding="utf-8")
        self._written = 0
        if self.budget is not None:
            # Rotation just deleted the previous ``.old`` generation;
            # re-ground the quota so writes resume as soon as space does.
            self.budget.usage_bytes(refresh=True)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self._pid == os.getpid():
                try:
                    self._handle.close()
                except OSError:  # pragma: no cover
                    pass
            self._handle = None
            self._pid = None


class SpoolFollower:
    """Tails every spool file of a directory, yielding new events.

    Per-file read offsets persist across :meth:`poll` calls; only complete
    lines are parsed (a writer mid-line is picked up next poll).  Rotation
    is handled by watching the ``.old`` generation too and by detecting
    truncation (offset past the new, smaller file).

    Events of one poll are merged across files in wall-clock order --
    but per writer the order is made *skew-proof*: each writer's
    effective merge timestamp is clamped monotone (an event stamped
    earlier than its writer's previous event inherits that event's
    effective time) and ties break on the writer's ``wseq``, so a
    stepped or drifting clock on one machine can never reorder or mask
    that machine's events.  Records without ``wseq`` (old spools) use
    their file read order, which is the same per-writer guarantee.

    The follower is torn-write tolerant: a corrupt *complete* line (a
    crashed writer's garbage, a torn mid-file write, a non-event JSON
    document) is skipped and counted in :attr:`corrupt_lines` -- reading
    resumes at the next newline, so one bad line never kills a follower
    thread or hides the valid events behind it.  :meth:`stats` reports the
    damage per file.
    """

    def __init__(self, directory: str, skip_basenames: set[str] | None = None):
        self.directory = str(directory)
        self.skip_basenames = set(skip_basenames or ())
        self._offsets: dict[str, int] = {}
        self._inodes: dict[str, int] = {}
        #: Per-writer monotone clamp state: the effective merge timestamp
        #: of the writer's latest event (shared across its rotation pair).
        self._order_at: dict[str, float] = {}
        #: Per-writer fallback sequence for records without ``wseq``.
        self._order_seq: dict[str, int] = {}
        #: Complete-but-unparseable lines skipped so far (all files).
        self.corrupt_lines = 0
        self._corrupt_by_file: dict[str, int] = {}

    def _spool_names(self) -> list[str]:
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        return [
            name
            for name in names
            if name.endswith((".jsonl", ".jsonl.old"))
            and name not in self.skip_basenames
            and name.removesuffix(".old") not in self.skip_basenames
        ]

    def _read_new(self, path: str, records: list) -> None:
        """Append ``(writer, event)`` for complete new lines of ``path``."""
        writer = os.path.basename(path).removesuffix(".old")
        offset = self._offsets.get(path, 0)
        try:
            if os.path.getsize(path) == offset:
                return
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            return
        # Only complete lines: a torn tail is re-read next poll.
        end = chunk.rfind(b"\n")
        if end < 0:
            return
        self._offsets[path] = offset + end + 1
        for line in chunk[: end + 1].splitlines():
            if not line.strip():
                continue
            try:
                records.append((writer, Event.from_json(line.decode("utf-8"))))
            except (ValueError, KeyError, TypeError):
                # Torn/garbage line: count it, keep tailing from the next
                # newline.  UnicodeDecodeError is a ValueError.
                self.corrupt_lines += 1
                name = os.path.basename(path)
                self._corrupt_by_file[name] = self._corrupt_by_file.get(name, 0) + 1
                continue

    def stats(self) -> dict:
        """Corruption tally: total skipped lines and a per-file breakdown."""
        return {
            "corrupt_lines": self.corrupt_lines,
            "corrupt_by_file": dict(self._corrupt_by_file),
        }

    def poll(self) -> list[Event]:
        records: list[tuple[str, Event]] = []
        names = self._spool_names()
        mains = [name for name in names if name.endswith(".jsonl")]
        olds = {name for name in names if name.endswith(".jsonl.old")}
        for name in mains:
            main = os.path.join(self.directory, name)
            old = main + ".old"
            try:
                stat = os.stat(main)
                main_size, main_inode = stat.st_size, stat.st_ino
            except OSError:
                main_size, main_inode = 0, None
            known_inode = self._inodes.get(main)
            rotated = (
                # The inode changed: the file we were reading is now the
                # ``.old`` generation, even if the fresh main has already
                # grown past our stored offset (a size-only check misses
                # that and would resume mid-line in the wrong file).
                (known_inode is not None and main_inode != known_inode)
                or main_size < self._offsets.get(main, 0)
            )
            if main_inode is not None:
                self._inodes[main] = main_inode
            if rotated and main in self._offsets:
                # Everything we had consumed of the old main is now the
                # head of the fresh ``.old`` generation (an unread tail of
                # the *previous* ``.old`` is gone -- rotation keeps
                # exactly one generation).
                self._offsets[old] = self._offsets.pop(main)
            if os.path.basename(old) in olds:
                self._read_new(old, records)
                olds.discard(os.path.basename(old))
            self._read_new(main, records)
        for name in olds:  # orphaned .old (writer gone mid-rotation)
            self._read_new(os.path.join(self.directory, name), records)
        # Merge: per-writer monotone-clamped effective time, then writer,
        # then the writer's sequence.  Records are appended in file order
        # per writer (``.old`` before main), so the clamp sees each
        # writer's events in write order -- within and across polls.
        ordered: list[tuple[float, str, int, int, Event]] = []
        for writer, event in records:
            seq = event.wseq
            if seq is None:
                seq = self._order_seq.get(writer, 0) + 1
            self._order_seq[writer] = max(self._order_seq.get(writer, 0), seq)
            order_at = max(event.at, self._order_at.get(writer, event.at))
            self._order_at[writer] = order_at
            ordered.append(
                (order_at, writer, seq, event.source.get("pid", 0), event)
            )
        ordered.sort(key=lambda record: record[:4])
        return [record[4] for record in ordered]
