"""Data arrangement: statistics-driven column reordering (Section IV-B).

Reordering pairs activation-matrix columns that are likely to demand the
full 8-bit MAC with columns that are likely to be zero or 4-bit, so that the
threads formed by the K-dimension split (Eq. (2)) collide less often.  The
statistics are gathered once per layer during calibration; at runtime the
permutation is static.

A column's "demand score" is the probability that its activation requires an
8-bit multiplication, i.e. that it is nonzero *and* wider than 4 bits.  The
permutation assigns the score-sorted columns to pairing groups in serpentine
order so that each group (one K-step of the T threads) mixes heavy and light
columns.
"""

from __future__ import annotations

import numpy as np

from repro.quant.calibration import ColumnStats


def identity_permutation(num_columns: int) -> np.ndarray:
    """The no-reordering permutation."""
    return np.arange(num_columns, dtype=np.int64)


def column_demand_scores(stats: ColumnStats) -> np.ndarray:
    """Probability that each column demands a full 8-bit MAC."""
    return stats.p_wide


def compute_reorder_permutation(stats: ColumnStats, threads: int = 2) -> np.ndarray:
    """Permutation of the K dimension that balances demand across threads.

    The returned array ``perm`` is to be applied as ``X[:, perm]`` and
    ``W[perm, :]`` before the thread split; position ``t * (K/T) + j`` of the
    reordered matrices (thread ``t``, step ``j``) then holds original column
    ``perm[t * (K/T) + j]``.
    """
    if threads < 1:
        raise ValueError("threads must be positive")
    scores = column_demand_scores(stats)
    num_columns = scores.shape[0]
    per_thread = -(-num_columns // threads)

    # Sort columns by demand, heaviest first (stable for reproducibility).
    order = np.argsort(-scores, kind="stable")

    # Serpentine assignment of sorted columns to pairing groups: group j of
    # the reordered layout holds columns {perm[t * per_thread + j] for all t}.
    groups: list[list[int]] = [[] for _ in range(per_thread)]
    direction = 1
    group_index = 0
    for column in order:
        groups[group_index].append(int(column))
        group_index += direction
        if group_index == per_thread:
            group_index = per_thread - 1
            direction = -1
        elif group_index < 0:
            group_index = 0
            direction = 1

    permutation = np.full(per_thread * threads, -1, dtype=np.int64)
    spare_slots: list[int] = []
    for j, group in enumerate(groups):
        for t, column in enumerate(group):
            permutation[t * per_thread + j] = column
        for t in range(len(group), threads):
            spare_slots.append(t * per_thread + j)

    # Positions left unassigned (K not divisible by T) stay "empty"; the
    # executor pads them with zeros, so we trim the permutation back to the
    # real column count by dropping the unfilled slots.
    filled = permutation[permutation >= 0]
    if filled.shape[0] != num_columns:
        raise RuntimeError("reordering produced an inconsistent permutation")
    return filled


def expected_collision_rate(
    stats: ColumnStats, permutation: np.ndarray | None, threads: int = 2
) -> float:
    """Analytic expected fraction of K-steps in which all threads demand 8 bits.

    Used to sanity-check that reordering reduces collisions: pairing a heavy
    column with a light one lowers the product of per-column demand
    probabilities.
    """
    scores = column_demand_scores(stats)
    if permutation is not None:
        scores = scores[permutation]
    num_columns = scores.shape[0]
    per_thread = -(-num_columns // threads)
    padded = np.zeros(per_thread * threads)
    padded[: num_columns] = scores
    grouped = padded.reshape(threads, per_thread)
    return float(np.prod(grouped, axis=0).mean())
