"""Output-stationary systolic arrays: the conventional baseline and SySMT.

The paper demonstrates NB-SMT as an extension of an 8-bit output-stationary
systolic array (OS-SA) for matrix multiplication (Section IV).  This
subpackage provides:

* :mod:`repro.systolic.dataflow` -- matrix tiling, skewed injection schedule
  and cycle-count model of the OS dataflow;
* :mod:`repro.systolic.os_sa` -- the conventional OS-SA (one 8b-8b MAC per
  PE per cycle);
* :mod:`repro.systolic.sysmt` -- SySMT, whose PEs execute T threads per
  cycle using the NB-SMT collision rules;
* :mod:`repro.systolic.reorder` -- the data-arrangement mechanism of
  Section IV-B (statistics-driven column reordering);
* :mod:`repro.systolic.utilization` -- the analytic utilization model of
  Eq. (7)/(8) and helpers for measured utilization.
"""

from repro.systolic.dataflow import (
    CycleModel,
    skewed_schedule,
    split_matrices_for_threads,
    tile_matrices,
)
from repro.systolic.os_sa import OutputStationarySA, ArrayReport
from repro.systolic.sysmt import SySMTArray
from repro.systolic.reorder import compute_reorder_permutation, identity_permutation
from repro.systolic.utilization import (
    utilization_gain_analytic,
    utilization_probability,
)

__all__ = [
    "CycleModel",
    "tile_matrices",
    "skewed_schedule",
    "split_matrices_for_threads",
    "OutputStationarySA",
    "SySMTArray",
    "ArrayReport",
    "compute_reorder_permutation",
    "identity_permutation",
    "utilization_gain_analytic",
    "utilization_probability",
]
