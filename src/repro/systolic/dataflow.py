"""Output-stationary dataflow: tiling, skewing and the cycle model.

In an output-stationary systolic array, PE ``(i, j)`` accumulates output
element ``O[i, j]`` of the current tile.  Activations stream in from the left
(one row per array row) and weights from the top (one column per array
column), both skewed so that ``x[i, k]`` and ``w[k, j]`` meet at PE ``(i, j)``
on cycle ``k + i + j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np


@dataclass(frozen=True)
class CycleModel:
    """Latency model of one output tile on an R x C output-stationary array.

    ``pipeline_stages`` models internal PE pipelining (the SySMT PEs are
    two-staged, Section V-A); it adds latency but does not affect throughput.
    """

    rows: int
    cols: int
    pipeline_stages: int = 1

    def tile_cycles(self, depth: int) -> int:
        """Cycles to fully accumulate one tile with inner dimension ``depth``."""
        if depth <= 0:
            return 0
        drain = (self.rows - 1) + (self.cols - 1)
        return depth + drain + self.pipeline_stages

    def matmul_cycles(self, m: int, k: int, n: int, depth_per_cycle: int = 1) -> int:
        """Cycles to compute an ``(M, K) @ (K, N)`` product by tiling.

        ``depth_per_cycle`` is the number of K-steps consumed per cycle: 1 for
        the conventional SA, T for a T-threaded SySMT (which is what makes
        the speedup directly proportional to the number of threads).
        """
        tiles_m = -(-m // self.rows)
        tiles_n = -(-n // self.cols)
        depth = -(-k // depth_per_cycle)
        return tiles_m * tiles_n * self.tile_cycles(depth)


def tile_matrices(
    x: np.ndarray, w: np.ndarray, rows: int, cols: int
) -> Iterator[tuple[slice, slice, np.ndarray, np.ndarray]]:
    """Yield ``(row_slice, col_slice, x_tile, w_tile)`` for each output tile."""
    m, k = x.shape
    k2, n = w.shape
    if k != k2:
        raise ValueError("inner dimensions of X and W differ")
    for row_start in range(0, m, rows):
        row_slice = slice(row_start, min(row_start + rows, m))
        for col_start in range(0, n, cols):
            col_slice = slice(col_start, min(col_start + cols, n))
            yield row_slice, col_slice, x[row_slice, :], w[:, col_slice]


def skewed_schedule(depth: int, rows: int, cols: int) -> Iterator[tuple[int, int, int, int]]:
    """Yield ``(cycle, k, i, j)`` tuples of the skewed OS dataflow.

    PE ``(i, j)`` consumes the ``k``-th operand pair on cycle ``k + i + j``.
    This generator enumerates the full schedule of one tile and is used by
    the explicit (PE-object) simulators and by tests; the vectorized
    simulators exploit the same identity without enumerating it.
    """
    for k in range(depth):
        for i in range(rows):
            for j in range(cols):
                yield k + i + j, k, i, j


def split_matrices_for_threads(
    x: np.ndarray, w: np.ndarray, threads: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split the K dimension of a matmul into T thread slices (Eq. (2)).

    Returns ``x_threads`` with shape ``(T, M, ceil(K/T))`` and ``w_threads``
    with shape ``(T, ceil(K/T), N)``; the K dimension is zero-padded when not
    divisible by ``threads``.  This is the same split the functional executor
    uses, re-exported here because it is part of the SySMT data layout
    (Fig. 3c / Fig. 4).
    """
    from repro.core.smt import split_into_threads

    return split_into_threads(x, w, threads)
