"""SySMT: the NB-SMT-enabled output-stationary systolic array (Section IV).

Each SySMT PE receives T operand pairs per cycle (one per thread), applies
the local control logic of Algorithm 1 to resolve thread collisions, and
accumulates all thread contributions into a single shared partial-sum
register (output sharing, Fig. 3c).  Connectivity therefore scales with the
thread count, and the array consumes the K dimension T positions per cycle,
which is what yields the constant speedup of T over the conventional array.

Three simulators are provided and cross-checked by tests:

* :meth:`SySMTArray.matmul` -- vectorized tile-by-tile execution whose MAC
  results are produced by the same functional NB-SMT executor used for
  accuracy experiments;
* :meth:`SySMTArray.matmul_explicit` -- a cycle-accurate simulation that
  evaluates Algorithm 1 lane-by-lane with vectorized numpy ops over whole
  tiles (every PE's per-cycle collision decision is materialized, unlike the
  factorized functional executor which only computes their aggregate);
* :meth:`SySMTArray.matmul_per_pe` -- the slow PE-object simulation whose
  per-cycle decisions follow Algorithm 1 literally (including the fMUL
  nibble/shift interface), used to validate the vectorized simulators bit
  by bit.
"""

from __future__ import annotations

import numpy as np

from repro.core import packing
from repro.core.fmul import FlexibleMultiplier
from repro.core.policies import PackingPolicy, get_policy
from repro.core.precision import (
    act_fits_4bit,
    prepare_act_operand,
    prepare_wgt_operand,
    reduce_act_to_4bit_msb,
    wgt_fits_4bit,
)
from repro.core.smt import (
    NBSMTMatmul,
    SMTStatistics,
    nbsmt_effective_chunk,
    split_into_threads,
)
from repro.systolic.dataflow import CycleModel, tile_matrices
from repro.systolic.os_sa import ArrayReport


class _SysmtPE:
    """One SySMT PE executing Algorithm 1 each cycle (explicit simulation)."""

    def __init__(self, threads: int, policy: PackingPolicy):
        self.threads = threads
        self.policy = policy
        self.fmul = FlexibleMultiplier(2 if threads == 2 else 4)
        self.accumulator = 0
        self.active_cycles = 0

    def step(self, xs: np.ndarray, ws: np.ndarray) -> None:
        """Consume one operand pair per thread and accumulate their products."""
        xs = np.asarray(xs, dtype=np.int64)
        ws = np.asarray(ws, dtype=np.int64)
        active = [
            bool(packing.thread_active(xs[t], ws[t], self.policy.sparsity))
            for t in range(self.threads)
        ]
        demand = sum(active)
        if demand > 0:
            self.active_cycles += 1

        if self.policy.sparsity and demand <= 1:
            # No collision: every thread computes its exact 8b-8b product
            # (inactive threads contribute zero anyway).
            for t in range(self.threads):
                self.accumulator += int(xs[t]) * int(ws[t])
            return

        if self.threads == 2 or (self.policy.sparsity and demand == 2):
            self._step_pairwise(xs, ws, active)
        else:
            self._step_many(xs, ws, active)

    def _step_pairwise(self, xs, ws, active) -> None:
        """Two colliding threads share the fMUL as two 4b-8b products."""
        if self.policy.sparsity:
            colliding = [t for t in range(self.threads) if active[t]]
        else:
            colliding = list(range(self.threads))
        # Exact contribution for the non-colliding threads.
        for t in range(self.threads):
            if t not in colliding:
                self.accumulator += int(xs[t]) * int(ws[t])
        if not colliding:
            return
        if len(colliding) == 1:
            t = colliding[0]
            self.accumulator += int(xs[t]) * int(ws[t])
            return
        t_a, t_b = colliding[:2]
        products = []
        for t in (t_a, t_b):
            products.append(self._pair_product(int(xs[t]), int(ws[t])))
        self.accumulator += sum(products)
        # Any additional colliding threads (only possible without sparsity
        # detection in a >2-thread PE) are handled by the many-way path.
        for t in colliding[2:]:
            self.accumulator += int(
                packing.colliding_product_4t(xs[t], ws[t], self.policy)
            )

    def _pair_product(self, x: int, w: int) -> int:
        """Product of one colliding thread through the 4b-8b fMUL port."""
        if self.policy.reduce == "act":
            if self.policy.width_secondary and not act_fits_4bit(x) and wgt_fits_4bit(w):
                # Swap: the weight LSBs drive the narrow port, no error.
                return int(x) * int(w)
            nibble, shift = prepare_act_operand(x)
            if not self.policy.width_primary and act_fits_4bit(x):
                # Without the width check, even narrow values are rounded.
                nibble, shift = reduce_act_to_4bit_msb(x) >> 4, 1
            product, _ = self.fmul.two_4b8b(nibble, w, shift, 0, 0, 0)
            return int(product)
        # Weight-reduction family: modeled functionally.
        return int(packing.colliding_product_2t(x, w, self.policy))

    def _step_many(self, xs, ws, active) -> None:
        """Three or more demanding threads: all active threads go 4b-4b."""
        for t in range(self.threads):
            if self.policy.sparsity and not active[t]:
                self.accumulator += int(xs[t]) * int(ws[t])
                continue
            if self.policy.width_primary:
                a_nib, a_shift = prepare_act_operand(xs[t])
                w_nib, w_shift = prepare_wgt_operand(ws[t])
            else:
                a_nib, a_shift = reduce_act_to_4bit_msb(xs[t]) >> 4, 1
                reduced_w = packing.reduce_wgt_to_4bit_msb(ws[t])
                w_nib, w_shift = reduced_w >> 4, 1
            self.accumulator += int(a_nib) * int(w_nib) * (16 if a_shift else 1) * (
                16 if w_shift else 1
            )


class SySMTArray:
    """An R x C SySMT array executing T threads per PE."""

    def __init__(
        self,
        rows: int = 16,
        cols: int = 16,
        threads: int = 2,
        policy: PackingPolicy | str = "S+A",
        pipeline_stages: int = 2,
    ):
        if threads not in (2, 4):
            raise ValueError("SySMT supports 2 or 4 threads")
        self.rows = rows
        self.cols = cols
        self.threads = threads
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.cycle_model = CycleModel(rows, cols, pipeline_stages)
        self.stats = SMTStatistics()

    def reset_stats(self) -> None:
        self.stats = SMTStatistics()

    # -- vectorized simulation ------------------------------------------------
    def matmul(
        self,
        x_q: np.ndarray,
        w_q: np.ndarray,
        permutation: np.ndarray | None = None,
    ) -> tuple[np.ndarray, ArrayReport]:
        """Execute the NB-SMT matmul tile by tile; returns output and report."""
        x_q = np.asarray(x_q)
        w_q = np.asarray(w_q)
        if permutation is not None:
            x_q = x_q[:, permutation]
            w_q = w_q[permutation, :]
        m, k = x_q.shape
        n = w_q.shape[1]
        out = np.zeros((m, n), dtype=np.int64)
        report = ArrayReport()
        executor = NBSMTMatmul(self.threads, self.policy, collect_stats=True)
        for row_slice, col_slice, x_tile, w_tile in tile_matrices(
            x_q, w_q, self.rows, self.cols
        ):
            out[row_slice, col_slice] = executor.matmul(x_tile, w_tile)
            tile_rows = row_slice.stop - row_slice.start
            tile_cols = col_slice.stop - col_slice.start
            depth = -(-k // self.threads)
            report.cycles += self.cycle_model.tile_cycles(depth)
            report.mac_cycles_total += tile_rows * tile_cols * depth
            report.tiles += 1
        report.mac_cycles_active += int(executor.stats.slots_active)
        self.stats.merge(executor.stats)
        return out, report

    # -- explicit lane-level simulation ---------------------------------------
    def matmul_explicit(
        self,
        x_q: np.ndarray,
        w_q: np.ndarray,
        permutation: np.ndarray | None = None,
    ) -> tuple[np.ndarray, ArrayReport]:
        """Cycle-accurate simulation, vectorized over whole tiles.

        Evaluates the per-cycle collision decisions of Algorithm 1 for every
        PE lane of every tile with numpy ops (one ``(T, rows, depth, cols)``
        activity tensor per tile) instead of per-PE Python objects; agrees
        bit-for-bit with :meth:`matmul_per_pe`.
        """
        x_q = np.asarray(x_q)
        w_q = np.asarray(w_q)
        if permutation is not None:
            x_q = x_q[:, permutation]
            w_q = w_q[permutation, :]
        m, k = x_q.shape
        n = w_q.shape[1]
        out = np.zeros((m, n), dtype=np.int64)
        report = ArrayReport()
        for row_slice, col_slice, x_tile, w_tile in tile_matrices(
            x_q, w_q, self.rows, self.cols
        ):
            x_threads, w_threads = split_into_threads(x_tile, w_tile, self.threads)
            depth = x_threads.shape[2]
            tile_rows = row_slice.stop - row_slice.start
            tile_cols = col_slice.stop - col_slice.start
            chunk = nbsmt_effective_chunk(x_threads, w_threads, self.policy)
            out[row_slice, col_slice] = chunk.out
            if self.policy.sparsity:
                report.mac_cycles_active += chunk.active_slots
            else:
                # Without sparsity detection every thread demands the MAC on
                # every cycle, so every PE cycle counts as active.
                report.mac_cycles_active += tile_rows * tile_cols * depth
            report.mac_cycles_total += tile_rows * tile_cols * depth
            report.cycles += self.cycle_model.tile_cycles(depth)
            report.tiles += 1
        return out, report

    # -- explicit PE-object simulation ----------------------------------------
    def matmul_per_pe(
        self,
        x_q: np.ndarray,
        w_q: np.ndarray,
        permutation: np.ndarray | None = None,
    ) -> tuple[np.ndarray, ArrayReport]:
        """PE-object simulation (small matrices only).

        One Python object per PE, stepping Algorithm 1 and the fMUL
        nibble/shift interface one operand pair at a time.  Orders of
        magnitude slower than :meth:`matmul_explicit`; kept as the ground
        truth for the ``slow``-marked cross-validation tests and the
        benchmark baseline.
        """
        x_q = np.asarray(x_q)
        w_q = np.asarray(w_q)
        if permutation is not None:
            x_q = x_q[:, permutation]
            w_q = w_q[permutation, :]
        m, k = x_q.shape
        n = w_q.shape[1]
        out = np.zeros((m, n), dtype=np.int64)
        report = ArrayReport()
        for row_slice, col_slice, x_tile, w_tile in tile_matrices(
            x_q, w_q, self.rows, self.cols
        ):
            x_threads, w_threads = split_into_threads(x_tile, w_tile, self.threads)
            depth = x_threads.shape[2]
            tile_rows = row_slice.stop - row_slice.start
            tile_cols = col_slice.stop - col_slice.start
            grid = [
                [_SysmtPE(self.threads, self.policy) for _ in range(tile_cols)]
                for _ in range(tile_rows)
            ]
            for step in range(depth):
                for i in range(tile_rows):
                    for j in range(tile_cols):
                        grid[i][j].step(x_threads[:, i, step], w_threads[:, step, j])
            for i in range(tile_rows):
                for j in range(tile_cols):
                    out[row_slice.start + i, col_slice.start + j] = grid[i][j].accumulator
                    report.mac_cycles_active += grid[i][j].active_cycles
            report.mac_cycles_total += tile_rows * tile_cols * depth
            report.cycles += self.cycle_model.tile_cycles(depth)
            report.tiles += 1
        return out, report

    # -- performance model ---------------------------------------------------------
    def speedup_over(self, baseline_cycles: int, own_cycles: int) -> float:
        """Speedup of this array versus a baseline cycle count."""
        if own_cycles == 0:
            return float("inf")
        return baseline_cycles / own_cycles
