"""Conventional output-stationary systolic array (the paper's baseline).

Two simulators are provided:

* :meth:`OutputStationarySA.matmul` -- a vectorized tile-by-tile execution
  that exploits the OS identity (PE ``(i, j)`` consumes operand pair ``k`` on
  cycle ``k + i + j``), producing the exact result, the cycle count and the
  PE-utilization counters without enumerating individual PEs;
* :meth:`OutputStationarySA.matmul_explicit` -- a slow, PE-object-level
  simulation of the skewed dataflow used by the test suite to validate the
  vectorized model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.systolic.dataflow import CycleModel, tile_matrices


@dataclass
class ArrayReport:
    """Cycle and utilization accounting of one (or more) array executions."""

    cycles: int = 0
    mac_cycles_total: int = 0
    mac_cycles_active: int = 0
    tiles: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of PE compute cycles doing useful (nonzero) work."""
        if self.mac_cycles_total == 0:
            return 0.0
        return self.mac_cycles_active / self.mac_cycles_total

    def merge(self, other: "ArrayReport") -> None:
        self.cycles += other.cycles
        self.mac_cycles_total += other.mac_cycles_total
        self.mac_cycles_active += other.mac_cycles_active
        self.tiles += other.tiles


class _ConventionalPE:
    """One output-stationary PE: multiply the incoming pair, accumulate locally."""

    def __init__(self):
        self.accumulator = 0
        self.active_cycles = 0

    def step(self, x: int, w: int) -> None:
        if x != 0 and w != 0:
            self.active_cycles += 1
        self.accumulator += int(x) * int(w)


class OutputStationarySA:
    """A conventional R x C output-stationary systolic array of 8b-8b MACs."""

    def __init__(self, rows: int = 16, cols: int = 16, pipeline_stages: int = 1):
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.cycle_model = CycleModel(rows, cols, pipeline_stages)

    # -- vectorized simulation ------------------------------------------------
    def matmul(self, x: np.ndarray, w: np.ndarray) -> tuple[np.ndarray, ArrayReport]:
        """Execute ``x @ w`` tile by tile; returns the product and a report."""
        x = np.asarray(x)
        w = np.asarray(w)
        m, k = x.shape
        n = w.shape[1]
        out = np.zeros((m, n), dtype=np.int64)
        report = ArrayReport()
        for row_slice, col_slice, x_tile, w_tile in tile_matrices(
            x, w, self.rows, self.cols
        ):
            out[row_slice, col_slice] = np.rint(
                x_tile.astype(np.float64) @ w_tile.astype(np.float64)
            ).astype(np.int64)
            active = int(
                (x_tile != 0).astype(np.int64).sum(axis=0)
                @ (w_tile != 0).astype(np.int64).sum(axis=1)
            )
            tile_rows = row_slice.stop - row_slice.start
            tile_cols = col_slice.stop - col_slice.start
            report.cycles += self.cycle_model.tile_cycles(k)
            report.mac_cycles_total += tile_rows * tile_cols * k
            report.mac_cycles_active += active
            report.tiles += 1
        return out, report

    # -- explicit PE-level simulation ---------------------------------------------
    def matmul_explicit(
        self, x: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, ArrayReport]:
        """PE-object simulation of the skewed dataflow (small matrices only)."""
        x = np.asarray(x)
        w = np.asarray(w)
        m, k = x.shape
        n = w.shape[1]
        out = np.zeros((m, n), dtype=np.int64)
        report = ArrayReport()
        for row_slice, col_slice, x_tile, w_tile in tile_matrices(
            x, w, self.rows, self.cols
        ):
            tile_rows = row_slice.stop - row_slice.start
            tile_cols = col_slice.stop - col_slice.start
            grid = [[_ConventionalPE() for _ in range(tile_cols)] for _ in range(tile_rows)]
            # Skewed dataflow: PE (i, j) sees pair k on cycle k + i + j.
            for step in range(k):
                for i in range(tile_rows):
                    for j in range(tile_cols):
                        grid[i][j].step(
                            x[row_slice.start + i, step], w[step, col_slice.start + j]
                        )
            for i in range(tile_rows):
                for j in range(tile_cols):
                    out[row_slice.start + i, col_slice.start + j] = grid[i][j].accumulator
                    report.mac_cycles_active += grid[i][j].active_cycles
            report.mac_cycles_total += tile_rows * tile_cols * k
            report.cycles += self.cycle_model.tile_cycles(k)
            report.tiles += 1
        return out, report
