"""Analytic utilization model (Eq. (7) and Eq. (8)) and helpers.

The paper models PE utilization as the probability that at least one of the
T threads sharing the PE has a nonzero activation-weight pair.  Under the
simplifying assumption that threads are independent and identically
distributed with nonzero probability ``r``, the utilization gain of T = 2
threads over a single thread reduces to ``1 + s`` where ``s = 1 - r`` is the
activation sparsity -- the straight line of Fig. 9.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import new_rng


def utilization_probability(nonzero_probs: np.ndarray | list[float]) -> float:
    """Eq. (7): probability that a PE shared by the given threads is utilized."""
    probs = np.asarray(nonzero_probs, dtype=np.float64)
    if np.any((probs < 0) | (probs > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    return float(1.0 - np.prod(1.0 - probs))


def utilization_gain_analytic(sparsity: float, threads: int = 2) -> float:
    """Eq. (8) generalized to T threads: gain = (1 - s^T) / (1 - s).

    For two threads this is exactly ``1 + s``; for a single thread it is 1.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must lie in [0, 1]")
    if threads < 1:
        raise ValueError("threads must be positive")
    if sparsity == 1.0:
        # All-zero input: both the baseline and SySMT are fully idle.
        return 1.0
    r = 1.0 - sparsity
    return float((1.0 - sparsity**threads) / r)


def monte_carlo_utilization_gain(
    sparsity: float, threads: int = 2, samples: int = 100_000, seed: int = 0
) -> float:
    """Monte-Carlo estimate of the utilization gain under the Eq. (7) model.

    Used by tests to confirm the closed form; weights are assumed nonzero as
    in the paper's derivation.
    """
    rng = new_rng(seed)
    active = rng.random((samples, threads)) >= sparsity
    base_util = active.mean()
    smt_util = active.any(axis=1).mean()
    if base_util == 0:
        return 1.0
    return float(smt_util / base_util)
