"""Benchmark regenerating the energy-savings claim of Section V-A."""

from repro.eval.experiments import energy_savings

from benchmarks.conftest import run_experiment


def test_energy_savings(benchmark, scale):
    result = run_experiment(benchmark, energy_savings, scale)
    # SySMT saves energy on average for both thread counts (paper: ~33%/~35%).
    assert result["average_saving"]["2t"] > 0.1
    assert result["average_saving"]["4t"] > 0.1
    for row in result["per_model"].values():
        assert row["saving_2t"] > 0.0
