"""Benchmark regenerating Table IV: 2T SySMT vs static 4-bit PTQ baselines."""

import numpy as np

from repro.eval.experiments import table4_ptq

from benchmarks.conftest import run_experiment


def test_table4_ptq_comparison(benchmark, scale):
    result = run_experiment(benchmark, table4_ptq, scale)
    rows = result["per_model"].values()
    sysmt = np.mean([row["sysmt"] for row in rows])
    aciq = np.mean([row["aciq"] for row in result["per_model"].values()])
    # SySMT's on-demand reduction is at least competitive with static 4-bit
    # PTQ on average (the paper reports it winning at every operating point).
    assert sysmt >= aciq - 0.03
