"""Benchmark regenerating Table III: packing-policy contributions (2T SySMT)."""

import numpy as np

from repro.eval.experiments import table3_policies

from benchmarks.conftest import run_experiment


def test_table3_policies(benchmark, scale):
    result = run_experiment(benchmark, table3_policies, scale)
    per_model = result["per_model"]

    def column(name):
        values = [row[name] for row in per_model.values() if name in row]
        return float(np.mean(values)) if values else float("nan")

    # Ordering of the paper: "min" is the worst case and the combined
    # sparsity + data-width policies recover most of the baseline accuracy.
    combined = np.nanmean([column("S+A"), column("S+W")])
    assert combined >= column("min") - 0.02
    assert column("A8W8") >= combined - 0.05
