"""Benchmark regenerating the MLPerf quality-target paragraph of Section V-B."""

from repro.eval.experiments import mlperf_quality

from benchmarks.conftest import run_experiment


def test_mlperf_quality_targets(benchmark, scale):
    result = run_experiment(benchmark, mlperf_quality, scale)
    for name, row in result["per_model"].items():
        # The throttled 2T SySMT keeps a close-to-2x speedup...
        assert row["speedup"] > 1.5, name
        # ...and comes within a small margin of the MLPerf quality target.
        assert row["achieved_accuracy"] >= 0.95 * row["target_accuracy"], name
