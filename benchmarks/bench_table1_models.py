"""Benchmark regenerating Table I: model accuracy (FP32 vs INT8) and MACs."""

from repro.eval.experiments import table1_models

from benchmarks.conftest import run_experiment


def test_table1_models(benchmark, scale):
    result = run_experiment(benchmark, table1_models, scale)
    for name, row in result["models"].items():
        # 8-bit min-max quantization stays close to the FP32 accuracy.
        assert row["int8_accuracy"] >= row["fp32_accuracy"] - 0.05, name
        assert row["conv_macs"] > row["fc_macs"]
