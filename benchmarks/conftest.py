"""Benchmark-harness configuration.

Each benchmark regenerates one table or figure of the paper's evaluation
section.  Every experiment runs exactly once per session (they are scientific
measurements, not micro-benchmarks), and the formatted rows/series are
printed so that ``pytest benchmarks/ --benchmark-only`` reproduces the
paper's tables on stdout.

The experiment scale is controlled by the ``REPRO_SCALE`` environment
variable (``fast`` by default, ``full`` for the larger protocol).
"""

from __future__ import annotations

import os
import sys

import pytest


def experiment_scale() -> str:
    return os.environ.get("REPRO_SCALE", "fast")


@pytest.fixture(scope="session")
def scale() -> str:
    return experiment_scale()


def run_experiment(benchmark, module, scale: str, **kwargs):
    """Run one experiment module exactly once under pytest-benchmark."""
    result = benchmark.pedantic(
        lambda: module.run(scale=scale, **kwargs), rounds=1, iterations=1
    )
    text = module.format_result(result)
    print("\n" + text, file=sys.stderr)
    return result
