"""Benchmark regenerating Fig. 8: per-layer MSE vs activation sparsity."""

from repro.eval.experiments import fig8_mse

from benchmarks.conftest import run_experiment


def test_fig8_mse(benchmark, scale):
    result = run_experiment(benchmark, fig8_mse, scale)
    # Reordering lowers the average NB-SMT-induced MSE.
    assert (
        result["mean_relative_mse_with"]
        <= result["mean_relative_mse_without"] * 1.05
    )
    # MSE and sparsity are anti-correlated (sparser layers collide less).
    assert result["correlation_without"] < 0.3
