"""Benchmark regenerating Fig. 1: MAC-utilization breakdown of the CNN zoo."""

from repro.eval.experiments import fig1_utilization

from benchmarks.conftest import run_experiment


def test_fig1_mac_utilization(benchmark, scale):
    result = run_experiment(benchmark, fig1_utilization, scale)
    average = result["average"]
    # The paper's qualitative claim: a majority of MAC operations do not fully
    # utilize an 8b-8b unit (most are idle or effectively narrow).
    assert average["idle"] + average["partial"] > 0.5
    assert average["full"] < 0.5
