"""Benchmark regenerating Table II: area, power and throughput of the arrays."""

import pytest

from repro.eval.experiments import table2_hardware

from benchmarks.conftest import run_experiment


def test_table2_hardware(benchmark, scale):
    result = run_experiment(benchmark, table2_hardware, scale)
    configs = result["configs"]
    assert configs["sysmt_2t"]["area_ratio"] == pytest.approx(1.44, abs=0.05)
    assert configs["sysmt_4t"]["area_ratio"] == pytest.approx(2.48, abs=0.08)
    assert configs["sysmt_2t"]["power_mw_80"] == pytest.approx(429, rel=0.02)
    assert configs["sysmt_4t"]["throughput_gmacs"] == pytest.approx(1024, rel=0.01)
