"""Benchmark regenerating Fig. 10: pruning vs 4T SySMT accuracy/speedup."""

from repro.eval.experiments import fig10_pruning

from benchmarks.conftest import run_experiment


def test_fig10_pruning(benchmark, scale):
    result = run_experiment(
        benchmark, fig10_pruning, scale, pruning_levels=(0.0, 0.4, 0.6), max_slowed=2
    )
    curves = result["curves"]
    # Pruning increases weight sparsity, which lowers collisions: at the full
    # 4x point the pruned models lose no more accuracy than the dense model.
    dense_4x = curves["0%"][0]["accuracy"] - curves["0%"][0]["int8_accuracy"]
    pruned_4x = curves["40%"][0]["accuracy"] - curves["40%"][0]["int8_accuracy"]
    assert pruned_4x >= dense_4x - 0.08
    # Throttling layers to 2T trades speedup for accuracy.
    for points in curves.values():
        assert points[-1]["speedup"] <= points[0]["speedup"]
