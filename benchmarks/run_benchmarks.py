#!/usr/bin/env python
"""Performance benchmark runner: times the NB-SMT execution paths.

Measures, on this machine:

* the 4-thread (and 2-thread) NB-SMT matmul microbenchmarks -- the seed's
  general-thread-count fallback (the chunked reference executor), the seed's
  factorized implementation (``fast4t_impl="legacy"``) and the optimized
  stacked-GEMM path, with and without sparsity-adaptive block pruning
  (including a narrow-valued operand regime where most reduction deltas
  vanish and pruning shines);
* the explicit SySMT array simulators -- per-PE objects versus the
  vectorized lane-level execution;
* an end-to-end 4-thread model evaluation -- the serial seed configuration
  (reference fallback; also the seed's factorized variant with per-call
  executor construction and no weight-quantization caching) versus the
  optimized pipeline, serial and with a 4-worker sharded process pool;
* a suite-level arm: an overlap-heavy slice of the paper-reproduction
  experiment suite executed the pre-sweep way (each experiment a serial
  loop, no artifact sharing) versus orchestrated through the sweep
  scheduler (``workers=4``, shared point store), plus a resumed run that
  restarts the orchestrated suite from its persisted points;
* a serving arm: closed-loop request traffic against warm NB-SMT serving
  endpoints (``repro/serve``) -- sequential per-request execution
  (``max_batch=1``, one client) versus dynamic batching at saturation
  (engine-sized batches, clients >> batch size), reporting per-endpoint
  throughput, p50/p99 latency and batch fill;
* an adaptive-serving arm: open-loop overload at 2x the top operating
  point's capacity against one paced endpoint -- the static throttle
  assignment versus the QoS controller walking the operating-point ladder
  -- reporting goodput (completed-within-budget responses/sec) and the
  controller's recovery to the top rung after the surge.

* a chaos arm: the same open-loop drive with and without a seeded process
  reaper SIGKILLing forked replicas mid-traffic, reporting the fraction of
  no-fault goodput retained under churn (and that the response ledger
  stayed exact -- no lost, no double-counted responses);
* a lifelines arm: mixed-deadline overload with expiry-cancel on versus
  off (within-deadline goodput when dead requests are cancelled before
  compute versus burning engine time on them), a slow-loris storm against
  the hardened front-end (probe success and latency while hostile
  connections park against the connection cap), and a disk-full arm (the
  telemetry spool squeezed to nothing: count-and-drop overhead versus the
  unlimited writer).

* a cluster arm: the same sweep executed serially in-process versus
  leased to real ``repro.cli worker`` child processes over localhost
  sockets (one worker: the wire overhead; two workers: the cross-machine
  fan-out win), with a bit-identical reduction check, plus federation
  microbenchmarks (document round trips and telemetry spool throughput
  through the cluster agent, and the cross-machine QoS quorum cycle).

* an alerts arm: the telemetry-attached hot path with versus without the
  alert wiring (default-rule ``AlertEngine`` consuming every bus event
  plus the ring-file history recorder), isolating what alerting costs on
  top of telemetry (< 2% target).

* a tracing arm: the same hot path with versus without the PR 10
  distributed-tracing plumbing (per-request context minting, root span,
  batcher span emission, exemplar ring) at head-sampling rates
  0.0/0.1/1.0, isolating what tracing costs on top of telemetry
  (< 2% target at the default 0.1 rate).

Results are written as JSON (default ``BENCH_pr10.json`` at the repo root)
so the performance trajectory of the project is recorded per PR; when the
previous PR's ``BENCH_pr9.json`` is present its headline timings are
embedded for comparison.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--out BENCH_pr10.json]
        [--scale fast|full]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from datetime import datetime, timezone

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.engine import NBSMTEngine
from repro.core.smt import NBSMTMatmul
from repro.systolic.sysmt import SySMTArray


def _best_of(fn, repeats: int, min_time: float = 0.0) -> float:
    """Best wall-clock time of ``repeats`` runs (at least one)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
        if best > 10.0 and min_time == 0.0:
            break  # very slow paths need no extra repeats
    return best


def _quantized_pair(rng, m, k, n, act_sparsity=0.45, wgt_sparsity=0.1):
    x = rng.integers(0, 256, size=(m, k), dtype=np.int64)
    w = rng.integers(-127, 128, size=(k, n), dtype=np.int64)
    x[rng.random((m, k)) < act_sparsity] = 0
    w[rng.random((k, n)) < wgt_sparsity] = 0
    return x, w


def bench_matmul(scale: str) -> dict:
    """Microbenchmarks of the NB-SMT matmul execution paths."""
    rng = np.random.default_rng(7)
    if scale == "full":
        m, k, n, repeats = 1024, 512, 128, 5
    else:
        m, k, n, repeats = 512, 256, 64, 5
    x, w = _quantized_pair(rng, m, k, n)
    macs = float(m) * k * n

    results: dict[str, dict] = {}
    for threads in (2, 4):
        arms = {
            "seed_reference_fallback": NBSMTMatmul(
                threads, "S+A", collect_stats=True, force_reference=True
            ),
            "optimized_factorized": NBSMTMatmul(threads, "S+A", collect_stats=True),
        }
        if threads == 4:
            arms["seed_factorized_legacy"] = NBSMTMatmul(
                threads, "S+A", collect_stats=True, fast4t_impl="legacy"
            )
            arms["optimized_nopruning"] = NBSMTMatmul(
                threads, "S+A", collect_stats=True, prune_blocks=False
            )
        timings = {}
        for name, executor in arms.items():
            executor.matmul(x, w)  # warm-up (LUTs, BLAS)
            ref_repeats = 1 if "reference" in name else repeats
            seconds = _best_of(lambda e=executor: e.matmul(x, w), ref_repeats)
            timings[name] = {
                "seconds": seconds,
                "ops_per_sec": macs / seconds,
            }
        entry = {
            "shape": [m, k, n],
            "threads": threads,
            "policy": "S+A",
            "collect_stats": True,
            "timings": timings,
        }
        entry["speedup_vs_seed_reference"] = (
            timings["seed_reference_fallback"]["seconds"]
            / timings["optimized_factorized"]["seconds"]
        )
        if "seed_factorized_legacy" in timings:
            entry["speedup_vs_seed_factorized"] = (
                timings["seed_factorized_legacy"]["seconds"]
                / timings["optimized_factorized"]["seconds"]
            )
        if "optimized_nopruning" in timings:
            entry["speedup_block_pruning"] = (
                timings["optimized_nopruning"]["seconds"]
                / timings["optimized_factorized"]["seconds"]
            )
        results[f"matmul_{threads}t"] = entry

    # Narrow-valued operands (most activations fit 4 bits): the regime the
    # sparsity-adaptive block pruning targets -- most reduction-delta blocks
    # are empty or nearly empty and are skipped before stacking.
    x_narrow = x % 16
    timings = {}
    for name, prune in (("pruned", True), ("unpruned", False)):
        executor = NBSMTMatmul(4, "S+A", collect_stats=True, prune_blocks=prune)
        executor.matmul(x_narrow, w)
        seconds = _best_of(lambda e=executor: e.matmul(x_narrow, w), repeats)
        timings[name] = {"seconds": seconds, "ops_per_sec": macs / seconds}
    results["matmul_4t_narrow_acts"] = {
        "shape": [m, k, n],
        "threads": 4,
        "policy": "S+A",
        "note": "activations clipped to 4-bit range; block pruning regime",
        "timings": timings,
        "speedup_block_pruning": (
            timings["unpruned"]["seconds"] / timings["pruned"]["seconds"]
        ),
    }
    return results


def bench_explicit_sim(scale: str) -> dict:
    """Per-PE object simulation versus vectorized lane-level execution."""
    rng = np.random.default_rng(11)
    m, k, n = (48, 96, 24) if scale == "fast" else (96, 192, 48)
    x, w = _quantized_pair(rng, m, k, n)
    array = SySMTArray(rows=16, cols=16, threads=4, policy="S+A")
    array.matmul_explicit(x, w)
    vectorized = _best_of(lambda: array.matmul_explicit(x, w), 3)
    per_pe = _best_of(lambda: array.matmul_per_pe(x, w), 1)
    return {
        "explicit_sim_4t": {
            "shape": [m, k, n],
            "timings": {
                "seed_per_pe_objects": {"seconds": per_pe},
                "optimized_vectorized": {"seconds": vectorized},
            },
            "speedup": per_pe / vectorized,
        }
    }


def _build_harness(scale: str):
    from repro.eval.harness import SysmtHarness
    from repro.models.zoo import TrainedModel
    from repro.nn import (
        GlobalAvgPool2d,
        Linear,
        MaxPool2d,
        Sequential,
        SyntheticImageDataset,
        TrainConfig,
        Trainer,
    )
    from repro.nn.data import DatasetConfig
    from repro.nn.layers.combine import conv_bn_relu

    eval_images = 256 if scale == "fast" else 1024
    dataset = SyntheticImageDataset(
        DatasetConfig(
            train_size=256, val_size=eval_images, image_size=16,
            num_classes=6, seed=7,
        )
    )
    model = Sequential(
        conv_bn_relu(3, 8, 3, seed=11),
        MaxPool2d(2),
        conv_bn_relu(8, 16, 3, seed=12),
        conv_bn_relu(16, 16, 3, seed=13),
        MaxPool2d(2),
        GlobalAvgPool2d(),
        Linear(16, dataset.num_classes, seed=14),
    )
    trainer = Trainer(model, TrainConfig(epochs=2, batch_size=64, lr=0.1, seed=3))
    trainer.fit(
        dataset.train_images, dataset.train_labels,
        dataset.val_images, dataset.val_labels,
    )
    entry = TrainedModel("tinynet", model, dataset, 0.0, {})
    return SysmtHarness(
        entry, max_eval_images=eval_images, calibration_images=96, batch_size=64
    )


def bench_end_to_end(scale: str) -> dict:
    """End-to-end 4-thread NB-SMT model evaluation, serial and sharded."""
    harness = _build_harness(scale)
    images = int(harness.eval_images.shape[0])
    harness.evaluate_nbsmt(threads=4)  # warm-up

    def seed_reference_run():
        harness.evaluate_nbsmt(
            threads=4,
            engine=NBSMTEngine("S+A", collect_stats=True, force_reference=True),
        )

    def seed_factorized_run():
        harness.qmodel.config.cache_weight_quant = False
        try:
            harness.evaluate_nbsmt(
                threads=4,
                engine=NBSMTEngine(
                    "S+A",
                    collect_stats=True,
                    reuse_executors=False,
                    fast4t_impl="legacy",
                ),
            )
        finally:
            harness.qmodel.config.cache_weight_quant = True

    repeats = 3
    timings = {
        "seed_serial_reference": {
            "seconds": _best_of(seed_reference_run, 1)
        },
        "seed_serial_factorized": {
            "seconds": _best_of(seed_factorized_run, repeats)
        },
        "optimized_serial": {
            "seconds": _best_of(lambda: harness.evaluate_nbsmt(threads=4), repeats)
        },
        "optimized_serial_nopruning": {
            "seconds": _best_of(
                lambda: harness.evaluate_nbsmt(
                    threads=4,
                    engine=NBSMTEngine(
                        "S+A", collect_stats=True, prune_blocks=False
                    ),
                ),
                repeats,
            )
        },
        "optimized_parallel_4workers": {
            "seconds": _best_of(
                lambda: harness.evaluate_nbsmt(threads=4, workers=4), repeats
            )
        },
    }
    for values in timings.values():
        values["images_per_sec"] = images / values["seconds"]
    result = {
        "eval_4t": {
            "images": images,
            "threads": 4,
            "collect_stats": True,
            "timings": timings,
            "speedup_parallel4_vs_seed_serial": (
                timings["seed_serial_reference"]["seconds"]
                / timings["optimized_parallel_4workers"]["seconds"]
            ),
            "speedup_serial_vs_seed_serial": (
                timings["seed_serial_reference"]["seconds"]
                / timings["optimized_serial"]["seconds"]
            ),
            "speedup_serial_vs_seed_factorized": (
                timings["seed_serial_factorized"]["seconds"]
                / timings["optimized_serial"]["seconds"]
            ),
        }
    }
    harness.close()
    return result


#: The overlap-heavy slice of the experiment suite used by the suite arm:
#: Fig. 8 / Fig. 9 share their two GoogLeNet evaluations, and the energy
#: analysis shares the five 4-thread baselines of the Table V throttling
#: curves (plus one of its 2-thread runs with Fig. 9).
SUITE_EXPERIMENTS = ("fig8", "fig9", "table5", "energy")


def bench_suite(scale: str, workers: int = 4) -> dict:
    """Experiment-suite wall clock: pre-sweep serial loops vs orchestration.

    All arms start from a warm model-zoo disk cache but cold in-process
    harness caches and an empty sweep point store, so they time the same
    calibration + evaluation work.  The ``serial_isolated`` arm reproduces
    the pre-sweep behavior: one experiment at a time, each computing every
    evaluation itself (no point sharing, no persistence reads).  The
    ``orchestrated`` arm runs the same experiments through one sweep
    session (``workers=4``; on a multi-core machine the model groups fan
    out across forked workers, on a single core the scheduler degrades to
    serial and the win is the cross-experiment point reuse).  The
    ``resumed`` arm restarts the orchestrated suite afterwards and serves
    everything from the persisted points.
    """
    from repro.eval.experiments import EXPERIMENTS
    from repro.eval.experiments.common import clear_harness_cache
    from repro.eval.sweep import PointStore, SweepSession

    # Warm the zoo disk cache outside the timed region.
    for name in SUITE_EXPERIMENTS:
        EXPERIMENTS[name]  # registry sanity
    from repro.models.zoo import PAPER_MODEL_NAMES, load_trained_model

    for model in PAPER_MODEL_NAMES:
        load_trained_model(model, fast=(scale == "fast"))

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def serial_isolated():
        for name in SUITE_EXPERIMENTS:
            session = SweepSession(scale=scale, workers=1, reuse=False)
            EXPERIMENTS[name].run(scale=scale, session=session)

    def orchestrated(resume: bool):
        session = SweepSession(scale=scale, workers=workers, resume=resume)
        for name in SUITE_EXPERIMENTS:
            EXPERIMENTS[name].run(scale=scale, session=session)

    store = PointStore(scale)
    store.clear()
    clear_harness_cache()
    serial_seconds = timed(serial_isolated)

    store.clear()
    clear_harness_cache()
    orchestrated_seconds = timed(lambda: orchestrated(resume=False))

    clear_harness_cache()
    resumed_seconds = timed(lambda: orchestrated(resume=True))

    return {
        "suite": {
            "experiments": list(SUITE_EXPERIMENTS),
            "workers": workers,
            "cpus_available": os.cpu_count(),
            "timings": {
                "serial_isolated": {"seconds": serial_seconds},
                f"orchestrated_workers{workers}": {
                    "seconds": orchestrated_seconds
                },
                "resumed_from_store": {"seconds": resumed_seconds},
            },
            "speedup_orchestrated_vs_serial": (
                serial_seconds / orchestrated_seconds
            ),
            "speedup_resume_vs_serial": serial_seconds / resumed_seconds,
        }
    }


#: Serving-arm endpoints: per-model NB-SMT engine configs at each model's
#: empirically useful batch size (the registry stores per-model configs by
#: design).  Threads=2 is the paper's primary SySMT operating point.
SERVING_ENDPOINTS = (
    {"name": "mobilenet_v1", "threads": 2, "max_batch": 32},
    {"name": "googlenet", "threads": 2, "max_batch": 32},
    {"name": "resnet18", "threads": 2, "max_batch": 8},
)


def _closed_loop(batcher, images, *, requests: int, concurrency: int):
    """Drive single-image closed-loop clients; returns (elapsed, latencies)."""
    import threading

    latencies: list[float] = []
    lock = threading.Lock()
    counter = {"next": 0}

    def worker():
        while True:
            with lock:
                index = counter["next"]
                if index >= requests:
                    return
                counter["next"] += 1
            start = index % images.shape[0]
            issued = time.perf_counter()
            batcher.submit(images[start : start + 1], size=1).result(timeout=600)
            elapsed = time.perf_counter() - issued
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(max(1, concurrency))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, sorted(latencies)


def _load_report(requests: int, elapsed: float, latencies: list[float]):
    """Wrap one arm's measurements in the serving client's LoadReport."""
    from repro.serve.client import LoadReport

    return LoadReport(
        requests=requests,
        images=requests,
        rejected=0,
        errors=0,
        elapsed_seconds=elapsed,
        latencies_seconds=latencies,
    )


def bench_serving(scale: str) -> dict:
    """Dynamic batching versus sequential per-request serving (repro/serve).

    For each endpoint of the serving mini-zoo, one warm engine replica
    handles (a) a single closed-loop client issuing one image per request
    with batching disabled -- the sequential per-request baseline -- and
    (b) saturating closed-loop traffic (clients = 4x the batch budget)
    through the dynamic batcher.  Both arms run the identical engine stack
    (statistics collection on), so the ratio isolates what request
    coalescing buys.
    """
    from repro.eval.experiments.common import clear_harness_cache
    from repro.serve.batcher import DynamicBatcher
    from repro.serve.metrics import EndpointMetrics
    from repro.serve.pool import EnginePool
    from repro.serve.registry import ModelSpec, ServeRegistry

    sequential_requests = 48 if scale == "fast" else 128
    batched_requests = 256 if scale == "fast" else 1024

    endpoints: dict[str, dict] = {}
    for config in SERVING_ENDPOINTS:
        registry = ServeRegistry()
        spec = registry.register(
            ModelSpec(
                name=config["name"],
                threads=config["threads"],
                max_batch=config["max_batch"],
                max_wait_ms=5.0,
            )
        )
        pool = EnginePool(registry, scale=scale, warm=True)
        replica = pool.replica_set(spec.name).replicas[0]
        images = replica.harness.eval_images

        def warmed_batcher(max_batch, max_wait, metrics=None):
            batcher = DynamicBatcher(
                pool.runner_for(spec.name, metrics=metrics),
                max_batch=max_batch,
                max_wait=max_wait,
                name=f"bench-{spec.name}",
            )
            # Prime caches (engine executors, BLAS buffers at both the
            # single-image and the full-batch shapes) outside the timed
            # region.
            for index in range(2):
                batcher.submit(images[index : index + 1]).result(timeout=600)
            for _ in range(2):
                futures = [
                    batcher.submit(images[index : index + 1])
                    for index in range(max_batch)
                ]
                for future in futures:
                    future.result(timeout=600)
            if metrics is not None:
                # Batch-fill metrics start counting after the warm-up.
                batcher.on_batch = metrics.record_batch
            return batcher

        sequential = warmed_batcher(max_batch=1, max_wait=0.0)
        seq_elapsed, seq_latencies = _closed_loop(
            sequential, images, requests=sequential_requests, concurrency=1
        )
        sequential.close()

        concurrency = 4 * spec.max_batch
        metrics = EndpointMetrics(spec.name, batch_capacity=spec.max_batch)
        batched = warmed_batcher(
            max_batch=spec.max_batch, max_wait=0.015, metrics=metrics
        )
        bat_elapsed, bat_latencies = _closed_loop(
            batched,
            images,
            requests=batched_requests,
            concurrency=concurrency,
        )
        batched.close()
        pool.close()

        seq_report = _load_report(sequential_requests, seq_elapsed, seq_latencies)
        bat_report = _load_report(batched_requests, bat_elapsed, bat_latencies)
        seq_throughput = seq_report.throughput_images_per_s
        bat_throughput = bat_report.throughput_images_per_s
        endpoints[spec.name] = {
            "threads": spec.threads,
            "policy": spec.resolved_policy(),
            "max_batch": spec.max_batch,
            "sequential": {
                "requests": sequential_requests,
                "throughput_images_per_s": seq_throughput,
                "latency_p50_ms": seq_report.latency_quantile(0.50) * 1000,
                "latency_p99_ms": seq_report.latency_quantile(0.99) * 1000,
            },
            "dynamic_batching": {
                "requests": batched_requests,
                "concurrency": concurrency,
                "throughput_images_per_s": bat_throughput,
                "latency_p50_ms": bat_report.latency_quantile(0.50) * 1000,
                "latency_p99_ms": bat_report.latency_quantile(0.99) * 1000,
                "mean_batch_size": metrics.mean_batch_size,
                "batch_fill": metrics.batch_fill,
            },
            "speedup_batched_vs_sequential": bat_throughput / seq_throughput,
        }
        print(
            f"  serving/{spec.name}: sequential {seq_throughput:.1f} img/s, "
            f"batched {bat_throughput:.1f} img/s "
            f"({bat_throughput / seq_throughput:.2f}x, "
            f"fill {metrics.batch_fill:.2f}, "
            f"p99 {bat_report.latency_quantile(0.99) * 1000:.0f} ms)",
            flush=True,
        )
    clear_harness_cache()
    best = max(
        entry["speedup_batched_vs_sequential"] for entry in endpoints.values()
    )
    return {
        "serving": {
            "scale": scale,
            "collect_stats": True,
            "endpoints": endpoints,
            "speedup_dynamic_batching_best": best,
            "note": (
                "closed-loop single-image clients against warm repro.serve "
                "endpoints; sequential = max_batch 1, one client; dynamic "
                "batching = engine-sized batches at saturation"
            ),
        }
    }


def _open_loop_drive(
    batcher,
    admission,
    metrics,
    images,
    *,
    rate: float,
    duration: float,
    budget_s: float,
):
    """Open-loop arrivals against a batcher, mirroring the server's path.

    One scheduler thread issues single-image submits on the fixed arrival
    clock (admission-checked, exactly like ``:predict``); completions are
    collected via future callbacks, so offered load never self-throttles.
    Returns offered/rejected/completed counts, within-budget goodput and
    the latency tail.
    """
    import threading

    state = {
        "offered": 0,
        "admitted": 0,
        "settled": 0,
        "rejected": 0,
        "completed": 0,
        "within_budget": 0,
        "latencies": [],
    }
    lock = threading.Lock()
    pending = []
    started = time.perf_counter()
    index = 0
    while True:
        arrival = started + index / rate
        if arrival - started >= duration:
            break
        delay = arrival - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        image = images[index % images.shape[0] : index % images.shape[0] + 1]
        index += 1
        state["offered"] += 1
        if not admission.try_admit(1):
            metrics.record_rejection(1)
            with lock:
                state["rejected"] += 1
            continue
        issued = time.perf_counter()
        try:
            future = batcher.submit(image, size=1)
        except Exception:
            admission.release(1)
            with lock:
                state["rejected"] += 1
            continue

        with lock:
            state["admitted"] += 1

        def on_done(done_future, issued=issued):
            admission.release(1)
            failed = (
                done_future.cancelled()
                or done_future.exception() is not None
            )
            latency = time.perf_counter() - issued
            if not failed:
                metrics.record_request(latency, 1)
            with lock:
                state["settled"] += 1
                if not failed:
                    state["completed"] += 1
                    state["latencies"].append(latency)
                    if latency <= budget_s:
                        state["within_budget"] += 1

        future.add_done_callback(on_done)
        pending.append(future)
    for future in pending:
        try:
            future.result(timeout=600)
        except Exception:
            pass
    # Future.result() can return before the done-callbacks have run: wait
    # for every admitted request's callback to settle before reading (and
    # sorting) the shared completion state.
    deadline = time.perf_counter() + 60.0
    while time.perf_counter() < deadline:
        with lock:
            if state["settled"] >= state["admitted"]:
                break
        time.sleep(0.005)
    with lock:
        state["elapsed"] = time.perf_counter() - started
        state["latencies"].sort()
    return state


def bench_adaptive_serving(scale: str) -> dict:
    """Static operating point versus the adaptive QoS ladder under overload.

    One paced googlenet endpoint (``pace_sysmt=True``: batch wall clock is
    padded to the modeled SySMT service time of the active rung -- the host
    functional simulation is cost-inverted, so without pacing a ladder walk
    would not have the modeled throughput effect).  Open-loop arrivals at
    2x the top rung's capacity overload both arms identically; the static
    arm holds the top (most accurate) rung and sheds, the adaptive arm's
    controller degrades down the ladder, serves the surge within the
    latency budget, and -- once the arrival rate collapses -- recovers back
    to the top rung.  Goodput (completed within budget / second) is the
    figure of merit.
    """
    from repro.eval.experiments.common import clear_harness_cache
    from repro.serve.batcher import DynamicBatcher
    from repro.serve.metrics import EndpointMetrics
    from repro.serve.pool import EnginePool
    from repro.serve.qos import EndpointGovernor, QoSConfig, QoSController
    from repro.serve.registry import ModelSpec, ServeRegistry

    import threading

    overload_s = 6.0 if scale == "fast" else 12.0
    recovery_s = 5.0 if scale == "fast" else 8.0

    # Throttle the MAC-dominant layers: on the scaled-down zoo the
    # highest-MSE layers are too small to move whole-model throughput, and
    # a ladder that costs nothing needs no controller.  Ranking the
    # slowed set by MAC share puts the benchmark in the regime the paper's
    # Fig. 10 trade is about (throttling buys accuracy, costs speedup).
    from repro.eval.experiments.common import get_harness

    probe = get_harness("googlenet", scale)
    mac_counts = probe.layer_mac_counts()
    slow_layers = tuple(
        sorted(mac_counts, key=lambda name: -mac_counts[name])[:2]
    )

    spec_kwargs = dict(
        name="googlenet",
        threads=4,
        ladder_rungs=3,
        slow_layers=slow_layers,
        slow_threads=1,  # rung 0 silences the two largest layers entirely
        max_batch=16,
        max_wait_ms=4.0,
        max_pending=64,
        pace_sysmt=True,
    )

    def build_stack(pace_unit=None):
        # The first stack calibrates its own pacing unit; later stacks
        # reuse that measurement (skipping the calibration inferences) so
        # every arm is paced identically by construction.
        registry = ServeRegistry()
        spec = registry.register(
            ModelSpec(**{**spec_kwargs, "pace_sysmt": pace_unit is None})
        )
        pool = EnginePool(registry, scale=scale, warm=True)
        ladder = pool.ladder(spec.name)
        if pace_unit is None:
            unit = pool.pacing_unit(spec.name)
        else:
            pool.set_pacing_unit(spec.name, pace_unit)
            unit = pace_unit
        metrics = EndpointMetrics(spec.name, batch_capacity=spec.max_batch)
        batcher = DynamicBatcher(
            pool.runner_for(spec.name, metrics=metrics, with_point=True),
            max_batch=spec.max_batch,
            max_wait=spec.max_wait_ms / 1000.0,
            on_batch=metrics.record_batch,
            name=f"adaptive-{spec.name}",
        )
        return registry, spec, pool, ladder, unit, metrics, batcher

    registry, spec, pool, ladder, unit, metrics, batcher = build_stack()
    # Pacing makes per-rung capacity analytic: speedup / unit images/sec.
    capacity_top = ladder.top.expected_speedup / unit
    capacity_fastest = ladder.fastest.expected_speedup / unit
    offered_rate = 2.0 * capacity_top
    # A full admission queue served at the *fastest* rung fits the budget
    # (with 20% headroom); served at the top rung it does not -- that is
    # the modeled Fig. 10 trade the controller exploits.
    budget_s = 1.2 * (spec.max_pending + spec.max_batch) * unit / (
        ladder.fastest.expected_speedup
    )
    images = pool.replica_set(spec.name).replicas[0].harness.eval_images

    def run_static():
        admission = registry.admission(spec.name)
        return _open_loop_drive(
            batcher, admission, metrics, images,
            rate=offered_rate, duration=overload_s, budget_s=budget_s,
        )

    static_state = run_static()
    static_level = pool.current_level(spec.name)
    batcher.close()
    pool.close()

    # Fresh stack for the adaptive arm (cold queues, zeroed admission) --
    # driven by the *same* measured pacing unit, so both arms face the
    # identical offered-rate-to-capacity ratio and latency budget.
    registry, spec, pool, ladder, unit, metrics, batcher = build_stack(
        pace_unit=unit
    )
    admission = registry.admission(spec.name)
    controller = QoSController(
        len(ladder),
        config=QoSConfig(
            degrade_after_s=0.2, recover_after_s=0.8, cooldown_s=0.4
        ),
    )
    governor = EndpointGovernor(
        endpoint=spec.name,
        pool=pool,
        admission=admission,
        batcher=batcher,
        metrics=metrics,
        controller=controller,
    )
    stop = threading.Event()

    def ticker():
        while not stop.is_set():
            governor.tick()
            time.sleep(0.05)

    tick_thread = threading.Thread(target=ticker, daemon=True)
    tick_thread.start()
    adaptive_state = _open_loop_drive(
        batcher, admission, metrics, images,
        rate=offered_rate, duration=overload_s, budget_s=budget_s,
    )
    # The drive returns only after the backlog drained, during which the
    # ticker may already have started recovering -- the true peak rung
    # comes from the transition log, not from the level at this instant.
    overload_transitions = list(controller.snapshot()["recent_transitions"])
    degraded_level = max(
        (entry["to_level"] for entry in overload_transitions), default=0
    )
    # The surge subsides: a trickle of traffic while the controller climbs
    # back to the top rung.
    recovery_state = _open_loop_drive(
        batcher, admission, metrics, images,
        rate=max(1.0, 0.2 * capacity_top), duration=recovery_s,
        budget_s=budget_s,
    )
    deadline = time.perf_counter() + 30.0
    while pool.current_level(spec.name) != 0 and time.perf_counter() < deadline:
        time.sleep(0.05)
    recovered_level = pool.current_level(spec.name)
    stop.set()
    tick_thread.join(timeout=10)
    transitions = controller.snapshot()["recent_transitions"]
    batcher.close()
    pool.close()
    clear_harness_cache()

    def arm_summary(state):
        latencies = state["latencies"]

        def quantile(q):
            if not latencies:
                return 0.0
            return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

        return {
            "offered": state["offered"],
            "rejected": state["rejected"],
            "completed": state["completed"],
            "within_budget": state["within_budget"],
            "goodput_per_s": state["within_budget"] / state["elapsed"],
            "throughput_per_s": state["completed"] / state["elapsed"],
            "latency_p50_ms": quantile(0.50) * 1000,
            "latency_p99_ms": quantile(0.99) * 1000,
        }

    static_summary = arm_summary(static_state)
    adaptive_summary = arm_summary(adaptive_state)
    gain = (
        adaptive_summary["goodput_per_s"]
        / max(1e-9, static_summary["goodput_per_s"])
    )
    print(
        f"  adaptive/{spec.name}: static goodput "
        f"{static_summary['goodput_per_s']:.1f}/s (rung {static_level}), "
        f"adaptive {adaptive_summary['goodput_per_s']:.1f}/s "
        f"(degraded to rung {degraded_level}, recovered to "
        f"{recovered_level}) = {gain:.2f}x",
        flush=True,
    )
    return {
        "serving_adaptive": {
            "scale": scale,
            "endpoint": spec.name,
            "ladder": [point.describe() for point in ladder.points],
            "pacing_unit_s_per_image": unit,
            "capacity_top_rung_per_s": capacity_top,
            "capacity_fastest_rung_per_s": capacity_fastest,
            "offered_rate_per_s": offered_rate,
            "latency_budget_ms": budget_s * 1000,
            "overload_seconds": overload_s,
            "static": static_summary,
            "adaptive": adaptive_summary,
            "adaptive_recovery": {
                "trickle_rate_per_s": max(1.0, 0.2 * capacity_top),
                "completed": recovery_state["completed"],
                "degraded_level_at_peak": degraded_level,
                "final_level": recovered_level,
                "recovered_to_top": recovered_level == 0,
                "transitions": transitions,
            },
            "goodput_gain_adaptive_vs_static": gain,
            "note": (
                "open-loop single-image arrivals at 2x the top rung's paced "
                "capacity; goodput = responses within the latency budget "
                "per second; both arms share engine config, batcher and "
                "admission budget -- only the QoS controller differs"
            ),
        }
    }


def bench_chaos(scale: str) -> dict:
    """Goodput retained under replica churn versus a no-fault baseline.

    Both arms run the identical in-process serving stack (forked replica
    workers -> dynamic batcher -> admission) at the same offered rate; the
    churn arm adds a seeded process reaper SIGKILLing one replica worker
    on a fixed timeline.  The headline is the retained goodput fraction --
    and the response ledger's verdict that churn lost or double-counted
    nothing (the chaos lane's exactly-once contract, measured rather than
    unit-tested).
    """
    import random

    from repro.chaos.actors import ProcessReaper
    from repro.chaos.drive import ServingStack, drive_open_loop
    from repro.chaos.invariants import ResponseLedger
    from repro.chaos.schedule import ChaosSchedule
    from repro.eval.parallel import fork_available

    if not fork_available():
        return {
            "serving_chaos": {"skipped": "fork start method unavailable"}
        }

    seed = 610
    duration = 8.0 if scale == "fast" else 20.0
    budget_s = 2.0
    fork_workers = 2

    def build():
        return ServingStack(
            model="resnet18",
            scale=scale,
            fork_workers=fork_workers,
            threads=2,
            max_batch=8,
            max_wait_ms=2.0,
            max_pending=64,
        )

    # Probe sustainable throughput on the no-fault stack, then offer both
    # arms the same sub-saturation rate so the baseline's goodput is a
    # clean reference (shedding would muddy the retained fraction).
    stack = build()
    try:
        probe = drive_open_loop(
            stack, rate=200.0, duration=2.0, budget_s=budget_s
        )
        rate = max(4.0, 0.7 * probe["throughput_images_per_s"])
        baseline_ledger = ResponseLedger()
        baseline = drive_open_loop(
            stack, rate=rate, duration=duration, budget_s=budget_s,
            ledger=baseline_ledger,
        )
    finally:
        stack.close()

    stack = build()
    reaper = ProcessReaper(random.Random(seed))
    kill_period_s = max(1.0, duration / 6.0)
    schedule = ChaosSchedule(seed=seed)
    schedule.every(
        kill_period_s,
        "reap-replica",
        lambda: reaper.reap(stack.replica_pids()),
        until_s=duration,
        jitter_s=0.2,
    )
    churn_ledger = ResponseLedger()
    try:
        chaos_thread = schedule.run_in_thread()
        churn = drive_open_loop(
            stack, rate=rate, duration=duration, budget_s=budget_s,
            ledger=churn_ledger,
        )
        schedule.stop()
        chaos_thread.join(timeout=30)
        health = stack.replica_health()
    finally:
        stack.close()

    retained = churn["goodput_images_per_s"] / max(
        baseline["goodput_images_per_s"], 1e-9
    )
    return {
        "serving_chaos": {
            "scale": scale,
            "seed": seed,
            "endpoint": "resnet18",
            "fork_workers": fork_workers,
            "offered_rate_per_s": rate,
            "duration_s": duration,
            "latency_budget_ms": budget_s * 1000.0,
            "kill_period_s": kill_period_s,
            "kills": len(reaper.killed),
            "baseline": baseline,
            "churn": churn,
            "replica_health_after_churn": health,
            "ledger_baseline": baseline_ledger.counts(),
            "ledger_churn": churn_ledger.counts(),
            "ledger_exact_under_churn": not churn_ledger.violations(),
            "goodput_retained_under_churn": retained,
            "note": (
                "identical stacks and offered rate; the churn arm SIGKILLs "
                "one forked replica worker per kill period (seeded "
                "timeline); goodput = responses within the latency budget "
                "per second; ledger_exact_under_churn certifies no lost "
                "and no double-counted responses across the kills"
            ),
        }
    }


def bench_lifelines(scale: str) -> dict:
    """Request lifelines: what expiry-cancel, socket hardening and disk
    budgets buy under hostile conditions.

    Three sub-arms:

    * ``deadline`` -- identical stacks under identical mixed-deadline
      overload (every second request carries a tight deadline), once with
      the deadlines attached (the batcher cancels expired requests before
      compute) and once without (the engine burns time on work nobody is
      waiting for).  The headline is the within-deadline goodput gain.
    * ``slow_loris`` -- a real HTTP front-end with a small connection cap
      under a parked slow-loris herd: well-behaved probe success rate and
      latency during the storm, and the reclaim counters that prove the
      cap held.
    * ``disk_full`` -- the telemetry spool writer at full speed versus
      squeezed to a zero quota: count-and-drop must be at least as cheap
      as writing, with every drop counted.
    """
    import random

    from repro.chaos.actors import DiskFiller, NetworkMangler
    from repro.chaos.drive import HttpStack, ServingStack, drive_open_loop
    from repro.chaos.invariants import ResponseLedger

    seed = 710
    duration = 6.0 if scale == "fast" else 15.0
    deadline_ms = 250.0
    budget_s = deadline_ms / 1000.0

    def build():
        return ServingStack(
            model="resnet18",
            scale=scale,
            fork_workers=0,
            threads=2,
            max_batch=8,
            max_wait_ms=2.0,
            max_pending=256,
        )

    def mixed(index):
        # Every second arrival carries the tight deadline; the rest are
        # deadline-free (the traffic the cancellation is buying room for).
        return deadline_ms if index % 2 else None

    # -- deadline arm: expiry-cancel off (baseline) ------------------------
    stack = build()
    try:
        probe = drive_open_loop(
            stack, rate=200.0, duration=2.0, budget_s=budget_s
        )
        rate = max(8.0, 2.0 * probe["throughput_images_per_s"])
        off_ledger = ResponseLedger()
        expiry_off = drive_open_loop(
            stack, rate=rate, duration=duration, budget_s=budget_s,
            ledger=off_ledger,
        )
    finally:
        stack.close()

    # -- deadline arm: expiry-cancel on ------------------------------------
    stack = build()
    try:
        drive_open_loop(stack, rate=200.0, duration=2.0, budget_s=budget_s)
        on_ledger = ResponseLedger()
        expiry_on = drive_open_loop(
            stack, rate=rate, duration=duration, budget_s=budget_s,
            ledger=on_ledger, deadline_ms=mixed,
        )
        expired_in_batcher = stack.batcher.expired_requests
    finally:
        stack.close()

    goodput_gain = expiry_on["goodput_images_per_s"] / max(
        expiry_off["goodput_images_per_s"], 1e-9
    )

    # -- slow-loris arm ----------------------------------------------------
    http = HttpStack(
        model="resnet18",
        scale=scale,
        max_connections=8,
        read_timeout_s=1.0,
    )
    loris = {}
    try:
        replica = http.server.pool.replica_set("resnet18").replicas[0]
        image = replica.harness.eval_images[0:1]
        probes = 8 if scale == "fast" else 24

        def probe_round():
            latencies, ok = [], 0
            for _ in range(probes):
                start = time.perf_counter()
                try:
                    status, _payload = http.probe(
                        "resnet18", image, timeout_s=30.0
                    )
                except OSError:
                    status = 0
                latencies.append(time.perf_counter() - start)
                ok += int(status == 200)
            latencies.sort()
            return {
                "probes": probes,
                "ok": ok,
                "p50_ms": latencies[len(latencies) // 2] * 1000.0,
                "max_ms": latencies[-1] * 1000.0,
            }

        calm = probe_round()
        mangler = NetworkMangler(http.host, http.port,
                                 rng=random.Random(seed))
        parked = sum(int(mangler.slow_loris()) for _ in range(16))
        storm = probe_round()
        released = mangler.release_all()
        stats = http.connection_stats()
        loris = {
            "max_connections": 8,
            "parked_attackers": parked,
            "released": released,
            "calm": calm,
            "storm": storm,
            "probe_success_under_storm": storm["ok"] / max(storm["probes"], 1),
            "connection_stats": stats,
            "cap_held": stats["open"] <= stats["max"],
        }
    finally:
        http.close()

    # -- disk-full arm -----------------------------------------------------
    from repro.telemetry.bus import TelemetryBus
    from repro.utils.diskbudget import DiskBudget

    spool_dir = tempfile.mkdtemp(prefix="bench-lifelines-spool-")
    bus = TelemetryBus(role="bench")
    events = 2000 if scale == "fast" else 10000
    try:
        budget = DiskBudget(spool_dir, 256 * 1024 * 1024, name="bench-spool")
        bus.attach_spool(spool_dir, role="bench", budget=budget)

        def publish_round():
            start = time.perf_counter()
            for index in range(events):
                bus.publish("bench_event", index=index, payload="x" * 64)
            return time.perf_counter() - start

        writing = publish_round()
        filler = DiskFiller(random.Random(seed))
        filler.squeeze(budget, to_bytes=1)
        dropping = publish_round()
        filler.restore()
        spool_stats = bus.spool_stats() or {}
        disk_full = {
            "events_per_round": events,
            "writing_events_per_s": events / max(writing, 1e-9),
            "dropping_events_per_s": events / max(dropping, 1e-9),
            "drop_speedup_vs_write": writing / max(dropping, 1e-9),
            "dropped_events": spool_stats.get("dropped_events", 0),
            "all_drops_counted": (
                spool_stats.get("dropped_events", 0) >= events
            ),
        }
    finally:
        bus.detach_spool()
        shutil.rmtree(spool_dir, ignore_errors=True)

    return {
        "serving_lifelines": {
            "scale": scale,
            "seed": seed,
            "endpoint": "resnet18",
            "offered_rate_per_s": rate,
            "duration_s": duration,
            "deadline_ms": deadline_ms,
            "expiry_cancel_off": expiry_off,
            "expiry_cancel_on": expiry_on,
            "expired_before_compute": expired_in_batcher,
            "ledger_off": off_ledger.counts(),
            "ledger_on": on_ledger.counts(),
            "ledger_exact": not (
                off_ledger.violations() or on_ledger.violations()
            ),
            "goodput_gain_from_expiry_cancel": goodput_gain,
            "slow_loris": loris,
            "disk_full": disk_full,
            "note": (
                "deadline arm: identical stacks at the same 2x-overload "
                "rate; the on arm attaches a 250ms deadline to every "
                "second request so the batcher cancels expired work "
                "before compute; goodput = within-deadline responses per "
                "second. slow_loris: probe traffic while 16 attackers "
                "park against an 8-connection cap. disk_full: spool "
                "publish throughput, unlimited vs zero quota."
            ),
        }
    }


def bench_telemetry(scale: str) -> dict:
    """Telemetry bus overhead + coordinated-vs-independent shard QoS.

    Arm 1 (bus overhead): the same saturating closed-loop drive through a
    warm dynamic batcher, once with telemetry fully off (inactive bus --
    one boolean check per publish site) and once fully on (spool sink,
    subscriber, per-batch events, a 1s health ticker), mirroring exactly
    what the server wires up.  Target: < 2% throughput cost.

    Arm 2 (coordination): two socket-free "shards" of one paced googlenet
    endpoint -- own admission/batcher/governor each, same machinery as the
    PR 4 adaptive-overload arm -- under *skewed* open-loop arrivals (shard
    0 overloaded, shard 1 nearly idle; the regime where independent
    controllers diverge).  Run once with independent controllers, once
    with the cross-shard coordinator.  Figures of merit: the fraction of
    time the shards serve *different* rungs (divergence -- coordinated
    must be ~0) and combined within-budget goodput (coordinated must hold
    parity with independent).
    """
    import threading

    from repro.eval.experiments.common import clear_harness_cache, get_harness
    from repro.serve.batcher import DynamicBatcher
    from repro.serve.metrics import EndpointMetrics
    from repro.serve.pool import EnginePool
    from repro.serve.qos import EndpointGovernor, QoSConfig, QoSController
    from repro.serve.registry import ModelSpec, ServeRegistry
    from repro.telemetry import bus as telemetry_bus
    from repro.telemetry.coordinator import QoSCoordinator, ShardStateChannel

    # -- arm 1: bus overhead on the serving hot path -----------------------
    requests = 192 if scale == "fast" else 512
    registry = ServeRegistry()
    spec = registry.register(
        ModelSpec(name="resnet18", threads=2, max_batch=8, max_wait_ms=2.0)
    )
    pool = EnginePool(registry, scale=scale, warm=True)
    metrics = EndpointMetrics(spec.name, batch_capacity=spec.max_batch)

    def on_batch(report):
        # The server's wiring: record + publish per executed batch.
        metrics.record_batch(report)
        telemetry_bus.publish(
            "batch_served",
            endpoint=spec.name,
            images=report.num_images,
            service_s=report.service_seconds,
        )

    batcher = DynamicBatcher(
        pool.runner_for(spec.name, metrics=metrics),
        max_batch=spec.max_batch,
        max_wait=spec.max_wait_ms / 1000.0,
        on_batch=on_batch,
        name="telemetry-bench",
    )
    images = pool.replica_set(spec.name).replicas[0].harness.eval_images
    concurrency = 4 * spec.max_batch

    def drive():
        elapsed, _ = _closed_loop(
            batcher, images, requests=requests, concurrency=concurrency
        )
        return requests / elapsed

    drive()  # warm
    bus = telemetry_bus.get_bus()
    spool_dir = tempfile.mkdtemp(prefix="repro-bench-telemetry-")
    events_spooled = 0
    ticking = threading.Event()

    def health_ticker():
        while not ticking.wait(1.0):
            bus.publish(
                "endpoint_health",
                endpoint=spec.name,
                requests=metrics.requests,
                recent_p99_ms=metrics.recent_p99() * 1000.0,
            )

    def telemetry_on():
        # The complete dashboard-attached configuration: spool to disk, a
        # live subscriber (SSE stand-in), and the 1s health ticker.
        bus.attach_spool(spool_dir, role="bench")
        subscription = bus.subscribe(maxlen=4096)
        ticking.clear()
        ticker = threading.Thread(target=health_ticker, daemon=True)
        ticker.start()
        return subscription, ticker

    def telemetry_off(subscription, ticker):
        nonlocal events_spooled
        ticking.set()
        ticker.join(timeout=5)
        events_spooled += len(subscription.drain())
        subscription.close()
        bus.detach_spool()

    # Alternate off/on rounds (best-of-3 each): back-to-back A/B pairs
    # cancel the machine-load drift that dominates at this effect size.
    off_runs, on_runs = [], []
    for _ in range(3):
        off_runs.append(drive())
        handles = telemetry_on()
        on_runs.append(drive())
        telemetry_off(*handles)
    throughput_off = max(off_runs)
    throughput_on = max(on_runs)
    shutil.rmtree(spool_dir, ignore_errors=True)
    batcher.close()
    pool.close()
    overhead_pct = 100.0 * (1.0 - throughput_on / throughput_off)
    print(
        f"  telemetry overhead: off {throughput_off:.1f} img/s, "
        f"on {throughput_on:.1f} img/s = {overhead_pct:+.2f}% "
        f"({events_spooled} events)",
        flush=True,
    )

    # -- arm 2: coordinated vs independent shard QoS -----------------------
    overload_s = 6.0 if scale == "fast" else 12.0
    probe = get_harness("googlenet", scale)
    mac_counts = probe.layer_mac_counts()
    slow_layers = tuple(
        sorted(mac_counts, key=lambda name: -mac_counts[name])[:2]
    )
    spec_kwargs = dict(
        name="googlenet",
        threads=4,
        ladder_rungs=3,
        slow_layers=slow_layers,
        slow_threads=1,
        max_batch=16,
        max_wait_ms=4.0,
        max_pending=64,
    )

    def build_shard(pace_unit):
        registry = ServeRegistry()
        shard_spec = registry.register(
            ModelSpec(**{**spec_kwargs, "pace_sysmt": pace_unit is None})
        )
        shard_pool = EnginePool(registry, scale=scale, warm=True)
        ladder = shard_pool.ladder(shard_spec.name)
        if pace_unit is None:
            pace_unit = shard_pool.pacing_unit(shard_spec.name)
        else:
            shard_pool.set_pacing_unit(shard_spec.name, pace_unit)
        shard_metrics = EndpointMetrics(
            shard_spec.name, batch_capacity=shard_spec.max_batch
        )
        shard_batcher = DynamicBatcher(
            shard_pool.runner_for(
                shard_spec.name, metrics=shard_metrics, with_point=True
            ),
            max_batch=shard_spec.max_batch,
            max_wait=shard_spec.max_wait_ms / 1000.0,
            on_batch=shard_metrics.record_batch,
            name=f"shard-{shard_spec.name}",
        )
        return (registry, shard_spec, shard_pool, ladder, pace_unit,
                shard_metrics, shard_batcher)

    def run_pair(coordinate: bool, pace_unit):
        channel_dir = tempfile.mkdtemp(prefix="repro-bench-coord-")
        shards = []
        for index in range(2):
            (registry, shard_spec, shard_pool, ladder, pace_unit,
             shard_metrics, shard_batcher) = build_shard(pace_unit)
            coordinator = (
                QoSCoordinator(ShardStateChannel(channel_dir, index, 2))
                if coordinate
                else None
            )
            governor = EndpointGovernor(
                endpoint=shard_spec.name,
                pool=shard_pool,
                admission=registry.admission(shard_spec.name),
                batcher=shard_batcher,
                metrics=shard_metrics,
                controller=QoSController(
                    len(ladder),
                    config=QoSConfig(
                        degrade_after_s=0.2, recover_after_s=0.8,
                        cooldown_s=0.4,
                    ),
                ),
                coordinator=coordinator,
            )
            shards.append({
                "registry": registry, "spec": shard_spec,
                "pool": shard_pool, "ladder": ladder,
                "metrics": shard_metrics, "batcher": shard_batcher,
                "governor": governor,
            })
        unit = pace_unit
        ladder = shards[0]["ladder"]
        capacity_top = ladder.top.expected_speedup / unit
        budget_s = 1.2 * (
            (spec_kwargs["max_pending"] + spec_kwargs["max_batch"])
            * unit
            / ladder.fastest.expected_speedup
        )
        # Skewed arrivals: shard 0 overloads (1.5x its top-rung capacity),
        # shard 1 idles at a trickle -- the divergence regime.  The skew
        # is sized so that even with BOTH shards at the fastest (host-
        # costliest; the simulator is cost-inverted) rung, total host
        # demand stays under one core: on the bench box the shards share
        # the CPU, and a host-saturated arm would measure the machine,
        # not the coordinator.
        rates = [1.5 * capacity_top, 0.2 * capacity_top]
        stop = threading.Event()
        levels_seen: list[tuple[int, int]] = []

        def ticker():
            while not stop.is_set():
                for shard in shards:
                    shard["governor"].tick()
                levels_seen.append(tuple(
                    shard["pool"].current_level(shard["spec"].name)
                    for shard in shards
                ))
                time.sleep(0.05)

        tick_thread = threading.Thread(target=ticker, daemon=True)
        tick_thread.start()
        states = [None, None]
        errors = []
        try:
            drivers = []
            for index, shard in enumerate(shards):
                def drive_shard(index=index, shard=shard):
                    try:
                        states[index] = _open_loop_drive(
                            shard["batcher"],
                            shard["registry"].admission(shard["spec"].name),
                            shard["metrics"],
                            shard["pool"].replica_set(
                                shard["spec"].name
                            ).replicas[0].harness.eval_images,
                            rate=rates[index],
                            duration=overload_s,
                            budget_s=budget_s,
                        )
                    except Exception as exc:  # noqa: BLE001 - re-raised below
                        errors.append((index, exc))
                driver = threading.Thread(target=drive_shard, daemon=True)
                drivers.append(driver)
            for driver in drivers:
                driver.start()
            for driver in drivers:
                driver.join()
            stop.set()
            tick_thread.join(timeout=10)
            if errors or any(state is None for state in states):
                raise RuntimeError(
                    f"shard driver(s) failed: {errors or 'no state returned'}"
                )
        finally:
            stop.set()
            for shard in shards:
                shard["batcher"].close()
                shard["pool"].close()
            shutil.rmtree(channel_dir, ignore_errors=True)
        peak_levels = [
            max(levels[index] for levels in levels_seen) if levels_seen else 0
            for index in range(2)
        ]
        divergence = (
            sum(1 for a, b in levels_seen if a != b) / len(levels_seen)
            if levels_seen
            else 0.0
        )
        goodput = sum(
            state["within_budget"] / state["elapsed"] for state in states
        )
        offered_total = sum(state["offered"] for state in states) / max(
            state["elapsed"] for state in states
        )
        return {
            "goodput_per_s": goodput,
            "offered_total_per_s": offered_total,
            # Good responses per offered request: the rate-independent
            # "served the surge within budget" efficiency, comparable
            # across arms and PRs offered at different absolute rates.
            "good_fraction": goodput / max(1e-9, offered_total),
            "offered_rates_per_s": rates,
            "latency_budget_ms": budget_s * 1000,
            "peak_levels": peak_levels,
            "rung_divergence_fraction": divergence,
            "per_shard": [
                {
                    "offered": state["offered"],
                    "completed": state["completed"],
                    "within_budget": state["within_budget"],
                    "rejected": state["rejected"],
                }
                for state in states
            ],
        }, unit

    independent, unit = run_pair(coordinate=False, pace_unit=None)
    coordinated, _ = run_pair(coordinate=True, pace_unit=unit)
    clear_harness_cache()
    parity = coordinated["goodput_per_s"] / max(
        1e-9, independent["goodput_per_s"]
    )
    print(
        f"  shard QoS: independent divergence "
        f"{independent['rung_divergence_fraction']:.2f} "
        f"({independent['goodput_per_s']:.1f}/s) vs coordinated "
        f"{coordinated['rung_divergence_fraction']:.2f} "
        f"({coordinated['goodput_per_s']:.1f}/s) = {parity:.2f}x goodput",
        flush=True,
    )
    return {
        "telemetry_overhead": {
            "scale": scale,
            "endpoint": spec.name,
            "requests": requests,
            "throughput_off_per_s": throughput_off,
            "throughput_on_per_s": throughput_on,
            "overhead_pct": overhead_pct,
            "events_spooled": events_spooled,
            "target_pct": 2.0,
            "within_target": overhead_pct < 2.0,
            "note": (
                "closed-loop saturating drive through the dynamic batcher; "
                "'on' = spool sink + subscriber + per-batch events + 1s "
                "health ticker (the dashboard-attached configuration)"
            ),
        },
        "telemetry_shard_coordination": {
            "scale": scale,
            "endpoint": "googlenet",
            "pacing_unit_s_per_image": unit,
            "overload_seconds": overload_s,
            "independent": independent,
            "coordinated": coordinated,
            "goodput_parity_coordinated_vs_independent": parity,
            "note": (
                "two socket-free shards, skewed open-loop overload; "
                "divergence = fraction of controller ticks where the "
                "shards served different rungs"
            ),
        },
    }


def bench_alerts(scale: str) -> dict:
    """Alert-engine overhead on the telemetry-attached hot path.

    The telemetry arm's saturating closed-loop drive with the dashboard
    configuration fully on (spool sink, subscriber, per-batch events, 1s
    health ticker) in *both* arms; the "on" arm additionally attaches the
    server's PR 9 alert wiring -- an ``AlertEngine`` with the default
    rule set consuming every bus event, plus the ring-file history
    recorder.  Isolates what alerting itself costs on top of telemetry.
    Target: < 2% throughput.
    """
    import threading

    from repro.serve.batcher import DynamicBatcher
    from repro.serve.metrics import EndpointMetrics
    from repro.serve.pool import EnginePool
    from repro.serve.registry import ModelSpec, ServeRegistry
    from repro.telemetry import bus as telemetry_bus
    from repro.telemetry.alerts import (
        AlertEngine,
        AlertHistoryStore,
        default_rules,
    )

    requests = 192 if scale == "fast" else 512
    registry = ServeRegistry()
    spec = registry.register(
        ModelSpec(name="resnet18", threads=2, max_batch=8, max_wait_ms=2.0)
    )
    pool = EnginePool(registry, scale=scale, warm=True)
    metrics = EndpointMetrics(spec.name, batch_capacity=spec.max_batch)
    bus = telemetry_bus.get_bus()

    def on_batch(report):
        metrics.record_batch(report)
        telemetry_bus.publish(
            "batch_served",
            endpoint=spec.name,
            images=report.num_images,
            service_s=report.service_seconds,
        )

    batcher = DynamicBatcher(
        pool.runner_for(spec.name, metrics=metrics),
        max_batch=spec.max_batch,
        max_wait=spec.max_wait_ms / 1000.0,
        on_batch=on_batch,
        name="alerts-bench",
    )
    images = pool.replica_set(spec.name).replicas[0].harness.eval_images
    concurrency = 4 * spec.max_batch

    def drive():
        elapsed, _ = _closed_loop(
            batcher, images, requests=requests, concurrency=concurrency
        )
        return requests / elapsed

    drive()  # warm
    spool_dir = tempfile.mkdtemp(prefix="repro-bench-alerts-")
    history_dir = os.path.join(spool_dir, "history")
    ticking = threading.Event()

    def health_ticker():
        while not ticking.wait(1.0):
            bus.publish(
                "endpoint_health",
                endpoint=spec.name,
                requests=metrics.requests,
                recent_p99_ms=metrics.recent_p99() * 1000.0,
                pressure=0.0,
            )

    # Telemetry stays fully on for every run (the off/on delta below is
    # the alert wiring alone, not telemetry).
    bus.attach_spool(spool_dir, role="bench")
    subscription = bus.subscribe(maxlen=4096)
    ticker = threading.Thread(target=health_ticker, daemon=True)
    ticker.start()

    def alerts_on():
        history = AlertHistoryStore(history_dir)
        engine = AlertEngine(
            default_rules(), publish=bus.publish, store=history
        )
        consume = bus.subscribe(callback=engine.consume)
        record = bus.subscribe(callback=history.record)
        return history, consume, record

    def alerts_off(history, consume, record):
        bus.unsubscribe(consume)
        bus.unsubscribe(record)
        history.close()

    # The effect size here is far below this machine's run-to-run noise
    # (single-run A/B swings +-3-5%), so: more alternating rounds, and the
    # overhead is the *median of per-round paired ratios* -- each on-run is
    # compared only to the off-run immediately before it, which cancels
    # the slow machine-load drift that best-of-N cannot.
    rounds = 5 if scale == "fast" else 7
    off_runs, on_runs = [], []
    for _ in range(rounds):
        off_runs.append(drive())
        handles = alerts_on()
        on_runs.append(drive())
        alerts_off(*handles)
    ticking.set()
    ticker.join(timeout=5)
    events_consumed = len(subscription.drain())
    subscription.close()
    bus.detach_spool()
    shutil.rmtree(spool_dir, ignore_errors=True)
    batcher.close()
    pool.close()
    throughput_off = max(off_runs)
    throughput_on = max(on_runs)
    ratios = sorted(on / off for off, on in zip(off_runs, on_runs))
    median_ratio = ratios[len(ratios) // 2]
    overhead_pct = 100.0 * (1.0 - median_ratio)
    print(
        f"  alert-engine overhead: telemetry-only {throughput_off:.1f} "
        f"img/s, with engine {throughput_on:.1f} img/s, median paired "
        f"ratio {median_ratio:.4f} = {overhead_pct:+.2f}% "
        f"({events_consumed} events)",
        flush=True,
    )
    return {
        "alerts_overhead": {
            "scale": scale,
            "endpoint": spec.name,
            "requests": requests,
            "throughput_off_per_s": throughput_off,
            "throughput_on_per_s": throughput_on,
            "paired_on_off_ratios": ratios,
            "overhead_pct": overhead_pct,
            "events_on_bus": events_consumed,
            "target_pct": 2.0,
            "within_target": overhead_pct < 2.0,
            "note": (
                "closed-loop saturating drive, telemetry fully on in both "
                "arms; 'on' adds the default-rule AlertEngine consuming "
                "every bus event plus the ring-file history recorder; "
                "overhead_pct = 1 - median(per-round paired on/off ratio), "
                "robust to machine-load drift between rounds"
            ),
        },
    }


def _traced_closed_loop(
    batcher, images, tracer, *, requests: int, concurrency: int
):
    """The `_closed_loop` drive plus the front door's per-request tracing.

    Each client mints a trace context, opens the root ``request`` span,
    threads the context through ``submit`` and applies the calm-path
    exemplar policy (``discard``) after the response -- the same
    per-request work ``NBSMTServer`` does, so the on/off delta is the
    full tracing hot path, not just the batcher's span emission.
    """
    import threading

    latencies: list[float] = []
    lock = threading.Lock()
    counter = {"next": 0}

    def worker():
        while True:
            with lock:
                index = counter["next"]
                if index >= requests:
                    return
                counter["next"] += 1
            start = index % images.shape[0]
            issued = time.perf_counter()
            context = tracer.trace()
            root = tracer.start_span(
                context, "request", root=True, endpoint="bench"
            )
            batcher.submit(
                images[start : start + 1], size=1, trace=context
            ).result(timeout=600)
            root.finish()
            if not context.sampled:
                tracer.discard(context)
            elapsed = time.perf_counter() - issued
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(max(1, concurrency))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, sorted(latencies)


def bench_tracing(scale: str) -> dict:
    """Distributed-tracing overhead on the telemetry-attached hot path.

    The alert arm's saturating closed-loop drive with telemetry fully on
    (spool sink, subscriber) in *both* arms; the "on" arm additionally
    runs the PR 10 tracing hot path -- per-request context minting, the
    root span, queue-wait/batch/engine span emission in the batcher, and
    the exemplar ring bookkeeping -- at head-sampling rates 0.0, 0.1
    (the default) and 1.0.  Overhead at each rate is the median of
    per-round paired on/off ratios (the alert arm's drift-cancelling
    protocol), with one refinement: the drive order alternates within
    the pair each round.  The second drive of a pair systematically
    benefits from warmth (caches, CPU clocks) -- the rate-0.0 control,
    which does near-zero tracing work, measured that bias at ~3% on a
    shared box when "on" always ran second -- so alternating splits the
    advantage evenly between the arms and the median cancels it.  Rounds
    are short and numerous rather than long and few: a paired ratio only
    cancels drift slower than the pair, so many tightly-coupled pairs
    beat a handful of long ones on a shared box whose available CPU
    wanders by several percent at the tens-of-seconds scale.
    Target: < 2% at the default rate.
    """
    from repro.serve.batcher import DynamicBatcher
    from repro.serve.metrics import EndpointMetrics
    from repro.serve.pool import EnginePool
    from repro.serve.registry import ModelSpec, ServeRegistry
    from repro.telemetry import bus as telemetry_bus
    from repro.telemetry.tracing import Tracer

    requests = 128 if scale == "fast" else 256
    registry = ServeRegistry()
    spec = registry.register(
        ModelSpec(name="resnet18", threads=2, max_batch=8, max_wait_ms=2.0)
    )
    pool = EnginePool(registry, scale=scale, warm=True)
    metrics = EndpointMetrics(spec.name, batch_capacity=spec.max_batch)
    bus = telemetry_bus.get_bus()

    batcher = DynamicBatcher(
        pool.runner_for(spec.name, metrics=metrics),
        max_batch=spec.max_batch,
        max_wait=spec.max_wait_ms / 1000.0,
        on_batch=metrics.record_batch,
        name="tracing-bench",
    )
    images = pool.replica_set(spec.name).replicas[0].harness.eval_images
    concurrency = 4 * spec.max_batch

    def drive_off():
        batcher.tracer = None
        elapsed, _ = _closed_loop(
            batcher, images, requests=requests, concurrency=concurrency
        )
        return requests / elapsed

    def drive_on(tracer):
        batcher.tracer = tracer
        try:
            elapsed, _ = _traced_closed_loop(
                batcher, images, tracer,
                requests=requests, concurrency=concurrency,
            )
        finally:
            batcher.tracer = None
        return requests / elapsed

    drive_off()  # warm
    spool_dir = tempfile.mkdtemp(prefix="repro-bench-tracing-")
    bus.attach_spool(spool_dir, role="bench")
    subscription = bus.subscribe(maxlen=4096)

    rounds = 24 if scale == "fast" else 32  # even: both orders equally often
    rates: dict[str, dict] = {}
    for rate in (0.0, 0.1, 1.0):
        tracer = Tracer(publish=telemetry_bus.publish, sample_rate=rate)
        off_runs, on_runs = [], []
        for index in range(rounds):
            if index % 2 == 0:
                off_runs.append(drive_off())
                on_runs.append(drive_on(tracer))
            else:
                on_runs.append(drive_on(tracer))
                off_runs.append(drive_off())
        ratios = sorted(on / off for off, on in zip(off_runs, on_runs))
        mid = len(ratios) // 2
        median_ratio = (
            ratios[mid] if len(ratios) % 2
            else (ratios[mid - 1] + ratios[mid]) / 2.0
        )
        overhead_pct = 100.0 * (1.0 - median_ratio)
        snap = tracer.snapshot()
        print(
            f"  tracing overhead @ rate {rate:g}: off {max(off_runs):.1f} "
            f"img/s, on {max(on_runs):.1f} img/s, median paired ratio "
            f"{median_ratio:.4f} = {overhead_pct:+.2f}% "
            f"({snap['published_spans']} spans published)",
            flush=True,
        )
        rates[f"{rate:g}"] = {
            "throughput_off_per_s": max(off_runs),
            "throughput_on_per_s": max(on_runs),
            "paired_on_off_ratios": ratios,
            "median_paired_ratio": median_ratio,
            "overhead_pct": overhead_pct,
            "published_spans": snap["published_spans"],
        }
    events_seen = len(subscription.drain())
    subscription.close()
    bus.detach_spool()
    shutil.rmtree(spool_dir, ignore_errors=True)
    batcher.close()
    pool.close()

    default_arm = rates["0.1"]
    return {
        "tracing_overhead": {
            "scale": scale,
            "endpoint": spec.name,
            "requests": requests,
            "rounds_per_rate": rounds,
            "rates": rates,
            "throughput_off_per_s": default_arm["throughput_off_per_s"],
            "throughput_on_per_s": default_arm["throughput_on_per_s"],
            "overhead_pct": default_arm["overhead_pct"],
            "events_on_bus": events_seen,
            "target_pct": 2.0,
            "within_target": default_arm["overhead_pct"] < 2.0,
            "note": (
                "closed-loop saturating drive, telemetry fully on in both "
                "arms; 'on' adds the full per-request tracing hot path "
                "(context mint, root span, batcher span emission, exemplar "
                "ring) at head-sampling 0.0/0.1/1.0; headline overhead_pct "
                "is the default rate 0.1, computed as 1 - median(per-round "
                "paired on/off ratio)"
            ),
        },
    }


#: Affinity groups of the cluster sweep arm: points of distinct "models"
#: land in distinct ledger groups, so two remote workers can lease and
#: compute them concurrently.
CLUSTER_GROUPS = 4

#: The sweep kind the cluster arm computes, written to a temp module so
#: the CLI worker child processes can ``--import`` it: a deterministic,
#: compute-bound integer matmul chain (no model zoo, no calibration --
#: the arm measures the substrate, not the engines).
CLUSTER_RUNNER_MODULE = '''\
"""Deterministic compute-bound sweep kind for the cluster benchmark arm."""

import numpy as np

from repro.eval.sweep import point_runner


@point_runner("bench-cluster-mm")
def bench_cluster_mm(ctx, point):
    side = point.param("side")
    rng = np.random.default_rng(point.param("seed"))
    x = rng.integers(0, 128, size=(side, side), dtype=np.int64)
    w = rng.integers(-64, 64, size=(side, side), dtype=np.int64)
    product = x @ w
    for _ in range(point.param("repeats")):
        product = (product % 251) @ w
    return {
        "seed": point.param("seed"),
        "checksum": int(product.sum()),
        "corner": int(product[0, 0]),
    }
'''


def bench_cluster(scale: str) -> dict:
    """Remote sweep executors and serving federation over localhost sockets.

    Sweep sub-arm: one batch of compute-bound points (four affinity
    groups) executed (a) serially in-process -- the reference -- (b)
    through a :class:`~repro.cluster.worker.SweepHub` with one real
    ``repro.cli worker`` child process leasing over a localhost socket
    (the wire + leasing overhead on a single executor), and (c) with two
    worker processes (the fan-out win the substrate exists for; on real
    deployments the workers are other machines).  All three reductions
    must be bit-identical.

    Federation sub-arm: the primitives ``serve --federate`` runs on --
    document put+get round trips through the cluster agent versus the
    local directory transport, telemetry events streamed through a
    :class:`~repro.cluster.transport.RemoteSpoolWriter`, and the full
    publish+gather+recommend QoS quorum cycle across two socket-backed
    shard channels.
    """
    import subprocess

    from repro.cluster.agent import ClusterAgent
    from repro.cluster.documents import DocumentStore
    from repro.cluster.spool import SpoolFollower
    from repro.cluster.transport import RemoteSpoolWriter, SocketTransport
    from repro.cluster.worker import SweepHub
    from repro.eval.sweep import SweepPoint, SweepSession, run_sweep
    from repro.telemetry.bus import TelemetryBus
    from repro.telemetry.coordinator import ShardStateChannel, recommend_level

    # Sized so each point is a few hundred ms of real compute: the wire
    # and leasing overhead (idle polls, frame round trips) must be small
    # against the work, or the fan-out arm measures the protocol instead.
    side, repeats = (192, 30) if scale == "fast" else (288, 60)
    points = [
        SweepPoint.make(
            "bench-cluster-mm",
            f"bench-node-{index % CLUSTER_GROUPS}",
            cost=1.0,
            seed=index,
            side=side,
            repeats=repeats,
        )
        for index in range(2 * CLUSTER_GROUPS)
    ]

    module_dir = tempfile.mkdtemp(prefix="repro-bench-cluster-mod-")
    with open(
        os.path.join(module_dir, "bench_cluster_kinds.py"), "w"
    ) as handle:
        handle.write(CLUSTER_RUNNER_MODULE)
    sys.path.insert(0, module_dir)
    try:
        import bench_cluster_kinds  # noqa: F401 - registers the runner
    finally:
        sys.path.remove(module_dir)

    src_dir = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src")
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir, module_dir]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    work_dir = tempfile.mkdtemp(prefix="repro-bench-cluster-")

    def run_serial(tag):
        session = SweepSession(
            scale=scale, workers=1, store_root=os.path.join(work_dir, tag)
        )
        start = time.perf_counter()
        payloads = run_sweep(points, session=session)
        return time.perf_counter() - start, payloads

    def run_remote(worker_count, tag):
        session = SweepSession(
            scale=scale, workers=1, store_root=os.path.join(work_dir, tag)
        )
        hub = SweepHub.create(
            session, listen="127.0.0.1:0", connect_grace_s=60.0
        )
        session.hub = hub
        host, port = hub.address
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "worker",
                    "--connect", f"{host}:{port}",
                    "--import", "bench_cluster_kinds",
                    "--max-idle-s", "2.0",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.STDOUT,
            )
            for _ in range(worker_count)
        ]
        try:
            # Worker interpreter start-up is not what this arm measures:
            # wait until every worker is live in the roster before timing.
            deadline = time.perf_counter() + 60.0
            while (
                len(hub.agent.roster.live()) < worker_count
                and time.perf_counter() < deadline
            ):
                time.sleep(0.02)
            start = time.perf_counter()
            payloads = run_sweep(points, session=session)
            elapsed = time.perf_counter() - start
            summary = dict(hub.agent.ledger.snapshot())
        finally:
            hub.close()
            for worker in workers:
                try:
                    worker.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    worker.kill()
        return elapsed, payloads, summary

    serial_seconds, serial_payloads = run_serial("serial")
    remote1_seconds, remote1_payloads, remote1 = run_remote(1, "remote1")
    remote2_seconds, remote2_payloads, remote2 = run_remote(2, "remote2")
    bit_identical = (
        remote1_payloads == serial_payloads
        and remote2_payloads == serial_payloads
    )
    print(
        f"  cluster/sweep: serial {serial_seconds:.2f}s, "
        f"1 worker {remote1_seconds:.2f}s, "
        f"2 workers {remote2_seconds:.2f}s "
        f"({serial_seconds / remote2_seconds:.2f}x, "
        f"bit-identical {bit_identical})",
        flush=True,
    )

    fed_dir = tempfile.mkdtemp(prefix="repro-bench-federate-")
    agent = ClusterAgent(
        {
            "exchange": os.path.join(fed_dir, "exchange"),
            "qos": os.path.join(fed_dir, "qos"),
            "telemetry": os.path.join(fed_dir, "telemetry"),
        },
        node="bench-hub",
    )
    agent.start_in_thread()
    transport = SocketTransport(
        agent.address, node="bench-serve-a", role="serve"
    )
    peer_transport = SocketTransport(
        agent.address, node="bench-serve-b", role="serve"
    )
    doc_rounds = 200 if scale == "fast" else 600
    spool_events = 2000 if scale == "fast" else 6000
    quorum_cycles = 100 if scale == "fast" else 300
    try:
        payload = {"requests": 1000, "histogram": list(range(32))}
        socket_store = DocumentStore(transport, "exchange")
        start = time.perf_counter()
        for index in range(doc_rounds):
            socket_store.put("bench-shard-a.json", {**payload, "i": index})
            socket_store.get("bench-shard-a.json")
        socket_doc_seconds = time.perf_counter() - start

        local_store = DocumentStore.for_directory(
            os.path.join(fed_dir, "local")
        )
        start = time.perf_counter()
        for index in range(doc_rounds):
            local_store.put("bench-shard-a.json", {**payload, "i": index})
            local_store.get("bench-shard-a.json")
        local_doc_seconds = time.perf_counter() - start

        bus = TelemetryBus(role="bench-cluster")
        writer = RemoteSpoolWriter(transport, "telemetry", role="bench")
        bus.attach_spool_sink(writer)
        start = time.perf_counter()
        for index in range(spool_events):
            bus.publish("bench_event", index=index, payload="x" * 64)
        spool_seconds = time.perf_counter() - start
        bus.detach_spool()
        arrived = len(
            SpoolFollower(os.path.join(fed_dir, "telemetry")).poll()
        )

        channel_a = ShardStateChannel(
            None, 0, 2, store=DocumentStore(transport, "qos")
        )
        channel_b = ShardStateChannel(
            None, 1, 2, store=DocumentStore(peer_transport, "qos")
        )
        channel_b.publish({"model": {"desired": 3, "held": False}})
        level = 0
        start = time.perf_counter()
        for _ in range(quorum_cycles):
            channel_a.publish({"model": {"desired": 1, "held": False}})
            level, _desired = recommend_level(
                channel_a.gather(stale_after_s=5.0), "model", num_levels=4
            )
        quorum_seconds = time.perf_counter() - start
    finally:
        transport.close()
        peer_transport.close()
        agent.stop()
        shutil.rmtree(fed_dir, ignore_errors=True)
        shutil.rmtree(work_dir, ignore_errors=True)
        shutil.rmtree(module_dir, ignore_errors=True)
    print(
        f"  cluster/federation: docs {doc_rounds / socket_doc_seconds:.0f}"
        f" rt/s over socket ({doc_rounds / local_doc_seconds:.0f} local), "
        f"spool {spool_events / spool_seconds:.0f} ev/s, "
        f"quorum {quorum_cycles / quorum_seconds:.0f} cycles/s "
        f"(level {level})",
        flush=True,
    )
    return {
        "cluster": {
            "scale": scale,
            "points": len(points),
            "affinity_groups": CLUSTER_GROUPS,
            "point_shape": [side, side],
            "cpus_available": os.cpu_count(),
            "timings": {
                "serial_local": {"seconds": serial_seconds},
                "remote_1worker": {"seconds": remote1_seconds},
                "remote_2workers": {"seconds": remote2_seconds},
            },
            "ledger_remote_1worker": remote1,
            "ledger_remote_2workers": remote2,
            "bit_identical_remote_vs_serial": bit_identical,
            "overhead_remote1_vs_serial": remote1_seconds / serial_seconds,
            "speedup_remote2_vs_serial": serial_seconds / remote2_seconds,
            "federation": {
                "doc_roundtrips": doc_rounds,
                "socket_doc_roundtrips_per_s": doc_rounds / socket_doc_seconds,
                "local_doc_roundtrips_per_s": doc_rounds / local_doc_seconds,
                "socket_vs_local_doc_cost": (
                    socket_doc_seconds / local_doc_seconds
                ),
                "spool_events": spool_events,
                "socket_spool_events_per_s": spool_events / spool_seconds,
                "spool_events_arrived": arrived,
                "spool_events_dropped": writer.dropped_events,
                "qos_quorum_cycles_per_s": quorum_cycles / quorum_seconds,
                "qos_quorum_level": level,
            },
            "note": (
                "sweep: identical points reduced serially vs leased to "
                "real `repro.cli worker` child processes over localhost "
                "sockets (workers connected before the timer starts); on "
                "a single-CPU host localhost workers time-share the core, "
                "so the honest headline there is the wire overhead of the "
                "1-worker arm, not fan-out speedup. federation: document "
                "round trips / telemetry spool throughput through the "
                "cluster agent, and the full publish+gather+recommend "
                "quorum cycle of two socket-backed shard channels"
            ),
        }
    }


def _compare_to_previous(results: dict, previous_path: str, tag: str) -> dict | None:
    """Headline timing ratios against the previous PR's benchmark file."""
    try:
        with open(previous_path) as handle:
            previous = json.load(handle)["benchmarks"]
    except (OSError, ValueError, KeyError):
        return None
    comparison: dict[str, dict] = {}
    for key in ("matmul_2t", "matmul_4t", "eval_4t"):
        ours = results.get(key, {}).get("timings", {})
        theirs = previous.get(key, {}).get("timings", {})
        shared = sorted(set(ours) & set(theirs))
        if not shared:
            continue
        comparison[key] = {
            arm: {
                f"{tag}_seconds": theirs[arm]["seconds"],
                "seconds": ours[arm]["seconds"],
                f"speedup_vs_{tag}": (
                    theirs[arm]["seconds"] / ours[arm]["seconds"]
                ),
            }
            for arm in shared
        }
    return comparison


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_pr10.json"),
    )
    parser.add_argument("--scale", choices=("fast", "full"), default="fast")
    parser.add_argument(
        "--skip-suite",
        action="store_true",
        help="skip the (slow) experiment-suite arm",
    )
    parser.add_argument(
        "--skip-serving",
        action="store_true",
        help="skip the serving (dynamic batching) arm",
    )
    parser.add_argument(
        "--skip-telemetry",
        action="store_true",
        help="skip the telemetry (bus overhead + shard coordination) arm",
    )
    parser.add_argument(
        "--only",
        default=None,
        choices=("matmul", "explicit", "e2e", "serving", "adaptive",
                 "chaos", "lifelines", "telemetry", "alerts", "tracing",
                 "cluster", "suite"),
        help="run a single arm by name",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker budget of the orchestrated suite arm",
    )
    args = parser.parse_args(argv)

    results: dict = {
        "meta": {
            "generated": datetime.now(timezone.utc).isoformat(),
            "scale": args.scale,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "numpy": np.__version__,
            "note": (
                "seed_* arms re-run the seed implementations retained in the "
                "codebase (chunked reference fallback; legacy factorized "
                "4-thread path; per-call executor construction without "
                "weight-quantization caching)."
            ),
        },
        "benchmarks": {},
    }
    def wanted(name):
        return args.only is None or args.only == name

    if wanted("matmul"):
        print("running matmul microbenchmarks...", flush=True)
        results["benchmarks"].update(bench_matmul(args.scale))
    if wanted("explicit"):
        print("running explicit-simulator benchmarks...", flush=True)
        results["benchmarks"].update(bench_explicit_sim(args.scale))
    if wanted("e2e"):
        print("running end-to-end evaluation benchmarks...", flush=True)
        results["benchmarks"].update(bench_end_to_end(args.scale))
    if not args.skip_serving:
        if wanted("serving"):
            print("running serving benchmarks...", flush=True)
            results["benchmarks"].update(bench_serving(args.scale))
        if wanted("adaptive"):
            print("running adaptive-serving (QoS ladder) benchmarks...",
                  flush=True)
            results["benchmarks"].update(bench_adaptive_serving(args.scale))
        if wanted("chaos"):
            print("running chaos (goodput under replica churn) benchmarks...",
                  flush=True)
            results["benchmarks"].update(bench_chaos(args.scale))
        if wanted("lifelines"):
            print("running lifelines (deadline/loris/disk) benchmarks...",
                  flush=True)
            results["benchmarks"].update(bench_lifelines(args.scale))
    if not args.skip_telemetry and wanted("telemetry"):
        print("running telemetry (bus overhead + coordination) benchmarks...",
              flush=True)
        results["benchmarks"].update(bench_telemetry(args.scale))
    if not args.skip_telemetry and wanted("alerts"):
        print("running alert-engine overhead benchmarks...", flush=True)
        results["benchmarks"].update(bench_alerts(args.scale))
    if not args.skip_telemetry and wanted("tracing"):
        print("running tracing overhead benchmarks...", flush=True)
        results["benchmarks"].update(bench_tracing(args.scale))
    if wanted("cluster"):
        print("running cluster (remote sweep + federation) benchmarks...",
              flush=True)
        results["benchmarks"].update(bench_cluster(args.scale))
    if not args.skip_suite and wanted("suite"):
        print("running experiment-suite benchmarks...", flush=True)
        results["benchmarks"].update(bench_suite(args.scale, args.workers))

    pr9_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_pr9.json")
    comparison = _compare_to_previous(results["benchmarks"], pr9_path, "pr9")
    if comparison:
        results["comparison_to_pr9"] = comparison
    # The tracing arm's tracer-off baseline must hold parity with PR 9's
    # alert-arm baseline (identical telemetry-on stack recipe and drive).
    try:
        tracing_arm = results["benchmarks"].get("tracing_overhead")
        if tracing_arm is not None:
            with open(pr9_path) as handle:
                pr9_arm = json.load(handle)["benchmarks"]["alerts_overhead"]
            tracing_arm["bench_pr9_alerts_off_per_s"] = (
                pr9_arm["throughput_off_per_s"]
            )
            tracing_arm["baseline_vs_pr9_alerts_off"] = (
                tracing_arm["throughput_off_per_s"]
                / max(pr9_arm["throughput_off_per_s"], 1e-9)
            )
    except (OSError, ValueError, KeyError):
        pass

    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")

    for name, entry in results["benchmarks"].items():
        speedups = {
            key: round(value, 2)
            for key, value in entry.items()
            if key.startswith(("speedup", "goodput"))
        }
        print(f"{name}: {speedups}")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
