#!/usr/bin/env python
"""Performance benchmark runner: times the NB-SMT execution paths.

Measures, on this machine:

* the 4-thread (and 2-thread) NB-SMT matmul microbenchmarks -- the seed's
  general-thread-count fallback (the chunked reference executor), the seed's
  factorized implementation (``fast4t_impl="legacy"``) and the optimized
  stacked-GEMM path;
* the explicit SySMT array simulators -- per-PE objects versus the
  vectorized lane-level execution;
* an end-to-end 4-thread model evaluation -- the serial seed configuration
  (reference fallback; also the seed's factorized variant with per-call
  executor construction and no weight-quantization caching) versus the
  optimized pipeline, serial and with a 4-worker sharded process pool.

Results are written as JSON (default ``BENCH_pr1.json`` at the repo root) so
the performance trajectory of the project is recorded per PR.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--out BENCH_pr1.json]
        [--scale fast|full]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.engine import NBSMTEngine
from repro.core.smt import NBSMTMatmul
from repro.systolic.sysmt import SySMTArray


def _best_of(fn, repeats: int, min_time: float = 0.0) -> float:
    """Best wall-clock time of ``repeats`` runs (at least one)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
        if best > 10.0 and min_time == 0.0:
            break  # very slow paths need no extra repeats
    return best


def _quantized_pair(rng, m, k, n, act_sparsity=0.45, wgt_sparsity=0.1):
    x = rng.integers(0, 256, size=(m, k), dtype=np.int64)
    w = rng.integers(-127, 128, size=(k, n), dtype=np.int64)
    x[rng.random((m, k)) < act_sparsity] = 0
    w[rng.random((k, n)) < wgt_sparsity] = 0
    return x, w


def bench_matmul(scale: str) -> dict:
    """Microbenchmarks of the NB-SMT matmul execution paths."""
    rng = np.random.default_rng(7)
    if scale == "full":
        m, k, n, repeats = 1024, 512, 128, 5
    else:
        m, k, n, repeats = 512, 256, 64, 5
    x, w = _quantized_pair(rng, m, k, n)
    macs = float(m) * k * n

    results: dict[str, dict] = {}
    for threads in (2, 4):
        arms = {
            "seed_reference_fallback": NBSMTMatmul(
                threads, "S+A", collect_stats=True, force_reference=True
            ),
            "optimized_factorized": NBSMTMatmul(threads, "S+A", collect_stats=True),
        }
        if threads == 4:
            arms["seed_factorized_legacy"] = NBSMTMatmul(
                threads, "S+A", collect_stats=True, fast4t_impl="legacy"
            )
        timings = {}
        for name, executor in arms.items():
            executor.matmul(x, w)  # warm-up (LUTs, BLAS)
            ref_repeats = 1 if "reference" in name else repeats
            seconds = _best_of(lambda e=executor: e.matmul(x, w), ref_repeats)
            timings[name] = {
                "seconds": seconds,
                "ops_per_sec": macs / seconds,
            }
        entry = {
            "shape": [m, k, n],
            "threads": threads,
            "policy": "S+A",
            "collect_stats": True,
            "timings": timings,
        }
        entry["speedup_vs_seed_reference"] = (
            timings["seed_reference_fallback"]["seconds"]
            / timings["optimized_factorized"]["seconds"]
        )
        if "seed_factorized_legacy" in timings:
            entry["speedup_vs_seed_factorized"] = (
                timings["seed_factorized_legacy"]["seconds"]
                / timings["optimized_factorized"]["seconds"]
            )
        results[f"matmul_{threads}t"] = entry
    return results


def bench_explicit_sim(scale: str) -> dict:
    """Per-PE object simulation versus vectorized lane-level execution."""
    rng = np.random.default_rng(11)
    m, k, n = (48, 96, 24) if scale == "fast" else (96, 192, 48)
    x, w = _quantized_pair(rng, m, k, n)
    array = SySMTArray(rows=16, cols=16, threads=4, policy="S+A")
    array.matmul_explicit(x, w)
    vectorized = _best_of(lambda: array.matmul_explicit(x, w), 3)
    per_pe = _best_of(lambda: array.matmul_per_pe(x, w), 1)
    return {
        "explicit_sim_4t": {
            "shape": [m, k, n],
            "timings": {
                "seed_per_pe_objects": {"seconds": per_pe},
                "optimized_vectorized": {"seconds": vectorized},
            },
            "speedup": per_pe / vectorized,
        }
    }


def _build_harness(scale: str):
    from repro.eval.harness import SysmtHarness
    from repro.models.zoo import TrainedModel
    from repro.nn import (
        GlobalAvgPool2d,
        Linear,
        MaxPool2d,
        Sequential,
        SyntheticImageDataset,
        TrainConfig,
        Trainer,
    )
    from repro.nn.data import DatasetConfig
    from repro.nn.layers.combine import conv_bn_relu

    eval_images = 256 if scale == "fast" else 1024
    dataset = SyntheticImageDataset(
        DatasetConfig(
            train_size=256, val_size=eval_images, image_size=16,
            num_classes=6, seed=7,
        )
    )
    model = Sequential(
        conv_bn_relu(3, 8, 3, seed=11),
        MaxPool2d(2),
        conv_bn_relu(8, 16, 3, seed=12),
        conv_bn_relu(16, 16, 3, seed=13),
        MaxPool2d(2),
        GlobalAvgPool2d(),
        Linear(16, dataset.num_classes, seed=14),
    )
    trainer = Trainer(model, TrainConfig(epochs=2, batch_size=64, lr=0.1, seed=3))
    trainer.fit(
        dataset.train_images, dataset.train_labels,
        dataset.val_images, dataset.val_labels,
    )
    entry = TrainedModel("tinynet", model, dataset, 0.0, {})
    return SysmtHarness(
        entry, max_eval_images=eval_images, calibration_images=96, batch_size=64
    )


def bench_end_to_end(scale: str) -> dict:
    """End-to-end 4-thread NB-SMT model evaluation, serial and sharded."""
    harness = _build_harness(scale)
    images = int(harness.eval_images.shape[0])
    harness.evaluate_nbsmt(threads=4)  # warm-up

    def seed_reference_run():
        harness.evaluate_nbsmt(
            threads=4,
            engine=NBSMTEngine("S+A", collect_stats=True, force_reference=True),
        )

    def seed_factorized_run():
        harness.qmodel.config.cache_weight_quant = False
        try:
            harness.evaluate_nbsmt(
                threads=4,
                engine=NBSMTEngine(
                    "S+A",
                    collect_stats=True,
                    reuse_executors=False,
                    fast4t_impl="legacy",
                ),
            )
        finally:
            harness.qmodel.config.cache_weight_quant = True

    repeats = 3
    timings = {
        "seed_serial_reference": {
            "seconds": _best_of(seed_reference_run, 1)
        },
        "seed_serial_factorized": {
            "seconds": _best_of(seed_factorized_run, repeats)
        },
        "optimized_serial": {
            "seconds": _best_of(lambda: harness.evaluate_nbsmt(threads=4), repeats)
        },
        "optimized_parallel_4workers": {
            "seconds": _best_of(
                lambda: harness.evaluate_nbsmt(threads=4, workers=4), repeats
            )
        },
    }
    for values in timings.values():
        values["images_per_sec"] = images / values["seconds"]
    result = {
        "eval_4t": {
            "images": images,
            "threads": 4,
            "collect_stats": True,
            "timings": timings,
            "speedup_parallel4_vs_seed_serial": (
                timings["seed_serial_reference"]["seconds"]
                / timings["optimized_parallel_4workers"]["seconds"]
            ),
            "speedup_serial_vs_seed_serial": (
                timings["seed_serial_reference"]["seconds"]
                / timings["optimized_serial"]["seconds"]
            ),
            "speedup_serial_vs_seed_factorized": (
                timings["seed_serial_factorized"]["seconds"]
                / timings["optimized_serial"]["seconds"]
            ),
        }
    }
    harness.close()
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_pr1.json"),
    )
    parser.add_argument("--scale", choices=("fast", "full"), default="fast")
    args = parser.parse_args(argv)

    results: dict = {
        "meta": {
            "generated": datetime.now(timezone.utc).isoformat(),
            "scale": args.scale,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "numpy": np.__version__,
            "note": (
                "seed_* arms re-run the seed implementations retained in the "
                "codebase (chunked reference fallback; legacy factorized "
                "4-thread path; per-call executor construction without "
                "weight-quantization caching)."
            ),
        },
        "benchmarks": {},
    }
    print("running matmul microbenchmarks...", flush=True)
    results["benchmarks"].update(bench_matmul(args.scale))
    print("running explicit-simulator benchmarks...", flush=True)
    results["benchmarks"].update(bench_explicit_sim(args.scale))
    print("running end-to-end evaluation benchmarks...", flush=True)
    results["benchmarks"].update(bench_end_to_end(args.scale))

    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")

    for name, entry in results["benchmarks"].items():
        speedups = {
            key: round(value, 2)
            for key, value in entry.items()
            if key.startswith("speedup")
        }
        print(f"{name}: {speedups}")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
