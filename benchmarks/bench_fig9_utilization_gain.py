"""Benchmark regenerating Fig. 9: utilization improvement vs sparsity (Eq. 8)."""

from repro.eval.experiments import fig9_utilization_gain

from benchmarks.conftest import run_experiment


def test_fig9_utilization_gain(benchmark, scale):
    result = run_experiment(benchmark, fig9_utilization_gain, scale)
    # Without reordering the measured gain tracks the 1 + s line of Eq. (8).
    assert result["mean_abs_deviation_from_eq8"] < 0.2
    for point in result["series"]["without_reorder"]:
        assert 1.0 <= point["measured_gain"] <= 2.0 + 1e-6
