"""Benchmark regenerating Table V: 4T SySMT accuracy with layer throttling."""

from repro.eval.experiments import table5_4threads

from benchmarks.conftest import run_experiment


def test_table5_4threads(benchmark, scale):
    result = run_experiment(benchmark, table5_4threads, scale)
    for name, entries in result["per_model"].items():
        assert entries["4T"]["speedup"] >= 3.9, name
        if "1L@2T" in entries:
            # Slowing the highest-MSE layer costs speedup...
            assert entries["1L@2T"]["speedup"] <= entries["4T"]["speedup"]
            # ...and does not hurt accuracy beyond noise.
            assert entries["1L@2T"]["accuracy"] >= entries["4T"]["accuracy"] - 0.06
