"""Benchmark regenerating Fig. 7: robustness to whole-model precision reduction."""

import numpy as np

from repro.eval.experiments import fig7_robustness

from benchmarks.conftest import run_experiment


def test_fig7_robustness(benchmark, scale):
    result = run_experiment(benchmark, fig7_robustness, scale)
    per_model = result["per_model"]
    # The A8W8 baseline is the best operating point on average, and the
    # 4-thread worst case (A4W4) the lowest.
    baseline = np.mean([row["A8W8"] for row in per_model.values()])
    a4w8 = np.mean([row["A4W8"] for row in per_model.values()])
    a4w4 = np.mean([row["A4W4"] for row in per_model.values()])
    assert baseline >= a4w8 - 0.02
    assert a4w8 >= a4w4 - 0.02
