#!/usr/bin/env python3
"""Explore the NB-SMT packing policies of Table III on one model.

Shows how each PE capability -- 8-bit sparsity detection (S), activation
data-width (A), weight data-width (W) and operand swapping (Aw/aW) --
contributes to recovering the accuracy lost to thread collisions, and how
collision/reduction rates change per policy.

Run with::

    python examples/policy_exploration.py [model]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.eval.harness import SysmtHarness
from repro.models.zoo import load_trained_model
from repro.utils.tables import format_table

POLICIES = ("min", "S", "A", "Aw", "S+A", "S+Aw")


def main(model_name: str = "googlenet") -> None:
    trained = load_trained_model(model_name, fast=True)
    harness = SysmtHarness(trained, max_eval_images=96, calibration_images=128)
    try:
        baseline = harness.int8_accuracy
        rows = []
        for policy in POLICIES:
            run = harness.evaluate_nbsmt(threads=2, policy=policy, reorder=False)
            collision = np.mean(
                [stats.collision_rate for stats in run.layer_stats.values()]
            )
            reduction = np.mean(
                [stats.reduction_rate for stats in run.layer_stats.values()]
            )
            rows.append(
                (
                    policy,
                    f"{run.accuracy:.3f}",
                    f"{baseline - run.accuracy:+.3f}",
                    f"{100 * collision:.1f}%",
                    f"{100 * reduction:.1f}%",
                )
            )
        print(
            format_table(
                ["Policy", "Top-1", "Drop vs A8W8", "Collisions", "Reduced MACs"],
                rows,
                title=(
                    f"2T SySMT packing policies on {trained.display_name} "
                    f"(A8W8 baseline {baseline:.3f})"
                ),
            )
        )
        print(
            "\nS exploits zero operands, A/W exploit 4-bit operands, the lower-case "
            "suffix adds operand swapping; combining them (S+A) minimizes the number "
            "of MACs that actually lose precision."
        )
    finally:
        harness.close()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "googlenet")
