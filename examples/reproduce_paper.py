#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Runs the full experiment registry (Fig. 1, Table I-V, Fig. 7-10, energy and
MLPerf) at the requested scale and prints each formatted result.  Results are
also persisted as JSON under ``artifacts/results/``.

Run with::

    python examples/reproduce_paper.py [fast|full] [experiment ...]
"""

from __future__ import annotations

import sys
import time

from repro.eval.experiments import EXPERIMENTS


def main(argv: list[str]) -> None:
    scale = "fast"
    selected = list(EXPERIMENTS)
    if argv:
        if argv[0] in ("fast", "full"):
            scale = argv[0]
            selected = argv[1:] or selected
        else:
            selected = argv
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments {unknown}; known: {sorted(EXPERIMENTS)}")

    for name in selected:
        module = EXPERIMENTS[name]
        start = time.time()
        print(f"\n=== {name} ({module.__name__.rsplit('.', 1)[-1]}) ===")
        result = module.run(scale=scale)
        print(module.format_result(result))
        print(f"[{name} finished in {time.time() - start:.1f}s]")


if __name__ == "__main__":
    main(sys.argv[1:])
