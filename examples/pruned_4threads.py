#!/usr/bin/env python3
"""4-threaded SySMT on a pruned network (the Fig. 10 scenario).

Weight pruning creates zero weights, which reduces thread collisions; this
example prunes the ResNet-18 analogue, then compares the 4-threaded SySMT
accuracy of the dense and pruned models, and shows the accuracy/speedup
trade-off of throttling the noisiest layers to two threads.

Run with::

    python examples/pruned_4threads.py [sparsity]
"""

from __future__ import annotations

import copy
import sys

from repro.eval.harness import SysmtHarness
from repro.eval.throttle import rank_layers_by_mse, throttle_layers
from repro.models.zoo import TrainedModel, load_trained_model
from repro.pruning import PruningSchedule, iterative_magnitude_prune, sparsity_of
from repro.utils.tables import format_table


def evaluate_4t(trained: TrainedModel, label: str) -> list[tuple]:
    harness = SysmtHarness(trained, max_eval_images=96, calibration_images=128)
    rows = []
    try:
        baseline = harness.evaluate_nbsmt(threads=4, reorder=True)
        rows.append((label, "4T", f"{baseline.accuracy:.3f}", f"{baseline.speedup:.2f}x"))
        ranked = rank_layers_by_mse(baseline.layer_stats, harness.qmodel.layer_names())
        throttled, _ = throttle_layers(
            harness, base_threads=4, slow_layers=ranked[:1], slow_threads=2,
            reorder=True,
        )
        rows.append(
            (label, "1L@2T", f"{throttled.accuracy:.3f}", f"{throttled.speedup:.2f}x")
        )
        rows.append((label, "A8W8", f"{harness.int8_accuracy:.3f}", "1.00x"))
    finally:
        harness.close()
    return rows


def main(target_sparsity: float = 0.4) -> None:
    dense = load_trained_model("resnet18", fast=True)

    print(f"Pruning {100 * target_sparsity:.0f}% of the convolution weights...")
    pruned_model = copy.deepcopy(dense.model)
    iterative_magnitude_prune(
        pruned_model,
        dense.dataset.train_images,
        dense.dataset.train_labels,
        PruningSchedule(target_sparsity=target_sparsity, steps=2, retrain_epochs=2),
    )
    pruned = TrainedModel(
        name=dense.name,
        model=pruned_model,
        dataset=dense.dataset,
        fp32_accuracy=dense.fp32_accuracy,
        train_config=dense.train_config,
    )
    print(f"Achieved weight sparsity: {100 * sparsity_of(pruned_model):.1f}%\n")

    rows = evaluate_4t(dense, "dense") + evaluate_4t(pruned, f"{target_sparsity:.0%} pruned")
    print(
        format_table(
            ["Model", "Operating point", "Top-1", "Speedup"],
            rows,
            title="4T SySMT with and without weight pruning (Fig. 10 scenario)",
        )
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.4)
