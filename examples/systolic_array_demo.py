#!/usr/bin/env python3
"""Cycle-level demo of the conventional OS-SA versus SySMT on one matmul.

This example skips the CNN pipeline entirely and drives the systolic-array
simulators directly with a random quantized matrix multiplication, showing
what NB-SMT does at the hardware level: cycle counts, utilization, collisions
and the numerical error introduced by on-the-fly precision reduction.

Run with::

    python examples/systolic_array_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.smt import NBSMTMatmul
from repro.systolic.os_sa import OutputStationarySA
from repro.systolic.sysmt import SySMTArray
from repro.utils.rng import new_rng
from repro.utils.tables import format_table


def make_operands(m: int = 64, k: int = 256, n: int = 64, sparsity: float = 0.55):
    """Bell-shaped quantized operands with ReLU-like activation sparsity."""
    rng = new_rng(42)
    x = np.clip(np.rint(np.abs(rng.normal(0, 28, (m, k)))), 0, 255).astype(np.int64)
    x[rng.random((m, k)) < sparsity] = 0
    w = np.clip(np.rint(rng.normal(0, 24, (k, n))), -127, 127).astype(np.int64)
    return x, w


def main() -> None:
    x, w = make_operands()
    exact = x @ w

    baseline = OutputStationarySA(rows=16, cols=16, pipeline_stages=2)
    out_base, report_base = baseline.matmul(x, w)
    assert np.array_equal(out_base, exact)

    rows = [
        (
            "Conventional SA",
            report_base.cycles,
            "1.00x",
            f"{100 * report_base.utilization:.1f}%",
            "0",
        )
    ]
    for threads in (2, 4):
        array = SySMTArray(rows=16, cols=16, threads=threads, policy="S+A",
                           pipeline_stages=2)
        out, report = array.matmul(x, w)
        stats = array.stats
        error = np.abs(out - exact)
        rows.append(
            (
                f"SySMT {threads}T (S+A)",
                report.cycles,
                f"{report_base.cycles / report.cycles:.2f}x",
                f"{100 * stats.smt_utilization:.1f}%",
                f"max {error.max()}, rel MSE {stats.relative_mse:.2e}",
            )
        )
    print(
        format_table(
            ["Configuration", "Cycles", "Speedup", "PE utilization", "Output error"],
            rows,
            title="64x256x64 int8 matmul on a 16x16 output-stationary array",
        )
    )

    print("\nFunctional executor collision breakdown (2T, S+A):")
    executor = NBSMTMatmul(2, "S+A")
    executor.matmul(x, w)
    stats = executor.stats
    print(
        format_table(
            ["Metric", "Value"],
            [
                ("Activation sparsity", f"{100 * stats.activation_sparsity:.1f}%"),
                ("MACs colliding", f"{100 * stats.collision_rate:.1f}%"),
                ("MACs actually reduced", f"{100 * stats.reduction_rate:.1f}%"),
                ("Utilization gain (Fig. 9)", f"{stats.utilization_gain:.2f}x"),
                ("Eq. (8) prediction 1+s", f"{1 + stats.activation_sparsity:.2f}x"),
            ],
        )
    )


if __name__ == "__main__":
    main()
