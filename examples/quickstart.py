#!/usr/bin/env python3
"""Quickstart: run a CNN under a 2-threaded NB-SMT execution (SySMT).

This example walks the full pipeline of the paper on a small scale:

1. train (or load from cache) a scaled-down ResNet-18 on the synthetic
   dataset;
2. calibrate and quantize it to 8 bits (per-layer activations, per-kernel
   weights);
3. execute it on the conventional accelerator model and on a 2-threaded
   SySMT with the S+A packing policy and activation reordering;
4. report accuracy, speedup, utilization gain and energy saving.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.eval.energy import energy_report
from repro.eval.harness import SysmtHarness
from repro.models.zoo import load_trained_model
from repro.utils.tables import format_table


def main() -> None:
    print("Loading (or training) the scaled-down ResNet-18...")
    trained = load_trained_model("resnet18", fast=True)
    harness = SysmtHarness(trained, max_eval_images=128, calibration_images=128)

    try:
        print(f"FP32 top-1 accuracy : {harness.fp32_accuracy:.3f}")
        print(f"INT8 top-1 accuracy : {harness.int8_accuracy:.3f} (A8W8 baseline)")

        print("\nExecuting with a 2-threaded SySMT (policy S+A, with reordering)...")
        run = harness.evaluate_nbsmt(threads=2, policy="S+A", reorder=True)
        energy = energy_report(harness, run, threads=2)

        rows = [
            ("Top-1 accuracy", f"{run.accuracy:.3f}"),
            ("Accuracy drop vs INT8", f"{harness.int8_accuracy - run.accuracy:.3f}"),
            ("Speedup over conventional SA", f"{run.speedup:.2f}x"),
            ("Mean utilization gain", f"{run.mean_utilization_gain():.2f}x"),
            ("Energy saving", f"{100 * energy.saving:.1f}%"),
        ]
        print()
        print(format_table(["Metric", "2T SySMT"], rows, title="NB-SMT quickstart"))

        print("\nPer-layer NB-SMT statistics (first five layers):")
        layer_rows = []
        for name, stats in list(run.layer_stats.items())[:5]:
            layer_rows.append(
                (
                    name,
                    f"{100 * stats.activation_sparsity:.1f}%",
                    f"{100 * stats.collision_rate:.1f}%",
                    f"{stats.utilization_gain:.2f}x",
                    f"{stats.relative_mse:.2e}",
                )
            )
        print(
            format_table(
                ["Layer", "Act. sparsity", "Collisions", "Util. gain", "rel. MSE"],
                layer_rows,
            )
        )
    finally:
        harness.close()


if __name__ == "__main__":
    main()
