"""Model zoo: builders, registry and architectural motifs."""

import numpy as np
import pytest

from repro.models import MODEL_BUILDERS, PAPER_MODEL_NAMES
from repro.models.common import SeedStream
from repro.models.mobilenet import is_depthwise_conv
from repro.models.zoo import DISPLAY_NAMES, load_dataset, load_trained_model
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.combine import Concat, DenseBlock, ResidualBlock
from repro.utils.cache import ArtifactCache
from repro.utils.rng import new_rng


@pytest.fixture(scope="module")
def probe_images():
    return new_rng(0).normal(size=(2, 3, 32, 32)).astype(np.float32)


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
def test_builders_produce_classifiers(name, probe_images):
    model = MODEL_BUILDERS[name](num_classes=7)
    model.eval()
    logits = model(probe_images)
    assert logits.shape == (2, 7)
    assert np.all(np.isfinite(logits))


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
def test_builders_are_deterministic(name):
    first = MODEL_BUILDERS[name](num_classes=5)
    second = MODEL_BUILDERS[name](num_classes=5)
    for (key_a, param_a), (key_b, param_b) in zip(
        first.named_parameters(), second.named_parameters()
    ):
        assert key_a == key_b
        np.testing.assert_array_equal(param_a.value, param_b.value)


def test_registry_covers_paper_models():
    assert set(PAPER_MODEL_NAMES) <= set(MODEL_BUILDERS)
    assert set(PAPER_MODEL_NAMES) <= set(DISPLAY_NAMES)
    assert "mobilenet_v1" in MODEL_BUILDERS


def test_architectural_motifs():
    resnet = MODEL_BUILDERS["resnet18"]()
    assert any(isinstance(m, ResidualBlock) for m in resnet.modules())
    googlenet = MODEL_BUILDERS["googlenet"]()
    assert any(isinstance(m, Concat) for m in googlenet.modules())
    densenet = MODEL_BUILDERS["densenet121"]()
    assert any(isinstance(m, DenseBlock) for m in densenet.modules())
    mobilenet = MODEL_BUILDERS["mobilenet_v1"]()
    assert any(
        isinstance(m, Conv2d) and is_depthwise_conv(m) for m in mobilenet.modules()
    )
    alexnet = MODEL_BUILDERS["alexnet"]()
    assert not any(isinstance(m, ResidualBlock) for m in alexnet.modules())


def test_seed_stream_is_deterministic_and_distinct():
    a = SeedStream("model-a")
    b = SeedStream("model-a")
    c = SeedStream("model-b")
    assert a.next() == b.next()
    assert a.next() == b.next()
    assert SeedStream("model-a").next() != c.next()


def test_load_dataset_memoization():
    first = load_dataset(fast=True)
    second = load_dataset(fast=True)
    assert first is second


def test_load_trained_model_uses_cache(tmp_path):
    cache = ArtifactCache(tmp_path)
    from repro.nn.train import TrainConfig

    config = TrainConfig(epochs=1, batch_size=64, lr=0.05, lr_decay_epochs=())
    first = load_trained_model(
        "googlenet", fast=True, cache=cache, train_config=config
    )
    assert 0.0 <= first.fp32_accuracy <= 1.0
    # Second call must hit the on-disk cache and restore identical weights.
    second = load_trained_model(
        "googlenet", fast=True, cache=cache, train_config=config
    )
    for (_, a), (_, b) in zip(
        first.model.named_parameters(), second.model.named_parameters()
    ):
        np.testing.assert_array_equal(a.value, b.value)


def test_load_trained_model_unknown_name():
    with pytest.raises(KeyError):
        load_trained_model("not-a-model")
