"""Analytic utilization model (Eq. (7)/(8)) against Monte-Carlo simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.systolic.utilization import (
    monte_carlo_utilization_gain,
    utilization_gain_analytic,
    utilization_probability,
)


def test_eq7_basic_values():
    assert utilization_probability([1.0, 1.0]) == 1.0
    assert utilization_probability([0.0, 0.0]) == 0.0
    assert utilization_probability([0.5]) == pytest.approx(0.5)
    assert utilization_probability([0.5, 0.5]) == pytest.approx(0.75)


def test_eq7_rejects_invalid_probabilities():
    with pytest.raises(ValueError):
        utilization_probability([1.5])


def test_eq8_is_one_plus_sparsity_for_two_threads():
    for sparsity in (0.0, 0.25, 0.5, 0.9):
        assert utilization_gain_analytic(sparsity, 2) == pytest.approx(1 + sparsity)


def test_eq8_limits():
    assert utilization_gain_analytic(0.0, 4) == 1.0
    assert utilization_gain_analytic(1.0, 2) == 1.0
    assert utilization_gain_analytic(0.5, 1) == 1.0


def test_eq8_rejects_invalid_input():
    with pytest.raises(ValueError):
        utilization_gain_analytic(1.5, 2)
    with pytest.raises(ValueError):
        utilization_gain_analytic(0.5, 0)


@settings(max_examples=10, deadline=None)
@given(
    sparsity=st.floats(min_value=0.05, max_value=0.9),
    threads=st.sampled_from([2, 4]),
)
def test_analytic_matches_monte_carlo(sparsity, threads):
    analytic = utilization_gain_analytic(sparsity, threads)
    simulated = monte_carlo_utilization_gain(sparsity, threads, samples=50_000, seed=1)
    assert simulated == pytest.approx(analytic, rel=0.05)


def test_gain_increases_with_threads():
    for sparsity in (0.3, 0.6):
        assert utilization_gain_analytic(sparsity, 4) > utilization_gain_analytic(
            sparsity, 2
        )
