"""Conventional OS-SA simulator correctness."""

import numpy as np
import pytest

from repro.systolic.os_sa import ArrayReport, OutputStationarySA
from repro.utils.rng import new_rng
from tests.conftest import make_quantized_pair


def test_vectorized_matches_matmul():
    rng = new_rng(0)
    x, w = make_quantized_pair(rng, m=20, k=30, n=18)
    array = OutputStationarySA(rows=8, cols=8)
    out, report = array.matmul(x, w)
    assert np.array_equal(out, x @ w)
    assert report.tiles == 3 * 3
    assert report.mac_cycles_total == 20 * 30 * 18


def test_explicit_matches_vectorized():
    rng = new_rng(1)
    x, w = make_quantized_pair(rng, m=7, k=9, n=6)
    array = OutputStationarySA(rows=4, cols=4)
    out_vec, report_vec = array.matmul(x, w)
    out_exp, report_exp = array.matmul_explicit(x, w)
    assert np.array_equal(out_vec, out_exp)
    assert report_vec.mac_cycles_active == report_exp.mac_cycles_active
    assert report_vec.cycles == report_exp.cycles


def test_utilization_reflects_sparsity():
    rng = new_rng(2)
    x_dense, w = make_quantized_pair(rng, m=16, k=16, n=16, act_sparsity=0.0,
                                     wgt_sparsity=0.0)
    x_sparse = x_dense.copy()
    x_sparse[new_rng(3).random(x_sparse.shape) < 0.7] = 0
    array = OutputStationarySA(rows=8, cols=8)
    _, dense_report = array.matmul(x_dense, w)
    _, sparse_report = array.matmul(x_sparse, w)
    assert dense_report.utilization > sparse_report.utilization


def test_cycle_count_uses_cycle_model():
    array = OutputStationarySA(rows=4, cols=4, pipeline_stages=1)
    x = np.ones((4, 10), dtype=int)
    w = np.ones((10, 4), dtype=int)
    _, report = array.matmul(x, w)
    assert report.cycles == array.cycle_model.tile_cycles(10)


def test_invalid_dimensions():
    with pytest.raises(ValueError):
        OutputStationarySA(rows=0, cols=4)


def test_report_merge():
    a = ArrayReport(cycles=10, mac_cycles_total=100, mac_cycles_active=50, tiles=1)
    b = ArrayReport(cycles=5, mac_cycles_total=50, mac_cycles_active=25, tiles=2)
    a.merge(b)
    assert a.cycles == 15
    assert a.utilization == pytest.approx(0.5)
    assert ArrayReport().utilization == 0.0
