"""SySMT array simulator: equivalence with the functional executor."""

import numpy as np
import pytest

from repro.core.smt import NBSMTMatmul
from repro.systolic.os_sa import OutputStationarySA
from repro.systolic.sysmt import SySMTArray
from repro.utils.rng import new_rng
from tests.conftest import make_quantized_pair


@pytest.mark.parametrize("threads,policy", [(2, "S+A"), (2, "S+Aw"), (2, "S+W"),
                                            (4, "S+A")])
def test_vectorized_array_matches_functional_executor(threads, policy):
    rng = new_rng(7)
    x, w = make_quantized_pair(rng, m=20, k=32, n=12)
    array = SySMTArray(rows=8, cols=8, threads=threads, policy=policy)
    out, report = array.matmul(x, w)
    expected = NBSMTMatmul(threads, policy).matmul(x, w)
    assert np.array_equal(out, expected)
    assert report.tiles > 0


@pytest.mark.parametrize("threads,policy", [(2, "S+A"), (2, "S"), (2, "min"),
                                            (4, "S+A")])
def test_explicit_pe_simulation_matches_functional_executor(threads, policy):
    rng = new_rng(8)
    x, w = make_quantized_pair(rng, m=6, k=16, n=5)
    array = SySMTArray(rows=4, cols=4, threads=threads, policy=policy)
    out, _ = array.matmul_explicit(x, w)
    expected = NBSMTMatmul(threads, policy).matmul(x, w)
    assert np.array_equal(out, expected)


def test_explicit_matches_vectorized_with_permutation():
    rng = new_rng(9)
    x, w = make_quantized_pair(rng, m=5, k=12, n=4)
    perm = new_rng(10).permutation(12)
    array = SySMTArray(rows=4, cols=4, threads=2, policy="S+A")
    out_vec, _ = array.matmul(x, w, permutation=perm)
    out_exp, _ = array.matmul_explicit(x, w, permutation=perm)
    assert np.array_equal(out_vec, out_exp)


def test_cycle_speedup_is_proportional_to_threads():
    rng = new_rng(11)
    x, w = make_quantized_pair(rng, m=32, k=2048, n=32)
    baseline = OutputStationarySA(rows=16, cols=16, pipeline_stages=2)
    _, base_report = baseline.matmul(x, w)
    # The array drain (R + C - 2 cycles per tile) slightly dilutes the ideal
    # T-times speedup; with a deep K dimension it approaches T.
    expected_minimum = {2: 1.9, 4: 3.6}
    for threads in (2, 4):
        sysmt = SySMTArray(rows=16, cols=16, threads=threads, policy="S+A",
                           pipeline_stages=2)
        _, report = sysmt.matmul(x, w)
        speedup = sysmt.speedup_over(base_report.cycles, report.cycles)
        assert expected_minimum[threads] <= speedup <= threads


def test_sysmt_utilization_not_below_baseline():
    rng = new_rng(12)
    x, w = make_quantized_pair(rng, m=32, k=64, n=32, act_sparsity=0.6)
    baseline = OutputStationarySA(rows=8, cols=8)
    _, base_report = baseline.matmul(x, w)
    sysmt = SySMTArray(rows=8, cols=8, threads=2, policy="S+A")
    _, report = sysmt.matmul(x, w)
    assert report.utilization >= base_report.utilization


def test_invalid_thread_count():
    with pytest.raises(ValueError):
        SySMTArray(threads=3)


def test_stats_accumulate_and_reset():
    rng = new_rng(13)
    x, w = make_quantized_pair(rng, m=8, k=16, n=8)
    array = SySMTArray(rows=4, cols=4, threads=2)
    array.matmul(x, w)
    assert array.stats.mac_total > 0
    array.reset_stats()
    assert array.stats.mac_total == 0
