"""Tiling, skewed schedule and the cycle model."""

import numpy as np
import pytest

from repro.systolic.dataflow import (
    CycleModel,
    skewed_schedule,
    split_matrices_for_threads,
    tile_matrices,
)
from repro.utils.rng import new_rng
from tests.conftest import make_quantized_pair


def test_tile_matrices_cover_output():
    rng = new_rng(0)
    x, w = make_quantized_pair(rng, m=10, k=12, n=9)
    covered = np.zeros((10, 9), dtype=int)
    for row_slice, col_slice, x_tile, w_tile in tile_matrices(x, w, 4, 4):
        assert x_tile.shape[1] == 12
        assert w_tile.shape[0] == 12
        covered[row_slice, col_slice] += 1
    assert np.all(covered == 1)


def test_tile_matrices_rejects_mismatch():
    with pytest.raises(ValueError):
        list(tile_matrices(np.zeros((2, 3)), np.zeros((4, 5)), 2, 2))


def test_skewed_schedule_cycle_identity():
    for cycle, k, i, j in skewed_schedule(depth=3, rows=2, cols=2):
        assert cycle == k + i + j


def test_skewed_schedule_count():
    schedule = list(skewed_schedule(depth=5, rows=3, cols=2))
    assert len(schedule) == 5 * 3 * 2


def test_cycle_model_tile_cycles():
    model = CycleModel(rows=16, cols=16, pipeline_stages=1)
    assert model.tile_cycles(0) == 0
    assert model.tile_cycles(64) == 64 + 15 + 15 + 1


def test_cycle_model_speedup_is_proportional_to_threads():
    model = CycleModel(rows=16, cols=16, pipeline_stages=2)
    base = model.matmul_cycles(256, 1024, 256, depth_per_cycle=1)
    two = model.matmul_cycles(256, 1024, 256, depth_per_cycle=2)
    four = model.matmul_cycles(256, 1024, 256, depth_per_cycle=4)
    assert base / two == pytest.approx(2.0, rel=0.1)
    assert base / four == pytest.approx(4.0, rel=0.15)


def test_cycle_model_tiling_counts():
    model = CycleModel(rows=4, cols=4)
    # 2 x 3 output tiles
    cycles = model.matmul_cycles(8, 10, 12)
    assert cycles == 2 * 3 * model.tile_cycles(10)


def test_split_matrices_for_threads_matches_core():
    rng = new_rng(1)
    x, w = make_quantized_pair(rng, m=6, k=10, n=4)
    x_t, w_t = split_matrices_for_threads(x, w, 2)
    assert x_t.shape == (2, 6, 5)
    assert np.array_equal(sum(x_t[t] @ w_t[t] for t in range(2)), x @ w)
