"""Data-arrangement (reordering) correctness and effectiveness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.smt import NBSMTMatmul
from repro.quant.calibration import ColumnStats
from repro.systolic.reorder import (
    compute_reorder_permutation,
    expected_collision_rate,
    identity_permutation,
)
from repro.utils.rng import new_rng
from tests.conftest import make_quantized_pair


def _stats_from_scores(scores: np.ndarray) -> ColumnStats:
    return ColumnStats(p_wide=scores, p_nonzero=np.clip(scores * 1.5, 0, 1))


def test_identity_permutation():
    assert np.array_equal(identity_permutation(5), np.arange(5))


def test_permutation_is_valid_permutation():
    scores = new_rng(0).random(24)
    perm = compute_reorder_permutation(_stats_from_scores(scores), threads=2)
    assert sorted(perm.tolist()) == list(range(24))


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=64),
    threads=st.sampled_from([2, 4]),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_permutation_validity_property(k, threads, seed):
    scores = new_rng(seed).random(k)
    perm = compute_reorder_permutation(_stats_from_scores(scores), threads=threads)
    assert sorted(perm.tolist()) == list(range(k))


def test_reordering_reduces_expected_collisions():
    rng = new_rng(1)
    scores = rng.random(32)
    stats = _stats_from_scores(scores)
    baseline = expected_collision_rate(stats, None, threads=2)
    reordered = expected_collision_rate(
        stats, compute_reorder_permutation(stats, 2), threads=2
    )
    assert reordered <= baseline + 1e-12


def test_reordering_reduces_measured_error():
    """When the natural split pairs heavy columns together, reordering helps."""
    rng = new_rng(2)
    m, k, n = 64, 32, 16
    x = np.zeros((m, k), dtype=np.int64)
    # The natural 2-thread split pairs column j with column j + k/2.  Make
    # columns 0..7 and 16..23 heavy so that heavy columns pair with heavy
    # columns (worst case) and light columns pair with light columns.
    heavy = np.r_[0 : k // 4, k // 2 : 3 * k // 4]
    light = np.setdiff1d(np.arange(k), heavy)
    x[:, heavy] = np.clip(
        np.rint(np.abs(rng.normal(0, 60, (m, heavy.size)))) + 16, 16, 255
    )
    x[:, light] = (rng.random((m, light.size)) < 0.2) * rng.integers(
        1, 15, (m, light.size)
    )
    w = np.clip(np.rint(rng.normal(0, 25, (k, n))), -127, 127).astype(np.int64)

    p_wide = (x >= 16).mean(axis=0)
    p_nonzero = (x > 0).mean(axis=0)
    stats = ColumnStats(p_wide=p_wide, p_nonzero=p_nonzero)
    perm = compute_reorder_permutation(stats, threads=2)

    plain = NBSMTMatmul(2, "S+A")
    plain.matmul(x, w)
    reordered = NBSMTMatmul(2, "S+A")
    reordered.matmul(x, w, permutation=perm)
    assert reordered.stats.sum_sq_error <= plain.stats.sum_sq_error
    assert reordered.stats.smt_utilization >= plain.stats.smt_utilization


def test_reordering_does_not_change_exact_result():
    rng = new_rng(3)
    x, w = make_quantized_pair(rng, m=16, k=20, n=8)
    stats = ColumnStats(p_wide=(x >= 16).mean(axis=0), p_nonzero=(x > 0).mean(axis=0))
    perm = compute_reorder_permutation(stats, threads=2)
    out = NBSMTMatmul(1, "S+A").matmul(x, w, permutation=perm)
    assert np.array_equal(out, x @ w)


def test_invalid_thread_count():
    with pytest.raises(ValueError):
        compute_reorder_permutation(_stats_from_scores(np.ones(4)), threads=0)
