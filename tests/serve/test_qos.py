"""QoS controller: hysteresis, cooldown, recovery, and governor wiring.

All controller tests drive a fake clock and synthetic load signals, so the
degrade/recover timing is deterministic -- no sleeping, no real traffic.
"""

from types import SimpleNamespace

import pytest

from repro.eval.throttle import OperatingLadder, OperatingPoint
from repro.serve.qos import (
    EndpointGovernor,
    LoadSignal,
    QoSConfig,
    QoSController,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


CONFIG = QoSConfig(
    degrade_pressure=0.75,
    recover_pressure=0.35,
    degrade_after_s=0.5,
    recover_after_s=2.0,
    cooldown_s=1.0,
)


def controller(num_levels=3, clock=None, config=CONFIG):
    return QoSController(num_levels, config=config, clock=clock or FakeClock())


def pressure(value: float, **overrides) -> LoadSignal:
    return LoadSignal(pressure=value, **overrides)


def test_sustained_pressure_degrades_one_rung():
    clock = FakeClock()
    qos = controller(clock=clock)
    assert qos.observe(pressure(0.9)) is None  # streak starts
    clock.advance(0.4)
    assert qos.observe(pressure(0.9)) is None  # not sustained yet
    clock.advance(0.2)
    transition = qos.observe(pressure(0.9))
    assert transition is not None
    assert (transition.from_level, transition.to_level) == (0, 1)
    assert transition.direction == "degrade"
    assert qos.level == 1


def test_momentary_spike_does_not_degrade():
    clock = FakeClock()
    qos = controller(clock=clock)
    qos.observe(pressure(0.9))
    clock.advance(0.3)
    # Pressure falls into the dead band: the overload streak resets.
    assert qos.observe(pressure(0.5)) is None
    clock.advance(0.4)
    # Overloaded again, but the 0.5s must accumulate afresh.
    assert qos.observe(pressure(0.9)) is None
    clock.advance(0.4)
    assert qos.observe(pressure(0.9)) is None
    clock.advance(0.2)
    assert qos.observe(pressure(0.9)) is not None


def test_cooldown_spaces_consecutive_degrades():
    clock = FakeClock()
    qos = controller(clock=clock)
    qos.observe(pressure(0.95))
    clock.advance(0.6)
    assert qos.observe(pressure(0.95)).to_level == 1
    # Still overloaded, sustained -- but inside the cooldown window.
    clock.advance(0.6)
    assert qos.observe(pressure(0.95)) is None
    clock.advance(0.5)  # cooldown (1.0s) over, streak (>=0.5s) sustained
    assert qos.observe(pressure(0.95)).to_level == 2
    # Bottom of the ladder: stays put under any further pressure.
    clock.advance(5.0)
    assert qos.observe(pressure(1.0)) is None
    assert qos.level == 2


def test_sustained_calm_recovers_to_the_top_rung():
    clock = FakeClock()
    qos = controller(clock=clock)
    qos.force(2)
    clock.advance(CONFIG.cooldown_s)
    assert qos.observe(pressure(0.1)) is None  # calm streak starts
    clock.advance(1.9)
    assert qos.observe(pressure(0.1)) is None  # recovery is deliberate
    clock.advance(0.2)
    transition = qos.observe(pressure(0.1))
    assert transition is not None and transition.direction == "recover"
    assert qos.level == 1
    clock.advance(2.5)  # past the cooldown
    qos.observe(pressure(0.1))  # a fresh calm streak after the transition
    clock.advance(2.1)
    assert qos.observe(pressure(0.1)) is not None
    assert qos.level == 0
    clock.advance(5.0)
    qos.observe(pressure(0.1))
    clock.advance(5.0)
    assert qos.observe(pressure(0.1)) is None  # already at the top


def test_dead_band_prevents_flapping():
    clock = FakeClock()
    qos = controller(clock=clock)
    qos.force(1)
    # Mid pressure (between recover 0.35 and degrade 0.75) forever: no
    # transition in either direction.
    for _ in range(100):
        clock.advance(0.5)
        assert qos.observe(pressure(0.55)) is None
    assert qos.level == 1


def test_rejections_and_latency_budget_count_as_overload():
    clock = FakeClock()
    qos = controller(clock=clock)
    signal = LoadSignal(pressure=0.1, rejected_delta=3)
    qos.observe(signal)
    clock.advance(0.6)
    transition = qos.observe(signal)
    assert transition is not None and "rejected" in transition.reason

    slow = controller(clock=clock)
    lagging = LoadSignal(
        pressure=0.1, p99_latency_s=0.5, latency_budget_s=0.2
    )
    slow.observe(lagging)
    clock.advance(0.6)
    transition = slow.observe(lagging)
    assert transition is not None and "budget" in transition.reason


def test_recovery_requires_latency_back_under_budget():
    clock = FakeClock()
    qos = controller(clock=clock)
    qos.force(1)
    clock.advance(CONFIG.cooldown_s)
    # Pressure is calm but p99 still hugs the budget: no recovery (and no
    # degrade either -- it is not *over* budget).
    lagging = LoadSignal(
        pressure=0.1, p99_latency_s=0.19, latency_budget_s=0.2
    )
    for _ in range(10):
        clock.advance(1.0)
        assert qos.observe(lagging) is None
    healthy = LoadSignal(
        pressure=0.1, p99_latency_s=0.05, latency_budget_s=0.2
    )
    qos.observe(healthy)
    clock.advance(2.1)
    assert qos.observe(healthy) is not None
    assert qos.level == 0


def test_force_and_hold_pin_the_level():
    clock = FakeClock()
    qos = controller(clock=clock)
    transition = qos.force(2, hold=True)
    assert transition.to_level == 2
    assert qos.held
    clock.advance(10.0)
    assert qos.observe(pressure(0.0)) is None  # held: no auto-recovery
    qos.release()
    qos.observe(pressure(0.0))
    clock.advance(2.1)
    assert qos.observe(pressure(0.0)) is not None
    with pytest.raises(ValueError, match="outside ladder"):
        qos.force(7)


def test_snapshot_reports_transitions():
    clock = FakeClock()
    qos = controller(clock=clock)
    qos.observe(pressure(0.9))
    clock.advance(0.6)
    qos.observe(pressure(0.9))
    snapshot = qos.snapshot()
    assert snapshot["level"] == 1
    assert snapshot["num_levels"] == 3
    assert snapshot["transitions"] == 1
    assert snapshot["recent_transitions"][0]["direction"] == "degrade"


# ---------------------------------------------------------------------------
# Governor wiring (stub pool/admission/batcher/metrics)
# ---------------------------------------------------------------------------


class StubMetrics:
    def __init__(self, budget_ms=0.0):
        self.rejected_requests = 0
        self.latency_budget_ms = budget_ms
        self.levels = []
        self.transitions = []
        self._p99 = 0.0

    def recent_p99(self):
        return self._p99

    def set_operating_point(self, level, description):
        self.levels.append((level, description))

    def record_transition(self, transition):
        self.transitions.append(transition)


class StubPool:
    def __init__(self, ladder):
        self._ladder = ladder
        self.applied = []

    def set_operating_point(self, endpoint, level):
        self.applied.append((endpoint, level))
        return self._ladder[level]


def stub_ladder(levels=3):
    return OperatingLadder(
        tuple(
            OperatingPoint(
                level=level,
                slowed_layers=tuple(f"l{i}" for i in range(levels - 1 - level)),
                threads={"l0": 4},
                expected_speedup=2.0 + level,
                expected_mse=float(level),
            )
            for level in range(levels)
        )
    )


def test_governor_reads_signals_and_applies_transitions():
    clock = FakeClock()
    ladder = stub_ladder()
    pool = StubPool(ladder)
    metrics = StubMetrics(budget_ms=100.0)
    admission = SimpleNamespace(pressure=0.9)
    batcher = SimpleNamespace(pending_images=7, max_batch=4,
                              oldest_pending_age=lambda: 0.0)
    governor = EndpointGovernor(
        endpoint="m",
        pool=pool,
        admission=admission,
        batcher=batcher,
        metrics=metrics,
        controller=QoSController(len(ladder), config=CONFIG, clock=clock),
    )
    signal = governor.signal()
    assert signal.pressure == 0.9
    assert signal.queue_images == 7
    assert signal.queue_capacity == 4
    assert signal.latency_budget_s == pytest.approx(0.1)

    assert governor.tick() is None
    clock.advance(0.6)
    transition = governor.tick()
    assert transition is not None
    assert pool.applied == [("m", 1)]
    assert metrics.levels[-1][0] == 1
    assert metrics.transitions == [transition]


def test_governor_rejection_delta_is_per_tick():
    clock = FakeClock()
    metrics = StubMetrics()
    governor = EndpointGovernor(
        endpoint="m",
        pool=StubPool(stub_ladder()),
        admission=SimpleNamespace(pressure=0.0),
        batcher=SimpleNamespace(pending_images=0, max_batch=4,
                                oldest_pending_age=lambda: 0.0),
        metrics=metrics,
        controller=QoSController(3, config=CONFIG, clock=clock),
    )
    metrics.rejected_requests = 5
    assert governor.signal().rejected_delta == 5
    assert governor.signal().rejected_delta == 0  # delta, not cumulative
    metrics.rejected_requests = 7
    assert governor.signal().rejected_delta == 2


def test_static_governor_is_a_noop():
    governor = EndpointGovernor(
        endpoint="m",
        pool=StubPool(stub_ladder(1)),
        admission=SimpleNamespace(pressure=1.0),
        batcher=SimpleNamespace(pending_images=99, max_batch=1,
                                oldest_pending_age=lambda: 0.0),
        metrics=StubMetrics(),
        controller=None,
    )
    assert governor.tick() is None
    assert governor.force(0) is None
    with pytest.raises(ValueError, match="single operating point"):
        governor.force(1)
    assert governor.snapshot()["num_levels"] == 1


def test_level_only_force_keeps_an_existing_hold():
    clock = FakeClock()
    qos = controller(clock=clock)
    qos.force(2, hold=True)
    # Moving the pin without mentioning hold must not un-pin.
    transition = qos.force(1, hold=None)
    assert transition.to_level == 1
    assert qos.held
    clock.advance(30.0)
    assert qos.observe(pressure(0.0)) is None  # still held
    qos.force(1, hold=False)  # explicit un-hold
    assert not qos.held
