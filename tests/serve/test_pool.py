"""Warm engine pool: replica execution, throttled specs, lease lifecycle."""

import numpy as np
import pytest

from repro.core.engine import NBSMTEngine
from repro.eval.parallel import fork_available
from repro.eval.throttle import throttle_assignment
from repro.serve.pool import EnginePool, ForkedReplica, InlineReplica
from repro.serve.registry import ModelSpec, ServeRegistry


def tiny_spec(**overrides) -> ModelSpec:
    params = {
        "name": "tinynet",
        "model": "resnet18",  # registry-valid zoo alias; provider ignores it
        "threads": 2,
        "policy": "S+A",
        "max_batch": 16,
    }
    params.update(overrides)
    return ModelSpec(**params)


def test_inline_replica_matches_direct_engine(
    tiny_harness, tiny_provider, direct_reference
):
    replica = InlineReplica(tiny_spec(), tiny_provider, warm=True)
    images = tiny_harness.eval_images[:8]
    logits, layer_stats = replica.infer(images)
    replica.close()
    expected_logits, expected_stats = direct_reference(tiny_harness, images)
    assert np.array_equal(logits, expected_logits)
    assert set(layer_stats) == set(expected_stats)
    for name, stats in expected_stats.items():
        assert layer_stats[name].as_dict() == stats.as_dict()


def test_inline_replica_stats_are_per_call(tiny_harness, tiny_provider):
    replica = InlineReplica(tiny_spec(), tiny_provider, warm=True)
    images = tiny_harness.eval_images[:4]
    _, first = replica.infer(images)
    _, second = replica.infer(images)
    replica.close()
    for name in first:
        assert first[name].as_dict() == second[name].as_dict()


def test_throttled_spec_uses_throttle_assignment(tiny_harness, tiny_provider):
    layer_names = tiny_harness.qmodel.layer_names()
    slowed = layer_names[0]
    spec = tiny_spec(threads=4, slow_layers=(slowed,), slow_threads=2)
    replica = InlineReplica(spec, tiny_provider, warm=False)
    assignment = replica.thread_assignment()
    expected = throttle_assignment(tiny_harness.qmodel, 4, [slowed], 2)
    replica.close()
    assert assignment == expected
    assert assignment[slowed] == 2
    assert all(
        assignment[name] == 4 for name in layer_names if name != slowed
    )


def test_replica_reasserts_config_after_harness_drift(
    tiny_harness, tiny_provider, direct_reference
):
    """A shared harness reconfigured between requests is re-asserted."""
    replica = InlineReplica(tiny_spec(), tiny_provider, warm=True)
    images = tiny_harness.eval_images[:8]
    expected_logits, _ = replica.infer(images)
    # Experiment code reconfigures the same harness behind the replica's
    # back: different engine, threads and reordering permutations.
    tiny_harness.evaluate_nbsmt(threads=4, policy="min", reorder=True)
    logits, _ = replica.infer(images)
    replica.close()
    assert np.array_equal(logits, expected_logits)


def test_replica_releases_lease_on_close(tiny_harness, tiny_provider):
    replica = InlineReplica(tiny_spec(), tiny_provider, warm=False)
    assert tiny_provider.acquired == 1
    assert tiny_provider.released == 0
    replica.close()
    replica.close()  # idempotent
    assert tiny_provider.released == 1
    with pytest.raises(RuntimeError, match="closed"):
        replica.infer(tiny_harness.eval_images[:1])


def test_pool_runner_splits_batches_per_request(
    tiny_harness, tiny_provider, direct_reference
):
    registry = ServeRegistry()
    spec = registry.register(tiny_spec())
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    runner = pool.runner_for(spec.name)
    images = tiny_harness.eval_images[:6]
    payloads = [images[0:1], images[1:4], images[4:6]]
    results = runner(payloads)
    pool.close()
    assert [result.shape[0] for result in results] == [1, 3, 2]
    expected_logits, _ = direct_reference(tiny_harness, images)
    assert np.array_equal(np.vstack(results), expected_logits)


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_replica_set_respawns_dead_forked_worker(tiny_harness, tiny_provider):
    from repro.serve.pool import ReplicaSet

    replica = ForkedReplica(tiny_spec(), tiny_provider, warm=False)
    replica_set = ReplicaSet([replica])
    images = tiny_harness.eval_images[:2]
    expected, _ = replica_set.infer(images)
    replica._process.kill()  # simulate an OOM-killed worker
    replica._process.join(timeout=10)
    with pytest.raises(RuntimeError, match="died"):
        replica_set.infer(images)
    # The slot was respawned: the next request succeeds and matches.
    try:
        logits, _ = replica_set.infer(images)
        assert np.array_equal(logits, expected)
    finally:
        replica_set.close()


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_forked_replica_matches_inline(tiny_harness, tiny_provider):
    spec = tiny_spec()
    images = tiny_harness.eval_images[:6]
    inline = InlineReplica(spec, tiny_provider, warm=True)
    expected_logits, expected_stats = inline.infer(images)
    inline.close()
    forked = ForkedReplica(spec, tiny_provider, warm=True)
    try:
        logits, layer_stats = forked.infer(images)
    finally:
        forked.close()
    assert np.array_equal(logits, expected_logits)
    assert set(layer_stats) == set(expected_stats)
    for name, stats in expected_stats.items():
        assert layer_stats[name].as_dict() == pytest.approx(stats.as_dict())


def test_pool_builds_ladder_and_swaps_operating_points(
    tiny_harness, tiny_provider, direct_reference
):
    """Each rung's serving output is bit-identical to a direct engine run."""
    from repro.eval.throttle import operating_ladder

    registry = ServeRegistry()
    spec = registry.register(
        tiny_spec(threads=4, ladder_rungs=3, slow_threads=2)
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    ladder = pool.ladder(spec.name)
    assert len(ladder) == 3
    expected_ladder = operating_ladder(
        tiny_harness, base_threads=4, slow_threads=2, rungs=3, policy="S+A"
    )
    assert ladder == expected_ladder
    assert pool.current_level(spec.name) == 0

    images = tiny_harness.eval_images[:8]
    replica_set = pool.replica_set(spec.name)
    for level in (0, 2, 1):
        point = pool.set_operating_point(spec.name, level)
        assert pool.current_level(spec.name) == level
        logits, layer_stats, served_level = replica_set.infer_ex(images)
        assert served_level == level
        # Bit-identical to a direct engine run at this rung's assignment.
        engine = NBSMTEngine("S+A", collect_stats=True)
        qmodel = tiny_harness.qmodel
        qmodel.ensure_installed()
        qmodel.set_threads(dict(point.threads))
        tiny_harness.clear_permutations()
        qmodel.set_engine(engine)
        qmodel.clear_stats()
        expected_logits = qmodel.forward(images)
        assert np.array_equal(logits, expected_logits)
        for name, stats in engine.layer_stats.items():
            assert layer_stats[name].as_dict() == stats.as_dict()
    with pytest.raises(ValueError, match="no ladder rung"):
        pool.set_operating_point(spec.name, 3)
    pool.close()


def test_static_endpoint_has_single_point_ladder(tiny_harness, tiny_provider):
    registry = ServeRegistry()
    spec = registry.register(tiny_spec(threads=2))
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    ladder = pool.ladder(spec.name)
    assert len(ladder) == 1
    assert ladder.top.threads == {
        name: 2 for name in tiny_harness.qmodel.layer_names()
    }
    assert pool.pacing_unit(spec.name) is None
    pool.close()


def test_operating_point_swap_is_atomic_per_batch(tiny_harness, tiny_provider):
    """A swap concurrent with traffic: every batch serves at exactly one rung.

    The swap takes the replica execution lock, so an in-flight micro-batch
    finishes at the rung that admitted it and only later batches move.
    """
    import threading

    registry = ServeRegistry()
    spec = registry.register(
        tiny_spec(threads=4, ladder_rungs=3, slow_threads=2)
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=True)
    replica_set = pool.replica_set(spec.name)
    images = tiny_harness.eval_images[:4]
    levels_seen = []
    stop = threading.Event()

    def traffic():
        while not stop.is_set():
            _, _, level = replica_set.infer_ex(images)
            levels_seen.append(level)

    thread = threading.Thread(target=traffic, daemon=True)
    thread.start()
    try:
        for level in (1, 2, 1, 0):
            pool.set_operating_point(spec.name, level)
    finally:
        stop.set()
        thread.join(timeout=60)
    pool.close()
    # Every batch reported a valid rung, and once the dust settled the
    # last batches ran at the final rung.
    assert levels_seen
    assert set(levels_seen) <= {0, 1, 2}


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_forked_replica_swaps_points_and_respawn_keeps_them(
    tiny_harness, tiny_provider
):
    from repro.serve.pool import ReplicaSet

    registry = ServeRegistry()
    spec = registry.register(
        tiny_spec(threads=4, ladder_rungs=2, slow_threads=2)
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    ladder = pool.ladder(spec.name)
    images = tiny_harness.eval_images[:3]

    replica = ForkedReplica(spec, tiny_provider, warm=False)
    replica_set = ReplicaSet([replica])
    replica.set_operating_point(ladder[1])
    logits_fast, _, level = replica_set.infer_ex(images)
    assert level == 1
    # Kill the worker: the respawned replacement must still serve rung 1.
    replica._process.kill()
    replica._process.join(timeout=10)
    with pytest.raises(RuntimeError, match="died"):
        replica_set.infer_ex(images)
    logits_again, _, level = replica_set.infer_ex(images)
    assert level == 1
    assert np.array_equal(logits_again, logits_fast)
    replica_set.close()
    pool.close()


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_point_swap_survives_a_dead_forked_worker(tiny_harness, tiny_provider):
    """A dead worker must not fail the endpoint-wide rung swap.

    The swap records the target on the replica, skips the dead pipe, and
    the respawn (through the infer path) brings the replacement up at the
    *new* rung -- so the QoS controller's view stays consistent.
    """
    from repro.serve.pool import ReplicaSet

    registry = ServeRegistry()
    spec = registry.register(
        tiny_spec(threads=4, ladder_rungs=2, slow_threads=2)
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    ladder = pool.ladder(spec.name)
    images = tiny_harness.eval_images[:2]

    replica = ForkedReplica(spec, tiny_provider, warm=False)
    replica_set = ReplicaSet([replica])
    replica._process.kill()
    replica._process.join(timeout=10)
    # The endpoint-wide swap must not raise on the dead worker.
    replica_set.set_operating_point(ladder[1])
    assert replica._point == ladder[1]  # intent recorded for the respawn
    # First infer discovers the death and poisons the slot...
    with pytest.raises(RuntimeError):
        replica_set.infer_ex(images)
    # ...and the respawned replacement serves at the swapped-to rung.
    logits, _, level = replica_set.infer_ex(images)
    assert level == 1
    expected = InlineReplica(spec, tiny_provider, warm=False)
    expected.set_operating_point(ladder[1])
    expected_logits, _ = expected.infer(images)
    expected.close()
    assert np.array_equal(logits, expected_logits)
    replica_set.close()
    pool.close()


def test_adaptive_spec_with_no_slowable_layers_fails_loudly(
    tiny_harness, tiny_provider
):
    """threads == slow_threads: every layer is unslowable -- refuse to
    build a silently-static 'adaptive' endpoint."""
    registry = ServeRegistry()
    spec = registry.register(
        tiny_spec(threads=2, ladder_rungs=3, slow_threads=2)
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    with pytest.raises(ValueError, match="no layer is slowable"):
        pool.replica_set(spec.name)
    pool.close()


# -- respawn budget ---------------------------------------------------------


class _DeadStub:
    """A replica whose worker is dead; respawn yields another dead one.

    Driving `_replace_if_dead` with an always-dead lineage walks the whole
    respawn ladder (backoff windows, budget exhaustion) without forking a
    single process.
    """

    def __init__(self, name="stub"):
        from types import SimpleNamespace

        self.spec = SimpleNamespace(name=name)
        self._closed = True
        self.level = 0

    def respawn(self):
        return _DeadStub(self.spec.name)

    def close(self):
        pass


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _budget_set(clock, **overrides):
    from repro.serve.pool import ReplicaSet

    params = dict(
        respawn_budget=3,
        respawn_backoff_s=0.5,
        respawn_backoff_max_s=30.0,
        respawn_reset_s=60.0,
        clock=clock,
    )
    params.update(overrides)
    return ReplicaSet([_DeadStub()], **params)


def test_respawn_backoff_gates_the_fork_loop():
    clock = _FakeClock()
    replica_set = _budget_set(clock)
    dead = replica_set.replicas[0]
    fresh = replica_set._replace_if_dead(dead)
    assert fresh is not dead  # first attempt respawns immediately
    assert replica_set.total_respawns == 1
    # Still inside the 0.5s backoff window: no second fork, the dead
    # replica itself comes back so requests fail fast.
    again = replica_set._replace_if_dead(fresh)
    assert again is fresh
    assert replica_set.total_respawns == 1
    clock.now = 0.6  # window over: the next attempt respawns (backoff 1.0s)
    assert replica_set._replace_if_dead(fresh) is not fresh
    assert replica_set.total_respawns == 2


def test_respawn_budget_exhaustion_is_terminal_and_published():
    from repro.telemetry import bus as telemetry_bus

    clock = _FakeClock()
    replica_set = _budget_set(clock)
    subscription = telemetry_bus.get_bus().subscribe(
        types={"replica_respawn", "replica_failed"}
    )
    try:
        replica = replica_set.replicas[0]
        for attempt in range(3):  # budget=3 respawns succeed
            clock.now = attempt * 10.0  # past backoff, inside reset window
            replica = replica_set._replace_if_dead(replica)
        clock.now = 31.0
        final = replica_set._replace_if_dead(replica)
        assert final is replica  # over budget: no replacement
        health = replica_set.health()
        assert health["failed_replicas"] == 1
        assert health["live_replicas"] == 0
        assert health["degraded"] is True
        assert replica_set.degraded
        # The terminal slot stays terminal: no further attempts counted.
        respawns_before = replica_set.total_respawns
        clock.now = 200.0
        assert replica_set._replace_if_dead(replica) is replica
        assert replica_set.total_respawns == respawns_before
        events = [event.type for event in subscription.drain()]
        assert events.count("replica_respawn") == 3
        assert events.count("replica_failed") == 1
    finally:
        telemetry_bus.get_bus().unsubscribe(subscription)


def test_respawn_count_resets_after_quiet_period():
    clock = _FakeClock()
    replica_set = _budget_set(clock, respawn_budget=1)
    replica = replica_set._replace_if_dead(replica_set.replicas[0])
    assert replica_set.total_respawns == 1
    # A long quiet stretch forgives the earlier crash: the budget refills.
    clock.now = 100.0
    replica = replica_set._replace_if_dead(replica)
    assert replica_set.total_respawns == 2
    assert not replica_set.degraded
