"""Warm engine pool: replica execution, throttled specs, lease lifecycle."""

import numpy as np
import pytest

from repro.eval.parallel import fork_available
from repro.eval.throttle import throttle_assignment
from repro.serve.pool import EnginePool, ForkedReplica, InlineReplica
from repro.serve.registry import ModelSpec, ServeRegistry


def tiny_spec(**overrides) -> ModelSpec:
    params = {
        "name": "tinynet",
        "model": "resnet18",  # registry-valid zoo alias; provider ignores it
        "threads": 2,
        "policy": "S+A",
        "max_batch": 16,
    }
    params.update(overrides)
    return ModelSpec(**params)


def test_inline_replica_matches_direct_engine(
    tiny_harness, tiny_provider, direct_reference
):
    replica = InlineReplica(tiny_spec(), tiny_provider, warm=True)
    images = tiny_harness.eval_images[:8]
    logits, layer_stats = replica.infer(images)
    replica.close()
    expected_logits, expected_stats = direct_reference(tiny_harness, images)
    assert np.array_equal(logits, expected_logits)
    assert set(layer_stats) == set(expected_stats)
    for name, stats in expected_stats.items():
        assert layer_stats[name].as_dict() == stats.as_dict()


def test_inline_replica_stats_are_per_call(tiny_harness, tiny_provider):
    replica = InlineReplica(tiny_spec(), tiny_provider, warm=True)
    images = tiny_harness.eval_images[:4]
    _, first = replica.infer(images)
    _, second = replica.infer(images)
    replica.close()
    for name in first:
        assert first[name].as_dict() == second[name].as_dict()


def test_throttled_spec_uses_throttle_assignment(tiny_harness, tiny_provider):
    layer_names = tiny_harness.qmodel.layer_names()
    slowed = layer_names[0]
    spec = tiny_spec(threads=4, slow_layers=(slowed,), slow_threads=2)
    replica = InlineReplica(spec, tiny_provider, warm=False)
    assignment = replica.thread_assignment()
    expected = throttle_assignment(tiny_harness.qmodel, 4, [slowed], 2)
    replica.close()
    assert assignment == expected
    assert assignment[slowed] == 2
    assert all(
        assignment[name] == 4 for name in layer_names if name != slowed
    )


def test_replica_reasserts_config_after_harness_drift(
    tiny_harness, tiny_provider, direct_reference
):
    """A shared harness reconfigured between requests is re-asserted."""
    replica = InlineReplica(tiny_spec(), tiny_provider, warm=True)
    images = tiny_harness.eval_images[:8]
    expected_logits, _ = replica.infer(images)
    # Experiment code reconfigures the same harness behind the replica's
    # back: different engine, threads and reordering permutations.
    tiny_harness.evaluate_nbsmt(threads=4, policy="min", reorder=True)
    logits, _ = replica.infer(images)
    replica.close()
    assert np.array_equal(logits, expected_logits)


def test_replica_releases_lease_on_close(tiny_harness, tiny_provider):
    replica = InlineReplica(tiny_spec(), tiny_provider, warm=False)
    assert tiny_provider.acquired == 1
    assert tiny_provider.released == 0
    replica.close()
    replica.close()  # idempotent
    assert tiny_provider.released == 1
    with pytest.raises(RuntimeError, match="closed"):
        replica.infer(tiny_harness.eval_images[:1])


def test_pool_runner_splits_batches_per_request(
    tiny_harness, tiny_provider, direct_reference
):
    registry = ServeRegistry()
    spec = registry.register(tiny_spec())
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    runner = pool.runner_for(spec.name)
    images = tiny_harness.eval_images[:6]
    payloads = [images[0:1], images[1:4], images[4:6]]
    results = runner(payloads)
    pool.close()
    assert [result.shape[0] for result in results] == [1, 3, 2]
    expected_logits, _ = direct_reference(tiny_harness, images)
    assert np.array_equal(np.vstack(results), expected_logits)


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_replica_set_respawns_dead_forked_worker(tiny_harness, tiny_provider):
    from repro.serve.pool import ReplicaSet

    replica = ForkedReplica(tiny_spec(), tiny_provider, warm=False)
    replica_set = ReplicaSet([replica])
    images = tiny_harness.eval_images[:2]
    expected, _ = replica_set.infer(images)
    replica._process.kill()  # simulate an OOM-killed worker
    replica._process.join(timeout=10)
    with pytest.raises(RuntimeError, match="died"):
        replica_set.infer(images)
    # The slot was respawned: the next request succeeds and matches.
    try:
        logits, _ = replica_set.infer(images)
        assert np.array_equal(logits, expected)
    finally:
        replica_set.close()


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_forked_replica_matches_inline(tiny_harness, tiny_provider):
    spec = tiny_spec()
    images = tiny_harness.eval_images[:6]
    inline = InlineReplica(spec, tiny_provider, warm=True)
    expected_logits, expected_stats = inline.infer(images)
    inline.close()
    forked = ForkedReplica(spec, tiny_provider, warm=True)
    try:
        logits, layer_stats = forked.infer(images)
    finally:
        forked.close()
    assert np.array_equal(logits, expected_logits)
    assert set(layer_stats) == set(expected_stats)
    for name, stats in expected_stats.items():
        assert layer_stats[name].as_dict() == pytest.approx(stats.as_dict())
