"""Golden-trace conformance: live engines vs the committed fixture.

``tests/serve/golden/tinynet_ladder.json`` pins, for every rung of the
reference model's throttle ladder, the logits digest, accuracy and exact
per-layer ``SMTStatistics`` counters.  These tests diff the live stack
against it, so a quantization/engine/statistics regression fails loudly at
the offending rung instead of silently shifting accuracy -- and the same
fixture anchors the serving path: a batcher pinned at a rung must produce
the committed digest bit for bit.

The fixture is pinned to this container's numpy/BLAS (float32 GEMMs).
After an *intentional* numerical change, regenerate with::

    PYTHONPATH=src python -m repro.serve.conformance \
        --write tests/serve/golden/tinynet_ladder.json
"""

import json

import numpy as np
import pytest

from repro.serve import conformance
from repro.serve.batcher import DynamicBatcher
from repro.serve.pool import EnginePool
from repro.serve.registry import ModelSpec, ServeRegistry


@pytest.fixture(scope="session")
def golden_fixture() -> dict:
    path = conformance.default_fixture_path()
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        "python -m repro.serve.conformance --write <path>"
    )
    with open(path, encoding="utf-8") as handle:
        fixture = json.load(handle)
    if fixture.get("numpy_version") != np.__version__:
        # The digests hash raw float32 GEMM outputs, which are pinned to
        # the numpy/BLAS that generated the fixture.  On a different
        # environment a few-ULP summation difference is not a regression:
        # skip instead of failing tier-1, and regenerate the fixture to
        # re-arm the suite for that environment.
        pytest.skip(
            f"golden fixture generated under numpy "
            f"{fixture.get('numpy_version')} != running {np.__version__}; "
            "regenerate with python -m repro.serve.conformance --write "
            f"{path}"
        )
    return fixture


def test_fixture_matches_reference_ladder(tiny_harness, golden_fixture):
    """The committed rungs are exactly the reference ladder's points."""
    ladder = conformance.reference_ladder(tiny_harness)
    assert len(ladder) == len(golden_fixture["rungs"])
    for point, rung in zip(ladder.points, golden_fixture["rungs"]):
        assert point.level == rung["level"]
        assert list(point.slowed_layers) == rung["slowed_layers"]
        assert dict(point.threads) == {
            name: int(threads) for name, threads in rung["threads"].items()
        }
        assert point.expected_speedup == rung["expected_speedup"]
        assert point.expected_mse == rung["expected_mse"]
        assert point.expected_accuracy == rung["accuracy"]


def test_engines_reproduce_golden_traces(tiny_harness, golden_fixture):
    """Every rung: live logits digest + stats counters == the fixture."""
    mismatches = conformance.verify_traces(golden_fixture, tiny_harness)
    assert mismatches == []


def test_serving_at_fixed_rung_matches_golden_traces(
    tiny_harness, tiny_provider, golden_fixture
):
    """Batched serving pinned at each rung reproduces the committed digest.

    ``max_batch == harness.batch_size`` makes the pre-filled batcher
    coalesce single-image requests into exactly the fixture's batch
    partition, so the digests must match bit for bit -- adaptivity only
    ever changes *which* rung serves a request, never what a rung computes.
    """
    registry = ServeRegistry()
    spec = registry.register(
        ModelSpec(
            name="tinynet",
            model="resnet18",  # registry-valid alias; the provider ignores it
            threads=conformance.BASE_THREADS,
            slow_threads=conformance.SLOW_THREADS,
            policy=conformance.POLICY,
            ladder_rungs=conformance.LADDER_RUNGS,
            max_batch=tiny_harness.batch_size,
            max_wait_ms=500.0,
        )
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    images = tiny_harness.eval_images
    try:
        for rung in golden_fixture["rungs"]:
            pool.set_operating_point(spec.name, rung["level"])
            batcher = DynamicBatcher(
                pool.runner_for(spec.name, with_point=True),
                max_batch=spec.max_batch,
                max_wait=spec.max_wait_ms / 1000.0,
                autostart=False,
            )
            futures = [
                batcher.submit(images[index : index + 1])
                for index in range(images.shape[0])
            ]
            batcher.start()
            results = [future.result(timeout=300) for future in futures]
            batcher.close()
            served = np.vstack([logits for logits, _level in results])
            assert all(level == rung["level"] for _logits, level in results)
            assert conformance.logits_digest(served) == rung["logits_sha256"]
            accuracy = float(
                (served.argmax(axis=1) == tiny_harness.eval_labels).mean()
            )
            assert accuracy == rung["accuracy"]
    finally:
        pool.close()
