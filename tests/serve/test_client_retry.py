"""RetryPolicy budget arithmetic (tier-1, pure python).

The retrying client's whole contract lives in three small functions --
``base_delay_ms`` (monotone capped exponential), ``delay_ms`` (jitter plus
the server's ``Retry-After`` floor), ``should_retry`` (attempt and
deadline budgets) -- plus the shed-advice parser.  Property-test them
directly; the stateful lifecycle machine composes them in
``test_retry_stateful.py``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.client import RetryPolicy, _retry_after_ms
from tests.strategies.lifelines import (
    attempt_indices,
    retry_after_advice_ms,
    retry_policies,
)
from tests.strategies.settings import QUICK_SETTINGS


@QUICK_SETTINGS
@given(policy=retry_policies(), attempt=attempt_indices())
def test_base_delay_is_monotone_and_capped(policy, attempt):
    here = policy.base_delay_ms(attempt)
    after = policy.base_delay_ms(attempt + 1)
    assert here <= after  # backoff never shrinks between attempts
    assert policy.base_backoff_ms * 0.999 <= here or here == policy.max_backoff_ms
    assert here <= policy.max_backoff_ms


@QUICK_SETTINGS
@given(
    policy=retry_policies(),
    attempt=attempt_indices(),
    advice=retry_after_advice_ms(),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_delay_honors_the_retry_after_floor_and_jitter_band(
    policy, attempt, advice, seed
):
    rng = random.Random(seed)
    delay = policy.delay_ms(attempt, rng, advice)
    assert delay >= 0.0
    if advice is not None:
        assert delay >= advice  # the server's advice is a floor
    base = policy.base_delay_ms(attempt)
    ceiling = base * (1.0 + policy.jitter)
    assert delay <= max(ceiling, advice or 0.0) + 1e-9


@QUICK_SETTINGS
@given(policy=retry_policies(), attempt=attempt_indices(), seed=st.integers(0, 99))
def test_no_retry_lands_past_the_deadline(policy, attempt, seed):
    delay = policy.delay_ms(attempt, random.Random(seed))
    # A retry that would land exactly at (or past) expiry is refused.
    assert not policy.should_retry(attempt, delay, delay)
    assert not policy.should_retry(attempt, delay, delay * 0.5)
    if attempt < policy.max_retries:
        assert policy.should_retry(attempt, delay, delay + 1.0)
        assert policy.should_retry(attempt, delay, None)


@QUICK_SETTINGS
@given(policy=retry_policies(), attempt=attempt_indices())
def test_attempt_budget_is_exhausted_at_max_retries(policy, attempt):
    allowed = policy.should_retry(attempt, 0.0, None)
    assert allowed == (attempt < policy.max_retries)


def test_jitter_spreads_a_thundering_herd():
    policy = RetryPolicy(max_retries=3, base_backoff_ms=100.0, jitter=0.2)
    delays = {
        round(policy.delay_ms(0, random.Random(seed)), 6)
        for seed in range(32)
    }
    assert len(delays) > 1  # seeded jitter de-synchronizes clients
    assert all(80.0 <= delay <= 120.0 for delay in delays)
    calm = RetryPolicy(max_retries=3, base_backoff_ms=100.0, jitter=0.0)
    assert calm.delay_ms(0, random.Random(7)) == 100.0


def test_retry_after_parsing_prefers_the_body_field():
    class Headers(dict):
        pass

    assert _retry_after_ms({"retry_after_ms": 75.0}, Headers()) == 75.0
    assert (
        _retry_after_ms(
            {"retry_after_ms": 75.0}, Headers({"Retry-After": "2"})
        )
        == 75.0
    )
    # Header fallback is whole seconds.
    assert _retry_after_ms({}, Headers({"Retry-After": "2"})) == 2000.0
    assert _retry_after_ms({}, Headers()) is None
    assert _retry_after_ms({"retry_after_ms": "junk"}, Headers()) is None
    assert _retry_after_ms(None, None) is None


def test_zero_retry_policy_never_retries():
    policy = RetryPolicy()
    assert policy.max_retries == 0
    assert not policy.should_retry(0, 0.0, None)


@pytest.mark.parametrize(
    ("attempt", "expected"),
    [(0, 25.0), (1, 50.0), (2, 100.0), (5, 800.0), (10, 2000.0)],
)
def test_default_schedule_doubles_until_the_cap(attempt, expected):
    assert RetryPolicy().base_delay_ms(attempt) == expected


# ---------------------------------------------------------------------------
# Retry-After header round trip (PR 9 bugfix)
# ---------------------------------------------------------------------------
#
# The header carries whole seconds, so the server must round *up*: an
# integer truncation of a sub-second advice (e.g. 250ms -> "0") would let
# clients retry immediately, defeating advice-as-floor on the client side.


@QUICK_SETTINGS
@given(advice_ms=st.floats(min_value=0.001, max_value=120_000.0,
                           allow_nan=False, allow_infinity=False))
def test_retry_after_header_round_trip_never_shrinks_the_advice(advice_ms):
    from repro.serve.server import retry_after_header

    header = retry_after_header(advice_ms)
    assert header.isdigit() and int(header) >= 1  # valid RFC header token
    parsed = _retry_after_ms({}, {"Retry-After": header})
    assert parsed is not None and parsed >= advice_ms


def test_retry_after_header_sub_second_advice_rounds_up():
    from repro.serve.server import retry_after_header

    assert retry_after_header(250.0) == "1"
    assert retry_after_header(499.0) == "1"  # int(round(...)) would say "0"
    assert retry_after_header(1000.0) == "1"
    assert retry_after_header(1001.0) == "2"
    assert retry_after_header(0.0) == "1"  # never advertise "retry now"
