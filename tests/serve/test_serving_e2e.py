"""End-to-end serving: batched responses bit-identical to the harness.

The in-process test is the subsystem's correctness anchor: the *same*
images served as single-image requests through the dynamic batcher must
produce bit-identical logits, accuracy and per-layer
:class:`~repro.core.smt.SMTStatistics` as one direct
``SysmtHarness.evaluate_nbsmt`` run -- the serving layer may change *when*
work happens, never *what* is computed.

The HTTP test (marked ``serve``, opt-in like ``slow``) exercises the full
asyncio front-end: predictions, micro-batches, metrics, admission 429s and
graceful shutdown.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.serve.batcher import DynamicBatcher
from repro.serve.metrics import EndpointMetrics
from repro.serve.pool import EnginePool
from repro.serve.registry import ModelSpec, ServeRegistry


def build_stack(tiny_provider, spec):
    registry = ServeRegistry()
    registry.register(spec)
    pool = EnginePool(registry, provider=tiny_provider, warm=True)
    metrics = EndpointMetrics(spec.name, batch_capacity=spec.max_batch)
    runner = pool.runner_for(spec.name, metrics=metrics)
    batcher = DynamicBatcher(
        runner,
        max_batch=spec.max_batch,
        max_wait=spec.max_wait_ms / 1000.0,
        on_batch=metrics.record_batch,
        autostart=False,
    )
    return pool, metrics, batcher


def test_batched_serving_bit_identical_to_harness(
    tiny_harness, tiny_provider, direct_reference
):
    # max_batch == the harness batch size, so a pre-filled queue coalesces
    # into exactly the batch partition evaluate_nbsmt uses (48 + 48).
    spec = ModelSpec(
        name="tinynet",
        model="resnet18",
        threads=4,
        policy="S+A",
        max_batch=tiny_harness.batch_size,
        max_wait_ms=500.0,
    )
    pool, metrics, batcher = build_stack(tiny_provider, spec)
    images = tiny_harness.eval_images
    labels = tiny_harness.eval_labels

    futures = [
        batcher.submit(images[index : index + 1])
        for index in range(images.shape[0])
    ]
    batcher.start()
    served_logits = np.vstack([future.result(timeout=300) for future in futures])
    batcher.close()
    pool.close()
    served_accuracy = float((served_logits.argmax(axis=1) == labels).mean())

    reference = tiny_harness.evaluate_nbsmt(
        threads=4, policy="S+A", collect_stats=True
    )
    assert served_accuracy == reference.accuracy

    # Bit-identical logits against a direct engine run of the same batches.
    expected_logits = []
    for start in range(0, images.shape[0], spec.max_batch):
        block, _ = direct_reference(
            tiny_harness, images[start : start + spec.max_batch], threads=4
        )
        expected_logits.append(block)
    assert np.array_equal(served_logits, np.vstack(expected_logits))

    # Aggregated endpoint statistics equal the harness run's statistics.
    served_stats = metrics.merged_smt_stats()
    assert set(served_stats) == set(reference.layer_stats)
    for name, stats in reference.layer_stats.items():
        assert served_stats[name].as_dict() == stats.as_dict()

    # Every engine call was a full batch.
    assert metrics.batches == -(-images.shape[0] // spec.max_batch)
    assert metrics.batch_fill == 1.0


def test_drained_shutdown_serves_queued_requests(tiny_harness, tiny_provider):
    spec = ModelSpec(
        name="tinynet", model="resnet18", threads=2, policy="S+A",
        max_batch=8, max_wait_ms=50.0,
    )
    pool, metrics, batcher = build_stack(tiny_provider, spec)
    futures = [
        batcher.submit(tiny_harness.eval_images[index : index + 1])
        for index in range(12)
    ]
    batcher.start()
    batcher.close(drain=True)  # graceful shutdown with requests in flight
    for future in futures:
        assert future.result(timeout=60).shape[0] == 1
    pool.close()
    assert metrics.batches >= 2


@pytest.mark.serve
def test_http_server_end_to_end(tiny_harness, tiny_provider):
    from repro.serve.client import fetch_json, predict_once, run_load
    from repro.serve.server import NBSMTServer

    registry = ServeRegistry()
    spec = registry.register(
        ModelSpec(
            name="tinynet",
            model="resnet18",
            threads=2,
            policy="S+A",
            max_batch=16,
            max_wait_ms=2.0,
            max_pending=64,
        )
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=True)
    server = NBSMTServer(registry, pool=pool, port=0)

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    def on_loop(coroutine, timeout=300):
        return asyncio.run_coroutine_threadsafe(coroutine, loop).result(timeout)

    try:
        on_loop(server.start())
        url = f"http://127.0.0.1:{server.port}"
        assert fetch_json(url, "/healthz")["status"] == "ok"
        models = fetch_json(url, "/v1/models")["models"]
        assert models[0]["name"] == "tinynet"

        images = tiny_harness.eval_images
        labels = tiny_harness.eval_labels
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                timeout=300)
        # Single image (C, H, W) and micro-batch (B, C, H, W) requests.
        status, payload = predict_once(connection, "tinynet", images[0])
        assert status == 200
        assert payload["batch"] == 1
        assert len(payload["argmax"]) == 1
        status, payload = predict_once(connection, "tinynet", images[:3])
        assert status == 200
        assert payload["argmax"] == np.asarray(
            payload["outputs"]
        ).argmax(axis=1).tolist()

        # Unknown endpoint and malformed body.
        status, payload = predict_once(connection, "nope", images[0])
        assert status == 404
        connection.request("POST", "/v1/models/tinynet:predict", body=b"{]")
        assert connection.getresponse().status == 400  # noqa: PLR2004
        connection.close()

        # A request with the wrong image shape fails alone with a 400 --
        # it must never reach the batcher and poison co-batched requests.
        connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                timeout=300)
        wrong = np.zeros((1, 3, 4, 4), dtype=np.float32)
        status, payload = predict_once(connection, "tinynet", wrong)
        connection.close()
        assert status == 400
        assert "expects images of shape" in payload["error"]

        # A malformed request line gets a 400 response, not a dropped
        # connection.
        import socket

        with socket.create_connection(("127.0.0.1", server.port)) as raw:
            raw.sendall(b"GARBAGE\r\n\r\n")
            reply = raw.recv(65536)
        assert reply.startswith(b"HTTP/1.1 400")

        # Closed-loop load: accuracy over served responses matches the
        # quantized model's own accuracy on those images.
        report = run_load(
            url, "tinynet", images, labels,
            requests=images.shape[0], concurrency=8, batch_size=1,
        )
        assert report.errors == 0
        assert report.rejected == 0
        assert report.requests == images.shape[0]
        reference = tiny_harness.evaluate_nbsmt(
            threads=2, policy="S+A", collect_stats=False
        )
        assert report.accuracy == pytest.approx(reference.accuracy)

        # Saturated admission sheds with 429 (backpressure).
        admission = registry.admission("tinynet")
        assert admission.try_admit(spec.max_pending)
        connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                timeout=300)
        status, payload = predict_once(connection, "tinynet", images[0])
        connection.close()
        assert status == 429
        assert "saturated" in payload["error"]
        admission.release(spec.max_pending)

        metrics = fetch_json(url, "/v1/metrics")["endpoints"]["tinynet"]
        assert metrics["requests"] >= images.shape[0] + 2
        assert metrics["rejected_requests"] == 1
        assert metrics["batches"] >= 1
        assert metrics["smt_layer_stats"]
    finally:
        on_loop(server.stop())
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()


@pytest.mark.serve
def test_http_adaptive_endpoint_degrades_and_recovers(
    tiny_harness, tiny_provider
):
    """Open-loop overload over HTTP: the QoS controller walks the ladder.

    Shedding (429s under a tiny admission budget) drives the degrade; once
    the load generator stops, sustained calm recovers the endpoint to the
    top rung.  The predict responses and the ``operating_point`` route
    report the walk.
    """
    import time

    from repro.serve.client import fetch_json, run_load
    from repro.serve.qos import QoSConfig
    from repro.serve.server import NBSMTServer

    registry = ServeRegistry()
    registry.register(
        ModelSpec(
            name="tinynet",
            model="resnet18",
            threads=4,
            policy="S+A",
            ladder_rungs=3,
            slow_threads=2,
            max_batch=4,
            max_wait_ms=1.0,
            max_pending=2,  # tiny admission budget: overload sheds fast
        )
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=True)
    server = NBSMTServer(
        registry,
        pool=pool,
        port=0,
        qos=QoSConfig(
            degrade_after_s=0.1,
            recover_after_s=0.3,
            cooldown_s=0.15,
        ),
        qos_tick_s=0.05,
    )

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    def on_loop(coroutine, timeout=300):
        return asyncio.run_coroutine_threadsafe(coroutine, loop).result(timeout)

    try:
        on_loop(server.start())
        url = f"http://127.0.0.1:{server.port}"
        point = fetch_json(url, "/v1/models/tinynet/operating_point")
        assert point["level"] == 0 and point["num_rungs"] == 3

        report = run_load(
            url, "tinynet", tiny_harness.eval_images,
            requests=400, concurrency=8, batch_size=1,
            mode="open", rate=400.0, latency_budget_ms=250.0,
        )
        assert report.rejected > 0  # the overload actually happened
        assert report.latency_budget_s == pytest.approx(0.25)
        assert report.within_budget <= report.requests
        point = fetch_json(url, "/v1/models/tinynet/operating_point")
        assert point["controller"]["transitions"] >= 1
        degrades = [
            t for t in point["controller"]["recent_transitions"]
            if t["direction"] == "degrade"
        ]
        assert degrades, "sustained shedding must degrade the endpoint"

        # Load is gone: the controller must climb back to the top rung.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            point = fetch_json(url, "/v1/models/tinynet/operating_point")
            if point["level"] == 0:
                break
            time.sleep(0.1)
        assert point["level"] == 0, "endpoint never recovered to the top rung"

        metrics = fetch_json(url, "/v1/metrics")["endpoints"]["tinynet"]
        assert metrics["operating_point"]["transitions"] >= 2
        assert sum(metrics["points_served_images"].values()) == metrics["images"]
    finally:
        on_loop(server.stop())
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()
