"""Endpoint metrics: quantile estimation, batch fill, stats aggregation."""

import pytest

from repro.core.smt import SMTStatistics
from repro.serve.batcher import BatchReport
from repro.serve.metrics import EndpointMetrics, LatencyHistogram, MetricsRegistry


def test_latency_histogram_quantiles_bracket_true_values():
    histogram = LatencyHistogram()
    samples = [0.001 * i for i in range(1, 1001)]  # 1ms .. 1s uniform
    for sample in samples:
        histogram.record(sample)
    assert histogram.count == 1000
    assert histogram.min == pytest.approx(0.001)
    assert histogram.max == pytest.approx(1.0)
    # Geometric buckets grow ~9.6% per step: estimates are within one step.
    assert histogram.quantile(0.50) == pytest.approx(0.5, rel=0.12)
    assert histogram.quantile(0.99) == pytest.approx(0.99, rel=0.12)
    assert histogram.quantile(0.50) <= histogram.quantile(0.99)
    assert histogram.mean == pytest.approx(sum(samples) / len(samples))


def test_latency_histogram_empty_and_extremes():
    histogram = LatencyHistogram()
    assert histogram.quantile(0.99) == 0.0
    histogram.record(0.0)  # below range -> first bucket
    histogram.record(1e9)  # above range -> overflow bucket, max exact
    assert histogram.count == 2
    assert histogram.max == 1e9
    assert histogram.quantile(0.25) <= histogram.quantile(0.99)


def test_endpoint_batch_fill_and_counts():
    metrics = EndpointMetrics("resnet18", batch_capacity=8)
    metrics.record_batch(BatchReport(2, 8, 0.1, [0.0, 0.01]))
    metrics.record_batch(BatchReport(1, 4, 0.1, [0.02]))
    metrics.record_request(0.05, images=8)
    metrics.record_request(0.07, images=4)
    metrics.record_rejection(images=2)
    assert metrics.batches == 2
    assert metrics.batched_images == 12
    assert metrics.batch_fill == pytest.approx(12 / 16)
    assert metrics.mean_batch_size == pytest.approx(6.0)
    assert metrics.requests == 2
    assert metrics.images == 12
    assert metrics.rejected_requests == 1
    snapshot = metrics.snapshot()
    assert snapshot["batch_fill"] == pytest.approx(12 / 16)
    assert snapshot["latency"]["count"] == 2
    assert snapshot["queue_wait"]["count"] == 3
    assert snapshot["rejected_images"] == 2
    assert snapshot["throughput_images_per_s"] >= 0.0


def test_endpoint_merges_layer_stats_exactly():
    metrics = EndpointMetrics("m", batch_capacity=4)
    first = SMTStatistics(mac_total=10, mac_active=6, sum_sq_error=1.5)
    second = SMTStatistics(mac_total=5, mac_active=2, sum_sq_error=0.25)
    metrics.merge_layer_stats({"conv1": first})
    metrics.merge_layer_stats({"conv1": second, "conv2": first})
    merged = metrics.merged_smt_stats()
    assert merged["conv1"].mac_total == 15
    assert merged["conv1"].mac_active == 8
    assert merged["conv1"].sum_sq_error == pytest.approx(1.75)
    assert merged["conv2"].mac_total == 10
    # merged_smt_stats returns copies: mutating them leaves the endpoint alone.
    merged["conv1"].mac_total = 0
    assert metrics.merged_smt_stats()["conv1"].mac_total == 15
    snapshot = metrics.snapshot()
    assert snapshot["smt_layer_stats"]["conv1"]["mac_total"] == 15


def test_registry_reuses_endpoint_entries():
    registry = MetricsRegistry()
    entry = registry.endpoint("a", batch_capacity=4)
    assert registry.endpoint("a") is entry
    registry.endpoint("b").record_request(0.01)
    snapshot = registry.snapshot()
    assert set(snapshot["endpoints"]) == {"a", "b"}
    assert snapshot["endpoints"]["b"]["requests"] == 1
