"""Endpoint metrics: quantile estimation, batch fill, stats aggregation."""

import pytest

from repro.core.smt import SMTStatistics
from repro.serve.batcher import BatchReport
from repro.serve.metrics import EndpointMetrics, LatencyHistogram, MetricsRegistry


def test_latency_histogram_quantiles_bracket_true_values():
    histogram = LatencyHistogram()
    samples = [0.001 * i for i in range(1, 1001)]  # 1ms .. 1s uniform
    for sample in samples:
        histogram.record(sample)
    assert histogram.count == 1000
    assert histogram.min == pytest.approx(0.001)
    assert histogram.max == pytest.approx(1.0)
    # Geometric buckets grow ~9.6% per step: estimates are within one step.
    assert histogram.quantile(0.50) == pytest.approx(0.5, rel=0.12)
    assert histogram.quantile(0.99) == pytest.approx(0.99, rel=0.12)
    assert histogram.quantile(0.50) <= histogram.quantile(0.99)
    assert histogram.mean == pytest.approx(sum(samples) / len(samples))


def test_latency_histogram_empty_and_extremes():
    histogram = LatencyHistogram()
    assert histogram.quantile(0.99) == 0.0
    histogram.record(0.0)  # below range -> first bucket
    histogram.record(1e9)  # above range -> overflow bucket, max exact
    assert histogram.count == 2
    assert histogram.max == 1e9
    assert histogram.quantile(0.25) <= histogram.quantile(0.99)


def test_endpoint_batch_fill_and_counts():
    metrics = EndpointMetrics("resnet18", batch_capacity=8)
    metrics.record_batch(BatchReport(2, 8, 0.1, [0.0, 0.01]))
    metrics.record_batch(BatchReport(1, 4, 0.1, [0.02]))
    metrics.record_request(0.05, images=8)
    metrics.record_request(0.07, images=4)
    metrics.record_rejection(images=2)
    assert metrics.batches == 2
    assert metrics.batched_images == 12
    assert metrics.batch_fill == pytest.approx(12 / 16)
    assert metrics.mean_batch_size == pytest.approx(6.0)
    assert metrics.requests == 2
    assert metrics.images == 12
    assert metrics.rejected_requests == 1
    snapshot = metrics.snapshot()
    assert snapshot["batch_fill"] == pytest.approx(12 / 16)
    assert snapshot["latency"]["count"] == 2
    assert snapshot["queue_wait"]["count"] == 3
    assert snapshot["rejected_images"] == 2
    assert snapshot["throughput_images_per_s"] >= 0.0


def test_endpoint_merges_layer_stats_exactly():
    metrics = EndpointMetrics("m", batch_capacity=4)
    first = SMTStatistics(mac_total=10, mac_active=6, sum_sq_error=1.5)
    second = SMTStatistics(mac_total=5, mac_active=2, sum_sq_error=0.25)
    metrics.merge_layer_stats({"conv1": first})
    metrics.merge_layer_stats({"conv1": second, "conv2": first})
    merged = metrics.merged_smt_stats()
    assert merged["conv1"].mac_total == 15
    assert merged["conv1"].mac_active == 8
    assert merged["conv1"].sum_sq_error == pytest.approx(1.75)
    assert merged["conv2"].mac_total == 10
    # merged_smt_stats returns copies: mutating them leaves the endpoint alone.
    merged["conv1"].mac_total = 0
    assert metrics.merged_smt_stats()["conv1"].mac_total == 15
    snapshot = metrics.snapshot()
    assert snapshot["smt_layer_stats"]["conv1"]["mac_total"] == 15


def test_registry_reuses_endpoint_entries():
    registry = MetricsRegistry()
    entry = registry.endpoint("a", batch_capacity=4)
    assert registry.endpoint("a") is entry
    registry.endpoint("b").record_request(0.01)
    snapshot = registry.snapshot()
    assert set(snapshot["endpoints"]) == {"a", "b"}
    assert snapshot["endpoints"]["b"]["requests"] == 1


def test_histogram_payload_merge_is_exact():
    from repro.serve.metrics import LatencyHistogram

    left, right, reference = (
        LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    )
    for index in range(1, 200):
        sample = 0.0005 * index
        (left if index % 2 else right).record(sample)
        reference.record(sample)
    merged = LatencyHistogram.from_payload(left.to_payload())
    merged.merge_payload(right.to_payload())
    merged_snapshot = merged.snapshot()
    reference_snapshot = reference.snapshot()
    # The sum is accumulated in a different order across shards: the mean
    # is float-equal only up to rounding, everything else is exact.
    assert merged_snapshot.pop("mean_s") == pytest.approx(
        reference_snapshot.pop("mean_s")
    )
    assert merged_snapshot == reference_snapshot


def test_endpoint_payload_merge_across_shards():
    from repro.serve.metrics import (
        EndpointMetrics,
        merge_endpoint_payloads,
        merge_registry_payloads,
    )

    shards = []
    for shard in range(3):
        metrics = EndpointMetrics("m", batch_capacity=8)
        for index in range(10 * (shard + 1)):
            metrics.record_request(0.01 * (index + 1), images=2)
        metrics.record_batch(BatchReport(2, 8, 0.05, [0.0, 0.01]))
        metrics.record_rejection(images=shard)
        metrics.merge_layer_stats(
            {"conv": SMTStatistics(mac_total=100, mac_active=60 + shard)}
        )
        metrics.record_served_level(shard % 2, 10)
        metrics.set_operating_point(shard % 2, {"level": shard % 2})
        shards.append(metrics)

    merged = merge_endpoint_payloads([m.to_payload() for m in shards])
    assert merged["requests"] == 60
    assert merged["images"] == 120
    assert merged["rejected_images"] == 3
    assert merged["batches"] == 3
    assert merged["latency"]["count"] == 60
    # Exact SMT statistics counters, summed across shards.
    assert merged["smt_layer_stats"]["conv"]["mac_total"] == 300
    assert merged["smt_layer_stats"]["conv"]["mac_active"] == 60 + 61 + 62
    assert merged["points_served_images"] == {"0": 20, "1": 10}
    # The gauge reports the most-degraded shard, plus the per-shard levels.
    assert merged["operating_point"]["level"] == 1
    assert sorted(merged["operating_point"]["shard_levels"]) == [0, 0, 1]

    registry_merge = merge_registry_payloads(
        [{"endpoints": {"m": m.to_payload()}} for m in shards]
    )
    assert registry_merge["endpoints"]["m"]["requests"] == 60


def test_recent_p99_tracks_the_sliding_window():
    metrics = EndpointMetrics("m", recent_window=16)
    for _ in range(16):
        metrics.record_request(1.0)
    assert metrics.recent_p99() == pytest.approx(1.0)
    # The slow epoch ages out of the window; the signal recovers.
    for _ in range(16):
        metrics.record_request(0.01)
    assert metrics.recent_p99() == pytest.approx(0.01)
    # The cumulative histogram still remembers the slow epoch.
    assert metrics.latency.quantile(0.99) > 0.5


def test_recent_p99_expires_stale_entries():
    metrics = EndpointMetrics("m")
    metrics.record_request(2.0)
    assert metrics.recent_p99() == pytest.approx(2.0)
    # An idle endpoint must not stare at its overload-era p99 forever:
    # backdate the entry past the freshness horizon.
    recorded_at, latency, images = metrics.recent_latencies[0]
    metrics.recent_latencies[0] = (recorded_at - 60.0, latency, images)
    assert metrics.recent_p99() == 0.0


def test_recent_rates_not_capped_by_window_size():
    """A full sample buffer shrinks the effective window, not the rate."""
    import time

    metrics = EndpointMetrics("m", latency_budget_ms=500.0, recent_window=16)
    now = time.monotonic()
    # 16 retained samples spanning only 0.1s -- a ~160 req/s endpoint.
    # A fixed 10s denominator would report 1.6/s.
    for index in range(16):
        metrics.recent_latencies.append((now - 0.1 + index * 0.0066, 0.1, 1))
    rates = metrics.recent_rates(window_s=10.0)
    assert rates["requests_per_s"] > 100.0
    assert rates["goodput_images_per_s"] == rates["requests_per_s"]  # 1 image each
    # A sparse buffer (not full) keeps the honest wide window.
    sparse = EndpointMetrics("m", recent_window=16)
    sparse.recent_latencies.append((now - 1.0, 0.1, 4))
    sparse_rates = sparse.recent_rates(window_s=10.0)
    assert sparse_rates["requests_per_s"] == pytest.approx(0.1, rel=0.1)
    # Goodput is image-weighted: one 4-image request = 4 good images.
    assert sparse_rates["goodput_images_per_s"] == pytest.approx(0.4, rel=0.1)
