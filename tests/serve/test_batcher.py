"""Dynamic batcher: saturation, max-wait flush, idle behavior, lifecycle."""

import threading
import time

import pytest

from repro.serve.batcher import BatcherClosed, DynamicBatcher, QueueFull


class RecordingRunner:
    """Doubles each payload; records the batch splits it was handed."""

    def __init__(self, delay: float = 0.0):
        self.batches: list[list] = []
        self.delay = delay

    def __call__(self, payloads):
        self.batches.append(list(payloads))
        if self.delay:
            time.sleep(self.delay)
        return [payload * 2 for payload in payloads]


def test_saturated_queue_fills_batches_to_max_batch():
    runner = RecordingRunner()
    batcher = DynamicBatcher(runner, max_batch=4, max_wait=0.05, autostart=False)
    futures = [batcher.submit(i) for i in range(10)]
    batcher.start()
    assert [future.result(timeout=5) for future in futures] == [
        2 * i for i in range(10)
    ]
    batcher.close()
    assert [len(batch) for batch in runner.batches] == [4, 4, 2]
    # FIFO order is preserved across batches.
    assert [payload for batch in runner.batches for payload in batch] == list(
        range(10)
    )


def test_max_wait_flushes_partial_batch():
    runner = RecordingRunner()
    batcher = DynamicBatcher(runner, max_batch=64, max_wait=0.02)
    started = time.monotonic()
    future = batcher.submit(21)
    assert future.result(timeout=5) == 42
    elapsed = time.monotonic() - started
    batcher.close()
    assert runner.batches == [[21]]
    assert elapsed < 2.0  # flushed by the wait budget, not by batch fill


def test_empty_queue_idles_without_runner_calls():
    runner = RecordingRunner()
    batcher = DynamicBatcher(runner, max_batch=4, max_wait=0.001)
    batcher.submit(1).result(timeout=5)
    calls_after_first = len(runner.batches)
    time.sleep(0.1)  # idle: the worker blocks on the queue, no polling
    assert len(runner.batches) == calls_after_first
    assert batcher.pending_images == 0
    batcher.close()


def test_micro_batch_requests_are_atomic_and_carry_over():
    runner = RecordingRunner()
    batcher = DynamicBatcher(runner, max_batch=4, max_wait=0.05, autostart=False)
    sizes = [3, 2, 2, 1]
    futures = [batcher.submit(size, size=size) for size in sizes]
    batcher.start()
    for future, size in zip(futures, sizes):
        assert future.result(timeout=5) == 2 * size
    batcher.close()
    # 3 doesn't fit with 2 -> carry; 2+2 fits; 1 follows alone.
    assert runner.batches == [[3], [2, 2], [1]]


def test_oversized_request_runs_alone():
    runner = RecordingRunner()
    batcher = DynamicBatcher(runner, max_batch=4, max_wait=0.01)
    assert batcher.submit(9, size=9).result(timeout=5) == 18
    batcher.close()
    assert runner.batches == [[9]]


def test_runner_error_propagates_to_every_request_of_the_batch():
    def failing(payloads):
        raise ValueError("engine exploded")

    batcher = DynamicBatcher(failing, max_batch=4, max_wait=0.05, autostart=False)
    futures = [batcher.submit(i) for i in range(3)]
    batcher.start()
    for future in futures:
        with pytest.raises(ValueError, match="engine exploded"):
            future.result(timeout=5)
    batcher.close()


def test_close_drain_executes_queued_requests():
    runner = RecordingRunner()
    batcher = DynamicBatcher(runner, max_batch=2, max_wait=10.0, autostart=False)
    futures = [batcher.submit(i) for i in range(5)]
    batcher.start()
    batcher.close(drain=True)
    assert [future.result(timeout=5) for future in futures] == [
        0, 2, 4, 6, 8,
    ]
    assert batcher.pending_images == 0
    with pytest.raises(BatcherClosed):
        batcher.submit(1)


def test_close_without_drain_cancels_queued_requests():
    runner = RecordingRunner()
    batcher = DynamicBatcher(runner, max_batch=2, max_wait=10.0, autostart=False)
    futures = [batcher.submit(i) for i in range(4)]
    batcher.close(drain=False)
    assert all(future.cancelled() for future in futures)
    assert batcher.pending_images == 0


def test_max_queue_rejects_when_full():
    release = threading.Event()
    entered = threading.Event()

    def slow(payloads):
        entered.set()
        release.wait(5)
        return list(payloads)

    batcher = DynamicBatcher(slow, max_batch=1, max_wait=0.0, max_queue=2)
    first = batcher.submit(0)
    assert entered.wait(5)  # worker is busy with the first request...
    batcher.submit(1)  # ...so these two fill the queue budget
    batcher.submit(2)
    with pytest.raises(QueueFull):
        batcher.submit(3)
    release.set()
    first.result(timeout=5)
    batcher.close()


def test_start_after_close_refuses():
    batcher = DynamicBatcher(RecordingRunner(), max_batch=2, autostart=False)
    batcher.close()
    with pytest.raises(BatcherClosed):
        batcher.start()


def test_multiple_workers_execute_batches_concurrently():
    barrier = threading.Barrier(2, timeout=5)

    def runner(payloads):
        barrier.wait()  # requires two batches in flight at once
        return list(payloads)

    batcher = DynamicBatcher(runner, max_batch=1, max_wait=0.0, workers=2)
    futures = [batcher.submit(index) for index in range(2)]
    assert [future.result(timeout=5) for future in futures] == [0, 1]
    batcher.close()


def test_multi_worker_close_drains_everything():
    runner = RecordingRunner()
    batcher = DynamicBatcher(
        runner, max_batch=2, max_wait=10.0, workers=3, autostart=False
    )
    futures = [batcher.submit(index) for index in range(7)]
    batcher.start()
    batcher.close(drain=True)
    assert sorted(future.result(timeout=5) for future in futures) == [
        0, 2, 4, 6, 8, 10, 12,
    ]
    assert batcher.pending_images == 0


def test_on_batch_reports_sizes_and_waits():
    reports = []
    runner = RecordingRunner()
    batcher = DynamicBatcher(
        runner,
        max_batch=4,
        max_wait=0.05,
        on_batch=reports.append,
        autostart=False,
    )
    futures = [batcher.submit(i, size=2) for i in range(3)]
    batcher.start()
    for future in futures:
        future.result(timeout=5)
    batcher.close()
    assert [report.num_images for report in reports] == [4, 2]
    assert [report.num_requests for report in reports] == [2, 1]
    for report in reports:
        assert len(report.queue_waits) == report.num_requests
        assert all(wait >= 0.0 for wait in report.queue_waits)
        assert report.service_seconds >= 0.0


def test_edf_packs_least_slack_first_under_overflow():
    from repro.serve.deadline import Deadline

    runner = RecordingRunner()
    batcher = DynamicBatcher(
        runner, max_batch=4, max_wait=0.05, autostart=False
    )
    now = time.monotonic()
    # Arrival order: roomy deadline, mid deadline, none, nearest (a
    # micro-batch).  Together they gather past max_batch, so packing must
    # choose -- and EDF must choose the request closest to dying.
    batcher.submit("a", size=1, deadline=Deadline(now + 100.0))
    batcher.submit("b", size=1, deadline=Deadline(now + 10.0))
    batcher.submit("c", size=1)
    futures = batcher.submit("d", size=2, deadline=Deadline(now + 1.0))
    batcher.start()
    assert futures.result(timeout=5) == "dd"
    batcher.close()
    # Least slack packs first: d (1s), b (10s), a (100s) fill the image
    # budget; the deadline-less c carries to the next batch.
    assert runner.batches == [["d", "b", "a"], ["c"]]


def test_no_deadline_traffic_is_bit_identical_with_edf_off():
    sizes = [3, 2, 2, 1, 4, 1, 1, 2]
    splits = {}
    for edf in (True, False):
        runner = RecordingRunner()
        batcher = DynamicBatcher(
            runner, max_batch=4, max_wait=0.05, autostart=False, edf=edf
        )
        futures = [
            batcher.submit(index, size=size)
            for index, size in enumerate(sizes)
        ]
        batcher.start()
        for future, _ in zip(futures, sizes):
            future.result(timeout=5)
        batcher.close()
        splits[edf] = runner.batches
    # EDF's sort is stable and every key ties at infinity: arrival-order
    # packing, batch for batch.
    assert splits[True] == splits[False]
    assert [payload for batch in splits[True] for payload in batch] == list(
        range(len(sizes))
    )
