"""Model specs, registry resolution, and admission control (backpressure)."""

import pytest

from repro.serve.registry import (
    AdmissionController,
    ModelSpec,
    ServeRegistry,
    default_registry,
)


def test_spec_defaults_resolve_model_and_policy():
    spec = ModelSpec(name="resnet18")
    assert spec.zoo_model == "resnet18"
    from repro.core.policies import default_policy_for

    assert spec.resolved_policy() == default_policy_for("resnet18").name
    aliased = ModelSpec(name="resnet18-turbo", model="resnet18", policy="S+A")
    assert aliased.zoo_model == "resnet18"
    assert aliased.resolved_policy() == "S+A"
    description = aliased.describe()
    assert description["model"] == "resnet18"
    assert description["policy"] == "S+A"


def test_registry_rejects_unknown_zoo_model():
    registry = ServeRegistry()
    with pytest.raises(KeyError, match="unknown zoo model"):
        registry.register(ModelSpec(name="not-a-model"))


def test_registry_get_and_describe():
    registry = ServeRegistry()
    registry.register(ModelSpec(name="resnet18", max_pending=4))
    assert registry.get("resnet18").name == "resnet18"
    with pytest.raises(KeyError, match="unknown endpoint"):
        registry.get("alexnet")
    entries = registry.describe()
    assert len(entries) == 1
    assert entries[0]["in_flight"] == 0
    assert entries[0]["pressure"] == 0.0


def test_default_registry_applies_overrides():
    registry = default_registry(models=("resnet18", "alexnet"), threads=2,
                                max_batch=16)
    assert set(registry.names()) == {"resnet18", "alexnet"}
    for name in registry.names():
        assert registry.get(name).threads == 2
        assert registry.get(name).max_batch == 16


def test_admission_controller_sheds_beyond_capacity():
    admission = AdmissionController(capacity=4)
    assert admission.try_admit(3)
    assert admission.pressure == pytest.approx(0.75)
    assert not admission.try_admit(2)  # 3 + 2 > 4: backpressure
    assert admission.try_admit(1)
    assert admission.pressure == pytest.approx(1.0)
    assert not admission.try_admit(1)
    admission.release(4)
    assert admission.in_flight == 0
    assert admission.try_admit(2)
    admission.release(10)  # over-release clamps at zero
    assert admission.in_flight == 0
