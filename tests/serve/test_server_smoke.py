"""Socket-free serving end-to-end smoke (tier-1).

Exercises the full request path -- registry, admission control, engine
pool, dynamic batcher, routing, QoS endpoints -- by driving the server's
route handler directly, with no listening socket: this is the piece of the
serving stack that must stay green in the fast tier-1 profile.  The HTTP
front-end itself (real sockets, keep-alive, shutdown, sharding) stays in
the opt-in ``serve`` lane.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serve.registry import ModelSpec, ServeRegistry
from repro.serve.server import NBSMTServer, _HttpError


@pytest.fixture
def smoke_server(tiny_harness, tiny_provider):
    from repro.serve.pool import EnginePool

    registry = ServeRegistry()
    registry.register(
        ModelSpec(
            name="tinynet",
            model="resnet18",  # registry-valid alias; the provider ignores it
            threads=4,
            policy="S+A",
            ladder_rungs=3,
            slow_threads=2,
            max_batch=8,
            max_wait_ms=2.0,
            max_pending=32,
            latency_budget_ms=250.0,
        )
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    server = NBSMTServer(registry, pool=pool)
    server._build_endpoints()
    yield server
    for batcher in server.batchers.values():
        batcher.close(drain=False)
    pool.close()


def route(server, method, path, body=b""):
    return asyncio.run(server._route(method, path, body))


def test_smoke_health_models_and_metrics(smoke_server, tiny_harness):
    status, payload = route(smoke_server, "GET", "/healthz")
    assert status == 200 and payload["endpoints"] == ["tinynet"]

    status, payload = route(smoke_server, "GET", "/v1/models")
    assert status == 200
    (model,) = payload["models"]
    assert model["name"] == "tinynet"
    assert model["adaptive"] is True
    assert model["ladder_rungs"] == 3

    status, payload = route(smoke_server, "GET", "/v1/metrics")
    assert status == 200
    endpoint = payload["endpoints"]["tinynet"]
    assert endpoint["requests"] == 0
    assert endpoint["operating_point"]["level"] == 0


def test_smoke_predict_roundtrip_matches_direct_engine(
    smoke_server, tiny_harness, direct_reference
):
    images = tiny_harness.eval_images[:3]
    body = json.dumps({"inputs": images.tolist()}).encode()
    status, payload = route(
        smoke_server, "POST", "/v1/models/tinynet:predict", body
    )
    assert status == 200
    assert payload["batch"] == 3
    assert payload["operating_point"] == 0
    top = smoke_server.pool.ladder("tinynet").top
    expected = direct_reference(tiny_harness, images, threads=top.threads)[0]
    assert np.array_equal(np.asarray(payload["outputs"], dtype=np.float32),
                          expected.astype(np.float32))
    assert payload["argmax"] == expected.argmax(axis=1).tolist()

    metrics = route(smoke_server, "GET", "/v1/metrics")[1]
    endpoint = metrics["endpoints"]["tinynet"]
    assert endpoint["requests"] == 1 and endpoint["images"] == 3
    assert endpoint["points_served_images"] == {"0": 3}
    assert endpoint["smt_layer_stats"]


def test_smoke_errors_and_admission(smoke_server, tiny_harness):
    with pytest.raises(_HttpError) as excinfo:
        route(smoke_server, "GET", "/v1/nope")
    assert excinfo.value.status == 404

    with pytest.raises(_HttpError) as excinfo:
        route(smoke_server, "POST", "/v1/models/ghost:predict", b"{}")
    assert excinfo.value.status == 404

    with pytest.raises(_HttpError) as excinfo:
        route(smoke_server, "POST", "/v1/models/tinynet:predict", b"{]")
    assert excinfo.value.status == 400

    wrong = np.zeros((1, 3, 4, 4), dtype=np.float32)
    body = json.dumps({"inputs": wrong.tolist()}).encode()
    with pytest.raises(_HttpError) as excinfo:
        route(smoke_server, "POST", "/v1/models/tinynet:predict", body)
    assert excinfo.value.status == 400
    assert "expects images of shape" in excinfo.value.message

    admission = smoke_server.registry.admission("tinynet")
    assert admission.try_admit(32)
    image = tiny_harness.eval_images[:1]
    body = json.dumps({"inputs": image.tolist()}).encode()
    with pytest.raises(_HttpError) as excinfo:
        route(smoke_server, "POST", "/v1/models/tinynet:predict", body)
    assert excinfo.value.status == 429
    admission.release(32)
    metrics = route(smoke_server, "GET", "/v1/metrics")[1]
    assert metrics["endpoints"]["tinynet"]["rejected_requests"] == 1


def test_smoke_operating_point_inspect_and_override(smoke_server, tiny_harness):
    status, payload = route(
        smoke_server, "GET", "/v1/models/tinynet/operating_point"
    )
    assert status == 200
    assert payload["level"] == 0
    assert payload["num_rungs"] == 3
    assert len(payload["ladder"]) == 3
    assert payload["controller"]["num_levels"] == 3

    # Operator override: force the fastest rung and hold it.
    status, payload = route(
        smoke_server,
        "POST",
        "/v1/models/tinynet/operating_point",
        json.dumps({"level": 2, "hold": True}).encode(),
    )
    assert status == 200
    assert payload["level"] == 2
    assert payload["controller"]["held"] is True
    assert smoke_server.pool.current_level("tinynet") == 2

    # Requests now report the forced rung and execute its assignment.
    images = tiny_harness.eval_images[:2]
    body = json.dumps({"inputs": images.tolist()}).encode()
    status, predict = route(
        smoke_server, "POST", "/v1/models/tinynet:predict", body
    )
    assert status == 200 and predict["operating_point"] == 2

    # Resume automatic control.
    status, payload = route(
        smoke_server,
        "POST",
        "/v1/models/tinynet/operating_point",
        json.dumps({"hold": False}).encode(),
    )
    assert status == 200 and payload["controller"]["held"] is False

    # {"hold": true} alone pins the *current* rung (incident freeze).
    status, payload = route(
        smoke_server,
        "POST",
        "/v1/models/tinynet/operating_point",
        json.dumps({"hold": True}).encode(),
    )
    assert status == 200
    assert payload["level"] == 2 and payload["controller"]["held"] is True
    route(
        smoke_server,
        "POST",
        "/v1/models/tinynet/operating_point",
        json.dumps({"level": 0, "hold": False}).encode(),
    )

    # A non-integer level or a non-object body is a client error, not a 500.
    for bad_body in (json.dumps({"level": [1]}), "2", "null", "[1]"):
        with pytest.raises(_HttpError) as excinfo:
            route(
                smoke_server,
                "POST",
                "/v1/models/tinynet/operating_point",
                bad_body.encode(),
            )
        assert excinfo.value.status == 400

    with pytest.raises(_HttpError) as excinfo:
        route(
            smoke_server,
            "POST",
            "/v1/models/tinynet/operating_point",
            json.dumps({"level": 9}).encode(),
        )
    assert excinfo.value.status == 400

    with pytest.raises(_HttpError) as excinfo:
        route(smoke_server, "GET", "/v1/models/ghost/operating_point")
    assert excinfo.value.status == 404
