"""Stateful property test: the dynamic batcher's accounting is exact.

A ``RuleBasedStateMachine`` drives a *real* started ``DynamicBatcher``
(worker threads, real queue, real timing) through arbitrary interleavings
of submits (including oversized micro-batches), idle waits, and a final
drain-on-close, with a recording runner.  The invariants checked at
teardown are timing-independent -- however the worker happened to split
batches:

* every submitted request executed in **exactly one** batch (atomic: a
  request is never split, never duplicated, never lost);
* every batch respects ``max_batch`` unless it is a single oversized
  request (which must run alone);
* every future resolved exactly once, with its own request's result;
* after ``close(drain=True)`` nothing is left pending.
"""

from __future__ import annotations

import threading

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.serve.batcher import BatcherClosed, DynamicBatcher
from tests.strategies import STATE_MACHINE_SETTINGS, request_sizes

MAX_BATCH = 8


class BatcherMachine(RuleBasedStateMachine):
    @initialize(max_wait_ms=st.sampled_from([0.0, 1.0, 5.0]),
                workers=st.integers(min_value=1, max_value=3))
    def setup(self, max_wait_ms, workers):
        self.batches: list[list[tuple[int, int]]] = []
        self.batches_lock = threading.Lock()

        def runner(payloads):
            with self.batches_lock:
                self.batches.append(list(payloads))
            return [("result", payload[0]) for payload in payloads]

        self.batcher = DynamicBatcher(
            runner,
            max_batch=MAX_BATCH,
            max_wait=max_wait_ms / 1000.0,
            workers=workers,
            name="stateful",
        )
        self.next_id = 0
        self.submitted: dict[int, tuple[int, object]] = {}  # id -> (size, fut)

    @rule(size=request_sizes(max_size=MAX_BATCH + 3))
    def submit(self, size):
        request_id = self.next_id
        self.next_id += 1
        future = self.batcher.submit((request_id, size), size=size)
        self.submitted[request_id] = (size, future)

    @rule()
    def let_workers_run(self):
        # A tiny real-time window in which workers may assemble batches at
        # whatever split the clock produces -- the invariants must hold
        # for all of them.
        import time

        time.sleep(0.002)

    def teardown(self):
        if not hasattr(self, "batcher"):
            return
        self.batcher.close(drain=True, timeout=30.0)
        try:
            self.batcher.submit((-1, 1), size=1)
        except BatcherClosed:
            pass
        else:  # pragma: no cover - contract violation
            raise AssertionError("submit accepted after close")
        assert self.batcher.pending_images == 0

        executed: dict[int, int] = {}
        for batch in self.batches:
            images = sum(size for _id, size in batch)
            assert len(batch) == 1 or images <= MAX_BATCH, (
                f"multi-request batch of {images} images exceeds "
                f"max_batch={MAX_BATCH}: {batch}"
            )
            for request_id, _size in batch:
                executed[request_id] = executed.get(request_id, 0) + 1

        for request_id, (size, future) in self.submitted.items():
            assert executed.get(request_id) == 1, (
                f"request {request_id} executed "
                f"{executed.get(request_id, 0)} times"
            )
            assert future.done(), f"request {request_id} future unresolved"
            assert future.result(timeout=0) == ("result", request_id)
        assert set(executed) == set(self.submitted), (
            "runner saw requests that were never submitted"
        )


TestBatcherMachine = BatcherMachine.TestCase
TestBatcherMachine.settings = STATE_MACHINE_SETTINGS
