"""End-to-end tracing through the HTTP front door.

One real predict over a loopback socket must yield the full span
waterfall -- request, admission, queue-wait, batch, engine-compute with
per-layer children -- with the trace id honored from the inbound
``X-Trace-Id`` header, echoed on the response, queryable over
``/v1/traces`` and persisted to the ring file for ``repro.cli trace``.

The servers here are tiny and the requests few, so the tests stay in
the fast default lane (unlike the load-generating ``serve`` suite).
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import os
import threading
import time
import urllib.request

import pytest

from repro.eval.parallel import fork_available
from repro.serve.pool import EnginePool
from repro.serve.registry import ModelSpec, ServeRegistry
from repro.serve.server import NBSMTServer
from repro.telemetry.tracing import TraceStore, build_tree, group_spans

pytestmark = pytest.mark.trace


def _spec(**overrides):
    spec = dict(
        name="tinynet",
        model="resnet18",
        threads=2,
        policy="S+A",
        max_batch=8,
        max_wait_ms=2.0,
        max_pending=32,
        latency_budget_ms=250.0,
    )
    spec.update(overrides)
    return ModelSpec(**spec)


@contextlib.contextmanager
def _running_server(tiny_provider, tmp_path, *, fork_workers=0, **kwargs):
    registry = ServeRegistry()
    registry.register(_spec())
    pool = EnginePool(
        registry, provider=tiny_provider, warm=True,
        fork_workers=fork_workers,
    )
    server = NBSMTServer(
        registry, pool=pool, port=0,
        trace_dir=str(tmp_path / "traces"), **kwargs,
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    def on_loop(coroutine, timeout=300):
        return asyncio.run_coroutine_threadsafe(coroutine, loop).result(
            timeout
        )

    try:
        on_loop(server.start())
        yield server
    finally:
        on_loop(server.stop())
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        pool.close()


def _predict(server, image, headers=None):
    connection = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=300
    )
    try:
        connection.request(
            "POST", "/v1/models/tinynet:predict",
            body=json.dumps({"inputs": image.tolist()}),
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload, response.headers
    finally:
        connection.close()


def _wait_for_spans(server, trace_id, minimum=5, timeout=10.0):
    deadline = time.monotonic() + timeout
    spans = []
    while time.monotonic() < deadline:
        spans = server.relay.trace_spans(trace_id)
        if len(spans) >= minimum:
            return spans
        time.sleep(0.05)
    return spans


REQUIRED_SPANS = ("request", "admission", "queue_wait", "batch",
                  "engine_compute")


def test_one_http_predict_yields_the_full_waterfall(
    tiny_harness, tiny_provider, tmp_path
):
    image = tiny_harness.eval_images[0]
    with _running_server(
        tiny_provider, tmp_path, trace_sample=1.0
    ) as server:
        status, payload, headers = _predict(
            server, image, headers={"X-Trace-Id": "FEEDFACECAFEF00D"}
        )
        assert status == 200
        # Inbound id honored (values are lower-cased on the wire) and
        # echoed on both the response header and the JSON body.
        assert headers.get("X-Trace-Id") == "feedfacecafef00d"
        assert payload["trace_id"] == "feedfacecafef00d"

        spans = _wait_for_spans(server, "feedfacecafef00d")
        names = [s["name"] for s in spans]
        for required in REQUIRED_SPANS:
            assert required in names, f"missing {required} in {names}"
        assert any(n.startswith("layer:") for n in names)
        assert len(spans) >= 5

        # Well-formed: one root, every parent resolves, engine nests
        # under the batch span, layers under the engine span.
        by_id = {s["span_id"]: s for s in spans}
        roots = [s for s in spans if not s["parent_id"]]
        assert [r["name"] for r in roots] == ["request"]
        for span in spans:
            if span["parent_id"]:
                assert span["parent_id"] in by_id
        engine = next(s for s in spans if s["name"] == "engine_compute")
        assert by_id[engine["parent_id"]]["name"] == "batch"
        layer = next(s for s in spans if s["name"].startswith("layer:"))
        assert layer["parent_id"] == engine["span_id"]
        assert not any(n.get("orphan") for n in spans)

        # The dashboard routes serve the same trace.
        base = f"http://127.0.0.1:{server.port}"
        with urllib.request.urlopen(f"{base}/v1/traces") as reply:
            listing = json.load(reply)["traces"]
        assert any(t["trace_id"] == "feedfacecafef00d" for t in listing)
        with urllib.request.urlopen(
            f"{base}/v1/traces/feedfacecafef00d"
        ) as reply:
            assert len(json.load(reply)["spans"]) == len(spans)

    # The ring file outlives the server: offline inspection sees the
    # same trace (this is what `repro.cli trace --dir` replays).
    store = TraceStore(str(tmp_path / "traces"))
    traces = store.load_traces(compact=False)
    store.close()
    assert "feedfacecafef00d" in traces
    persisted = [s["name"] for s in traces["feedfacecafef00d"]]
    for required in REQUIRED_SPANS:
        assert required in persisted


def test_unsampled_requests_stay_silent_until_interesting(
    tiny_harness, tiny_provider, tmp_path
):
    image = tiny_harness.eval_images[0]
    with _running_server(
        tiny_provider, tmp_path, trace_sample=0.0
    ) as server:
        # A calm request at sampling 0.0: id still minted and echoed,
        # but its spans are discarded (no publish).
        status, payload, headers = _predict(server, image)
        assert status == 200
        calm_id = headers.get("X-Trace-Id")
        assert calm_id and payload["trace_id"] == calm_id
        time.sleep(0.2)
        assert server.relay.trace_spans(calm_id) == []
        assert server.tracer.published_spans == 0

        # An erroring request is an exemplar: kept despite the 0.0 rate.
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        try:
            connection.request(
                "POST", "/v1/models/nope:predict",
                body=json.dumps({"inputs": image.tolist()}),
                headers={"Content-Type": "application/json",
                         "X-Trace-Id": "0badc0de0badc0de"},
            )
            response = connection.getresponse()
            response.read()
            assert response.status == 404
            assert response.headers.get("X-Trace-Id") == "0badc0de0badc0de"
        finally:
            connection.close()
        spans = _wait_for_spans(server, "0badc0de0badc0de", minimum=1)
        assert spans, "error trace was not retained as an exemplar"
        assert spans[0]["name"] == "request"
        assert spans[0]["exemplar"] == "error"


@pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)
def test_trace_crosses_the_fork_boundary(
    tiny_harness, tiny_provider, tmp_path
):
    image = tiny_harness.eval_images[0]
    with _running_server(
        tiny_provider, tmp_path, trace_sample=1.0, fork_workers=1
    ) as server:
        status, payload, _headers = _predict(server, image)
        assert status == 200
        spans = _wait_for_spans(server, payload["trace_id"])
        engine = next(
            (s for s in spans if s["name"] == "engine_compute"), None
        )
        assert engine is not None
        # The engine span was measured inside the forked replica: its
        # pid is the worker's, its parent the batch span in this process.
        assert engine["pid"] not in (None, os.getpid())
        tree = build_tree(group_spans(spans)[payload["trace_id"]])
        assert len(tree) == 1
        assert any(n.startswith("layer:")
                   for n in (s["name"] for s in spans))
