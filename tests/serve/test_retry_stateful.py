"""Stateful model of one logical request's retry lifecycle.

A Hypothesis state machine walks a single request through an arbitrary
interleaving of sheds (429 with optional ``Retry-After`` advice),
transport errors, and eventual success, on a virtual clock that advances
exactly by the computed backoff.  The invariants are the request-lifeline
contract from the client's side:

* **no retry after the deadline** -- every retry the policy approves
  lands strictly before the request's deadline would pass;
* **backoff is monotone** -- the un-jittered schedule never shrinks
  between attempts, and never exceeds the cap;
* **the idempotency key is stable** -- every attempt of one logical
  request carries the same key;
* **the attempt budget holds** -- at most ``max_retries`` retries are
  ever sent.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from tests.strategies.lifelines import (
    deadline_budgets_ms,
    retry_after_advice_ms,
    retry_policies,
)
from tests.strategies.settings import STATE_MACHINE_SETTINGS


class RetryLifecycleMachine(RuleBasedStateMachine):
    """One logical request, modelled the way ``run_load``'s worker loop
    plays it: compute the delay, ask ``should_retry``, sleep, resend."""

    @initialize(
        policy=retry_policies(),
        budget_ms=deadline_budgets_ms(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def start_request(self, policy, budget_ms, seed):
        self.policy = policy
        self.rng = random.Random(seed)
        self.now_ms = 0.0
        self.deadline_at_ms = budget_ms  # virtual clock starts at zero
        self.attempt = 0
        self.retries_sent = 0
        self.prev_base_ms = None
        self.key = f"idem-{seed:x}"  # chosen once, before the first send
        self.keys_sent = [self._send()]
        self.terminal = False

    def _send(self) -> str:
        """The attempt goes on the wire carrying the request's key."""
        return self.key

    def _remaining_ms(self) -> float | None:
        if self.deadline_at_ms is None:
            return None
        return self.deadline_at_ms - self.now_ms

    def _handle_failure(self, advice_ms=None) -> None:
        base = self.policy.base_delay_ms(self.attempt)
        if self.prev_base_ms is not None:
            assert base >= self.prev_base_ms  # backoff never shrinks
        assert base <= self.policy.max_backoff_ms
        self.prev_base_ms = base

        delay = self.policy.delay_ms(self.attempt, self.rng, advice_ms)
        if advice_ms is not None:
            assert delay >= advice_ms  # never retry sooner than asked
        remaining = self._remaining_ms()
        if self.policy.should_retry(self.attempt, delay, remaining):
            assert self.attempt < self.policy.max_retries
            if self.deadline_at_ms is not None:
                # The retry lands strictly before the deadline passes.
                assert self.now_ms + delay < self.deadline_at_ms
            self.now_ms += delay  # time.sleep(delay)
            self.attempt += 1
            self.retries_sent += 1
            self.keys_sent.append(self._send())
        else:
            self.terminal = True  # counted as shed/error, never resent

    @precondition(lambda self: not self.terminal)
    @rule(advice_ms=retry_after_advice_ms())
    def server_sheds(self, advice_ms):
        self._handle_failure(advice_ms)

    @precondition(lambda self: not self.terminal)
    @rule()
    def transport_error(self):
        # Connection reset: no response, so no Retry-After advice.
        self._handle_failure(None)

    @precondition(lambda self: not self.terminal)
    @rule()
    def server_succeeds(self):
        self.terminal = True

    @rule(elapsed_ms=st.floats(min_value=0.0, max_value=500.0))
    def time_passes(self, elapsed_ms):
        # Network and queueing time burn the deadline budget too.
        self.now_ms += elapsed_ms

    @precondition(lambda self: self.terminal)
    @rule(
        budget_ms=deadline_budgets_ms(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def next_logical_request(self, budget_ms, seed):
        # A fresh request gets a fresh key and a fresh budget; the
        # per-request invariants start over.
        self.deadline_at_ms = (
            self.now_ms + budget_ms if budget_ms is not None else None
        )
        self.attempt = 0
        self.retries_sent = 0
        self.prev_base_ms = None
        self.key = f"idem-{seed:x}-{len(self.keys_sent)}"
        self.keys_sent = [self._send()]
        self.terminal = False

    @invariant()
    def idempotency_key_is_stable(self):
        assert len(set(self.keys_sent)) == 1

    @invariant()
    def attempt_budget_holds(self):
        assert self.retries_sent <= self.policy.max_retries
        assert len(self.keys_sent) == 1 + self.retries_sent


TestRetryLifecycle = RetryLifecycleMachine.TestCase
TestRetryLifecycle.settings = STATE_MACHINE_SETTINGS
