"""Front-end sharding: SO_REUSEPORT sockets, metrics spool, sharded e2e."""

import http.client
import json
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.eval.parallel import fork_available
from repro.serve import sharding

needs_reuseport = pytest.mark.skipif(
    not sharding.reuseport_supported(), reason="SO_REUSEPORT unavailable"
)


@needs_reuseport
def test_create_shard_sockets_share_one_port():
    sockets = sharding.create_shard_sockets("127.0.0.1", 0, 3)
    try:
        ports = {sock.getsockname()[1] for sock in sockets}
        assert len(sockets) == 3
        assert len(ports) == 1  # all shards joined the first bind's port
    finally:
        for sock in sockets:
            sock.close()


def test_metrics_exchange_publish_and_gather(tmp_path):
    exchanges = [
        sharding.ShardMetricsExchange(str(tmp_path), index, 3)
        for index in range(3)
    ]
    for index, exchange in enumerate(exchanges):
        exchange.publish({"endpoints": {"m": {"requests": index + 1}}})
    payloads, sources = exchanges[0].gather_peers()
    assert [payload["endpoints"]["m"]["requests"] for payload in payloads] == [2, 3]
    assert [source["shard"] for source in sources] == [1, 2]
    assert not any(source["stale"] for source in sources)
    # Republishing replaces atomically; a missing peer is simply skipped.
    exchanges[1].publish({"endpoints": {"m": {"requests": 10}}})
    os.unlink(tmp_path / "shard-2.json")
    payloads, sources = exchanges[0].gather_peers()
    assert len(payloads) == 1
    assert payloads[0]["endpoints"]["m"]["requests"] == 10


def test_stale_spool_of_dead_shard_is_reaped(tmp_path):
    """A crashed shard's counters must not be merged (or kept) forever."""
    reader = sharding.ShardMetricsExchange(str(tmp_path), 0, 3)
    # Shard 1 "crashed": stale timestamp, dead pid.
    with open(tmp_path / "shard-1.json", "w", encoding="utf-8") as handle:
        json.dump(
            {"shard": 1, "pid": 0,
             "published_at": time.time() - 2 * sharding.STALE_AFTER_S,
             "payload": {"endpoints": {"m": {"requests": 999}}}},
            handle,
        )
    # Shard 2 is merely slow (stale) but its process is alive: kept.
    with open(tmp_path / "shard-2.json", "w", encoding="utf-8") as handle:
        json.dump(
            {"shard": 2, "pid": os.getpid(),
             "published_at": time.time() - 2 * sharding.STALE_AFTER_S,
             "payload": {"endpoints": {"m": {"requests": 5}}}},
            handle,
        )
    payloads, sources = reader.gather_peers()
    assert [payload["endpoints"]["m"]["requests"] for payload in payloads] == [5]
    by_shard = {source["shard"]: source for source in sources}
    assert by_shard[1]["reaped"] and by_shard[1]["stale"]
    assert not by_shard[2]["reaped"] and by_shard[2]["stale"]
    # The dead shard's spool file is gone from disk.
    assert not (tmp_path / "shard-1.json").exists()
    assert (tmp_path / "shard-2.json").exists()
    # Fresh documents (just published, live pid) merge as before.
    writer = sharding.ShardMetricsExchange(str(tmp_path), 1, 3)
    writer.publish({"endpoints": {"m": {"requests": 7}}})
    payloads, sources = reader.gather_peers()
    assert len(payloads) == 2


@pytest.mark.serve
@needs_reuseport
@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_sharded_front_end_serves_and_merges_metrics(tmp_path):
    """Two shards on one port: traffic balances, /v1/metrics merges exactly."""
    from repro.serve.client import predict_once
    from repro.serve.registry import default_registry

    registry = default_registry(
        models=["resnet18"], threads=2, max_batch=8, max_wait_ms=2.0
    )
    shards = 2
    sockets = sharding.create_shard_sockets("127.0.0.1", 0, shards)
    port = sockets[0].getsockname()[1]
    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(
            target=sharding._shard_main,
            args=(index, sockets, registry, shards, str(tmp_path),
                  {"scale": "fast", "shard_publish_s": 0.2}, False),
            daemon=True,
        )
        for index in range(shards)
    ]
    for process in processes:
        process.start()
    for sock in sockets:
        sock.close()

    def fetch(path):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, json.loads(response.read().decode())
        finally:
            connection.close()

    try:
        # Both shards inherit listening sockets, so even warm-up-time
        # connections are served once the loops come up.
        deadline = time.monotonic() + 300
        while True:
            try:
                status, _payload = fetch("/healthz")
                if status == 200:
                    break
            except OSError:
                pass
            assert time.monotonic() < deadline, "shards never became healthy"
            time.sleep(0.5)

        from repro.models.zoo import load_dataset

        images = load_dataset(fast=True).val_images[:4]
        total = 12
        statuses = []
        for index in range(total):
            # Fresh connections: SO_REUSEPORT balances per connection.
            connection = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=300
            )
            try:
                status, payload = predict_once(
                    connection, "resnet18",
                    images[index % images.shape[0]],
                )
            finally:
                connection.close()
            statuses.append(status)
            assert status == 200
            assert payload["operating_point"] == 0

        time.sleep(1.0)  # let both shards publish their final counters
        status, merged = fetch("/v1/metrics")
        assert status == 200
        endpoint = merged["endpoints"]["resnet18"]
        assert endpoint["requests"] == total
        assert endpoint["images"] == total
        assert merged["shards"]["count"] == shards
        assert merged["shards"]["merged"] == shards
    finally:
        for process in processes:
            if process.is_alive():
                os.kill(process.pid, signal.SIGTERM)
        for process in processes:
            process.join(timeout=60)
        for process in processes:
            if process.is_alive():  # pragma: no cover - stuck shard
                process.kill()
                process.join()


@pytest.mark.serve
@needs_reuseport
@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_coordinated_shards_converge_and_stream_events(tmp_path):
    """Force one shard's rung: the peer follows the quorum, and any
    shard's ``/v1/events`` streams both shards' transitions (spool merge)."""
    from repro.serve.registry import default_registry

    registry = default_registry(
        models=["resnet18"], threads=4, slow_threads=1, ladder_rungs=3,
        max_batch=8, max_wait_ms=2.0,
    )
    shards = 2
    sockets = sharding.create_shard_sockets("127.0.0.1", 0, shards)
    port = sockets[0].getsockname()[1]
    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(
            target=sharding._shard_main,
            args=(index, sockets, registry, shards, str(tmp_path),
                  {"scale": "fast", "shard_publish_s": 0.2,
                   "qos_tick_s": 0.1}, True),
            daemon=True,
        )
        for index in range(shards)
    ]
    for process in processes:
        process.start()
    for sock in sockets:
        sock.close()

    def request(method, path, body=None):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
        try:
            connection.request(
                method, path,
                body=json.dumps(body).encode() if body is not None else None,
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read().decode())
        finally:
            connection.close()

    try:
        deadline = time.monotonic() + 300
        while True:
            try:
                status, _ = request("GET", "/healthz")
                if status == 200:
                    break
            except OSError:
                pass
            assert time.monotonic() < deadline, "shards never became healthy"
            time.sleep(0.5)
        # Dashboard page served from whichever shard answers.
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
        try:
            connection.request("GET", "/dashboard")
            response = connection.getresponse()
            assert response.status == 200
            assert b"repro telemetry" in response.read()
        finally:
            connection.close()

        # Force rung 2 on whichever shard answers (no hold: it keeps its
        # vote, so the quorum -- and therefore the peer -- must follow).
        status, payload = request(
            "POST", "/v1/models/resnet18/operating_point", {"level": 2}
        )
        assert status == 200 and payload["level"] == 2

        # Any shard's event stream carries BOTH shards' rung transitions
        # to rung 2: the forced shard's own and the peer's quorum-follow.
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
        try:
            connection.request("GET", "/v1/events")
            response = connection.getresponse()
            assert response.getheader("Content-Type") == "text/event-stream"
            shards_at_two = set()
            event_type = None
            stream_deadline = time.monotonic() + 120
            while shards_at_two != {0, 1}:
                assert time.monotonic() < stream_deadline, (
                    f"only shards {shards_at_two} reached rung 2"
                )
                line = response.readline().decode("utf-8").strip()
                if line.startswith("event: "):
                    event_type = line[len("event: "):]
                elif line.startswith("data: ") and event_type in (
                    "rung_transition", "endpoint_health",
                ):
                    event = json.loads(line[len("data: "):])
                    shard = event["source"].get("shard")
                    level = event["data"].get("to_level",
                                               event["data"].get("level"))
                    if level == 2 and shard is not None:
                        shards_at_two.add(shard)
        finally:
            connection.close()
    finally:
        for process in processes:
            if process.is_alive():
                os.kill(process.pid, signal.SIGTERM)
        for process in processes:
            process.join(timeout=60)
        for process in processes:
            if process.is_alive():  # pragma: no cover - stuck shard
                process.kill()
                process.join()
