"""Front-end sharding: SO_REUSEPORT sockets, metrics spool, sharded e2e."""

import http.client
import json
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.eval.parallel import fork_available
from repro.serve import sharding

needs_reuseport = pytest.mark.skipif(
    not sharding.reuseport_supported(), reason="SO_REUSEPORT unavailable"
)


@needs_reuseport
def test_create_shard_sockets_share_one_port():
    sockets = sharding.create_shard_sockets("127.0.0.1", 0, 3)
    try:
        ports = {sock.getsockname()[1] for sock in sockets}
        assert len(sockets) == 3
        assert len(ports) == 1  # all shards joined the first bind's port
    finally:
        for sock in sockets:
            sock.close()


def test_metrics_exchange_publish_and_gather(tmp_path):
    exchanges = [
        sharding.ShardMetricsExchange(str(tmp_path), index, 3)
        for index in range(3)
    ]
    for index, exchange in enumerate(exchanges):
        exchange.publish({"endpoints": {"m": {"requests": index + 1}}})
    payloads, sources = exchanges[0].gather_peers()
    assert [payload["endpoints"]["m"]["requests"] for payload in payloads] == [2, 3]
    assert [source["shard"] for source in sources] == [1, 2]
    assert not any(source["stale"] for source in sources)
    # Republishing replaces atomically; a missing peer is simply skipped.
    exchanges[1].publish({"endpoints": {"m": {"requests": 10}}})
    os.unlink(tmp_path / "shard-2.json")
    payloads, sources = exchanges[0].gather_peers()
    assert len(payloads) == 1
    assert payloads[0]["endpoints"]["m"]["requests"] == 10


@pytest.mark.serve
@needs_reuseport
@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_sharded_front_end_serves_and_merges_metrics(tmp_path):
    """Two shards on one port: traffic balances, /v1/metrics merges exactly."""
    from repro.serve.client import predict_once
    from repro.serve.registry import default_registry

    registry = default_registry(
        models=["resnet18"], threads=2, max_batch=8, max_wait_ms=2.0
    )
    shards = 2
    sockets = sharding.create_shard_sockets("127.0.0.1", 0, shards)
    port = sockets[0].getsockname()[1]
    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(
            target=sharding._shard_main,
            args=(index, sock, registry, shards, str(tmp_path),
                  {"scale": "fast", "shard_publish_s": 0.2}),
            daemon=True,
        )
        for index, sock in enumerate(sockets)
    ]
    for process in processes:
        process.start()
    for sock in sockets:
        sock.close()

    def fetch(path):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, json.loads(response.read().decode())
        finally:
            connection.close()

    try:
        # Both shards inherit listening sockets, so even warm-up-time
        # connections are served once the loops come up.
        deadline = time.monotonic() + 300
        while True:
            try:
                status, _payload = fetch("/healthz")
                if status == 200:
                    break
            except OSError:
                pass
            assert time.monotonic() < deadline, "shards never became healthy"
            time.sleep(0.5)

        from repro.models.zoo import load_dataset

        images = load_dataset(fast=True).val_images[:4]
        total = 12
        statuses = []
        for index in range(total):
            # Fresh connections: SO_REUSEPORT balances per connection.
            connection = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=300
            )
            try:
                status, payload = predict_once(
                    connection, "resnet18",
                    images[index % images.shape[0]],
                )
            finally:
                connection.close()
            statuses.append(status)
            assert status == 200
            assert payload["operating_point"] == 0

        time.sleep(1.0)  # let both shards publish their final counters
        status, merged = fetch("/v1/metrics")
        assert status == 200
        endpoint = merged["endpoints"]["resnet18"]
        assert endpoint["requests"] == total
        assert endpoint["images"] == total
        assert merged["shards"]["count"] == shards
        assert merged["shards"]["merged"] == shards
    finally:
        for process in processes:
            if process.is_alive():
                os.kill(process.pid, signal.SIGTERM)
        for process in processes:
            process.join(timeout=60)
        for process in processes:
            if process.is_alive():  # pragma: no cover - stuck shard
                process.kill()
                process.join()
