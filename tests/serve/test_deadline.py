"""Deadline propagation (tier-1): parsing, batcher expiry, route refusal.

The request-lifeline contract, socket-free: a deadline parses once at the
front door (header wins over body, garbage fails loudly), rides the
request into the batcher, and an expired request is cancelled *before*
engine compute with an explicit ``DeadlineExceeded`` / 504 -- counted at
every layer, never silently dropped.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.serve.batcher import DynamicBatcher
from repro.serve.deadline import (
    DEADLINE_HEADER,
    Deadline,
    DeadlineExceeded,
    parse_deadline_ms,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TickClock:
    """A clock that jumps forward on every read -- makes the interval
    between two consecutive reads (e.g. deadline creation and its expiry
    check) deterministic."""

    def __init__(self, tick_s: float):
        self.now = 0.0
        self.tick = tick_s

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


# -- parsing -----------------------------------------------------------------


def test_parse_deadline_header_wins_over_body_field():
    headers = {DEADLINE_HEADER: "250"}
    payload = {"deadline_ms": 900}
    assert parse_deadline_ms(headers, payload) == 250.0
    assert parse_deadline_ms(None, payload) == 900.0
    assert parse_deadline_ms({}, {}) is None
    assert parse_deadline_ms(None, None) is None


@pytest.mark.parametrize("raw", ["soon", "", [], {}, "nan ms"])
def test_parse_deadline_rejects_garbage(raw):
    with pytest.raises(ValueError):
        parse_deadline_ms({DEADLINE_HEADER: raw}, None)


@pytest.mark.parametrize("raw", ["0", "-5", -1.0])
def test_parse_deadline_rejects_non_positive(raw):
    with pytest.raises(ValueError):
        parse_deadline_ms(None, {"deadline_ms": raw})


def test_deadline_arithmetic_on_a_fake_clock():
    clock = FakeClock(100.0)
    deadline = Deadline.after_ms(50.0, clock=clock)
    assert deadline.remaining_ms(clock) == pytest.approx(50.0)
    assert not deadline.expired(clock)
    clock.advance(0.05)
    assert deadline.expired(clock)
    clock.advance(0.01)
    assert deadline.remaining_ms(clock) == pytest.approx(-10.0)
    exc = DeadlineExceeded("late", late_by_s=0.01)
    assert exc.late_by_s == pytest.approx(0.01)


# -- batcher expiry ----------------------------------------------------------


def test_batcher_expires_dead_requests_before_compute():
    clock = FakeClock()
    seen: list[object] = []
    expired_hook: list[object] = []

    def runner(payloads):
        seen.extend(payloads)
        return [f"ok:{payload}" for payload in payloads]

    batcher = DynamicBatcher(
        runner,
        max_batch=4,
        max_wait=0.0,
        autostart=False,
        clock=clock,
        on_expire=lambda request: expired_hook.append(request.payload),
    )
    alive = batcher.submit("alive")
    dead = batcher.submit(
        "dead", deadline=Deadline.after_ms(5.0, clock=clock)
    )
    clock.advance(0.010)  # 10ms: past the 5ms deadline
    batcher.close(drain=True)

    assert alive.result(timeout=5) == "ok:alive"
    with pytest.raises(DeadlineExceeded) as excinfo:
        dead.result(timeout=5)
    assert excinfo.value.late_by_s == pytest.approx(0.005)
    # The engine never saw the dead request -- cancelled before compute.
    assert seen == ["alive"]
    assert expired_hook == ["dead"]
    assert batcher.expired_requests == 1
    assert batcher.expired_images == 1
    assert batcher.pending_images == 0


def test_batcher_expires_the_queue_head_without_anchoring_a_batch():
    clock = FakeClock()
    executed: list[list[object]] = []

    batcher = DynamicBatcher(
        lambda payloads: [executed.append(list(payloads)) or "ok"] * len(
            payloads
        ),
        max_batch=2,
        max_wait=0.0,
        autostart=False,
        clock=clock,
    )
    head = batcher.submit(
        "head", deadline=Deadline.after_ms(1.0, clock=clock)
    )
    clock.advance(1.0)
    tail = batcher.submit("tail")
    batcher.start()
    assert tail.result(timeout=10) == "ok"
    with pytest.raises(DeadlineExceeded):
        head.result(timeout=10)
    assert executed == [["tail"]]
    batcher.close()


def test_live_deadlines_ride_through_unharmed():
    batcher = DynamicBatcher(
        lambda payloads: [payload * 2 for payload in payloads],
        max_batch=8,
        max_wait=0.001,
    )
    try:
        future = batcher.submit(21, deadline=Deadline.after_ms(60_000.0))
        assert future.result(timeout=10) == 42
        assert batcher.expired_requests == 0
    finally:
        batcher.close()


# -- the route layer ---------------------------------------------------------


@pytest.fixture
def deadline_server(tiny_harness, tiny_provider):
    """A socket-free server whose clock jumps 20ms per read: any request
    deadline under 20ms is dead on arrival, deterministically."""
    from repro.serve.pool import EnginePool
    from repro.serve.registry import ModelSpec, ServeRegistry
    from repro.serve.server import NBSMTServer

    registry = ServeRegistry()
    registry.register(
        ModelSpec(
            name="tinynet",
            model="resnet18",
            threads=2,
            policy="S+A",
            max_batch=8,
            max_wait_ms=2.0,
            max_pending=32,
        )
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    server = NBSMTServer(registry, pool=pool, clock=TickClock(0.020))
    server._build_endpoints()
    yield server
    for batcher in server.batchers.values():
        batcher.close(drain=False)
    pool.close()


def _route(server, method, path, body=b"", headers=None):
    return asyncio.run(server._route(method, path, body, headers))


def test_route_rejects_malformed_and_nonpositive_deadlines(
    deadline_server, tiny_harness
):
    from repro.serve.server import _HttpError

    body = json.dumps(
        {"inputs": tiny_harness.eval_images[:1].tolist()}
    ).encode()
    for bad in ("soon", "0", "-3"):
        with pytest.raises(_HttpError) as excinfo:
            _route(
                deadline_server,
                "POST",
                "/v1/models/tinynet:predict",
                body,
                {DEADLINE_HEADER: bad},
            )
        assert excinfo.value.status == 400


def test_route_refuses_dead_on_arrival_with_504_and_counters(
    deadline_server, tiny_harness
):
    from repro.serve.server import _HttpError

    body = json.dumps(
        {"inputs": tiny_harness.eval_images[:2].tolist()}
    ).encode()
    admission = deadline_server.registry.admission("tinynet")
    with pytest.raises(_HttpError) as excinfo:
        _route(
            deadline_server,
            "POST",
            "/v1/models/tinynet:predict",
            body,
            {DEADLINE_HEADER: "10"},  # < one 20ms clock tick: dead on arrival
        )
    assert excinfo.value.status == 504
    assert excinfo.value.message == "deadline_exceeded"
    assert excinfo.value.body()["late_by_ms"] > 0
    # Refused at the door: no admission slot was ever held, the expiry is
    # counted at admission and in the endpoint metrics.
    assert admission.in_flight == 0
    assert admission.expired_arrivals == 2
    snapshot = deadline_server.metrics.endpoint("tinynet").snapshot()
    assert snapshot["expired_requests"] == 1
    assert snapshot["expired_images"] == 2
    # The body-field spelling drives the same path.
    body = json.dumps(
        {
            "inputs": tiny_harness.eval_images[:1].tolist(),
            "deadline_ms": 10,
        }
    ).encode()
    with pytest.raises(_HttpError) as excinfo:
        _route(deadline_server, "POST", "/v1/models/tinynet:predict", body)
    assert excinfo.value.status == 504
    assert admission.expired_arrivals == 3


def test_default_deadline_comes_from_the_spec(tiny_harness, tiny_provider):
    from repro.serve.pool import EnginePool
    from repro.serve.registry import ModelSpec, ServeRegistry
    from repro.serve.server import NBSMTServer, _HttpError

    registry = ServeRegistry()
    registry.register(
        ModelSpec(
            name="tinynet",
            model="resnet18",
            threads=2,
            max_batch=8,
            max_wait_ms=2.0,
            max_pending=32,
            default_deadline_ms=10.0,  # < one 20ms tick: everything is DOA
        )
    )
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    server = NBSMTServer(registry, pool=pool, clock=TickClock(0.020))
    server._build_endpoints()
    try:
        body = json.dumps(
            {"inputs": tiny_harness.eval_images[:1].tolist()}
        ).encode()
        with pytest.raises(_HttpError) as excinfo:
            _route(server, "POST", "/v1/models/tinynet:predict", body)
        assert excinfo.value.status == 504
        assert registry.get("tinynet").default_deadline_ms == 10.0
    finally:
        for batcher in server.batchers.values():
            batcher.close(drain=False)
        pool.close()


def test_route_smoke_still_serves_without_deadlines(
    deadline_server, tiny_harness
):
    """The ticking clock changes timing bookkeeping, not correctness."""
    status, payload = _route(deadline_server, "GET", "/healthz")
    assert status == 200
    assert payload["connections"]["open"] == 0
    assert time.monotonic() > 0  # anchor: the real clock is untouched


def test_draining_flips_healthz_and_refuses_new_work(
    deadline_server, tiny_harness
):
    """The drain contract for rolling restarts: /healthz answers 503
    ``draining`` (out of LB rotation) and new predicts are refused while
    in-flight work finishes."""
    from repro.serve.server import _HttpError

    deadline_server._draining = True
    try:
        status, payload = _route(deadline_server, "GET", "/healthz")
        assert status == 503
        assert payload["status"] == "draining"
        body = json.dumps(
            {"inputs": tiny_harness.eval_images[:1].tolist()}
        ).encode()
        with pytest.raises(_HttpError) as excinfo:
            _route(deadline_server, "POST", "/v1/models/tinynet:predict", body)
        assert excinfo.value.status == 503
        assert "draining" in excinfo.value.message
    finally:
        deadline_server._draining = False
