"""Serving-side telemetry: dashboard routes, health events, priced 429s.

The socket-free tests drive the server's route handler directly (tier-1,
like ``test_server_smoke``); the full-HTTP SSE stream test binds a real
socket and lives in the opt-in ``serve`` lane.
"""

import asyncio
import json
import urllib.request

import numpy as np
import pytest

from repro.serve.pool import EnginePool
from repro.serve.registry import ModelSpec, ServeRegistry
from repro.serve.server import NBSMTServer, _HttpError, _RawBody
from repro.telemetry import bus as telemetry_bus


def make_spec(**overrides):
    spec = dict(
        name="tinynet",
        model="resnet18",  # registry-valid alias; the provider ignores it
        threads=4,
        policy="S+A",
        ladder_rungs=3,
        slow_threads=2,
        max_batch=8,
        max_wait_ms=2.0,
        max_pending=32,
        latency_budget_ms=250.0,
    )
    spec.update(overrides)
    return ModelSpec(**spec)


@pytest.fixture
def telemetry_server(tiny_provider):
    registry = ServeRegistry()
    registry.register(make_spec())
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    server = NBSMTServer(registry, pool=pool)
    server._build_endpoints()
    yield server
    for batcher in server.batchers.values():
        batcher.close(drain=False)
    pool.close()
    server.relay.close()


def route(server, method, path, body=b""):
    return asyncio.run(server._route(method, path, body))


def test_dashboard_and_telemetry_routes(telemetry_server):
    status, payload = route(telemetry_server, "GET", "/dashboard")
    assert status == 200
    assert isinstance(payload, _RawBody)
    assert payload.content_type.startswith("text/html")
    assert b"repro telemetry" in payload.body

    status, snapshot = route(telemetry_server, "GET", "/v1/telemetry")
    assert status == 200
    assert "sweep" in snapshot and "endpoints" in snapshot

    with pytest.raises(_HttpError) as excinfo:
        route(telemetry_server, "POST", "/dashboard")
    assert excinfo.value.status == 405


def test_health_tick_publishes_endpoint_events(telemetry_server, tiny_harness):
    subscription = telemetry_bus.get_bus().subscribe(
        types={"endpoint_health", "shed", "batch_served"}, maxlen=64
    )
    try:
        images = tiny_harness.eval_images[:2]
        body = json.dumps({"inputs": images.tolist()}).encode()
        status, _ = route(
            telemetry_server, "POST", "/v1/models/tinynet:predict", body
        )
        assert status == 200
        telemetry_server.publish_health()
        events = subscription.drain()
        by_type = {}
        for event in events:
            by_type.setdefault(event.type, []).append(event)
        assert [e.data["images"] for e in by_type["batch_served"]] == [2]
        (health,) = by_type["endpoint_health"]
        assert health.data["endpoint"] == "tinynet"
        assert health.data["images"] == 2
        assert health.data["level"] == 0
        assert health.data["latency_budget_ms"] == 250.0
        assert health.data["latency"]["count"] == 1
        assert "shed" not in by_type  # nothing rejected yet
        # The relay fed the server's own aggregator too (the /v1/telemetry
        # and dashboard-bootstrap view).
        snapshot = telemetry_server.relay.snapshot()
        assert snapshot["endpoints"]["tinynet"]["images"] == 2
    finally:
        subscription.close()


def test_429_reports_expected_rung_and_retry_after(
    telemetry_server, tiny_harness
):
    admission = telemetry_server.registry.admission("tinynet")
    assert admission.try_admit(32)  # exhaust the budget
    image = tiny_harness.eval_images[:1]
    body = json.dumps({"inputs": image.tolist()}).encode()
    with pytest.raises(_HttpError) as excinfo:
        route(telemetry_server, "POST", "/v1/models/tinynet:predict", body)
    error = excinfo.value
    assert error.status == 429
    assert error.extra["expected_rung"] == 0
    assert error.extra["expected_point"]["level"] == 0
    assert error.extra["retry_after_ms"] >= 2.0
    assert error.headers["Retry-After"] == "1"
    admission.release(32)
    # Shed deltas surface as aggregated telemetry on the next health tick.
    subscription = telemetry_bus.get_bus().subscribe(types={"shed"})
    try:
        telemetry_server.publish_health()
        (shed,) = subscription.drain()
        assert shed.data == {"endpoint": "tinynet", "images": 1}
    finally:
        subscription.close()


def test_rung_aware_admission_prices_by_speedup(telemetry_server):
    """Degrading to a faster rung stretches the effective budget."""
    admission = telemetry_server.registry.admission("tinynet")
    governor = telemetry_server.governors["tinynet"]
    ladder = telemetry_server.pool.ladder("tinynet")
    governor.force(2)
    expected_price = ladder.top.expected_speedup / ladder[2].expected_speedup
    assert admission.price == pytest.approx(expected_price)
    assert expected_price < 1.0
    assert admission.effective_capacity > admission.capacity
    # Forcing back to the top rung restores unit pricing.
    governor.force(0)
    assert admission.price == pytest.approx(1.0)


def test_transitions_publish_rung_events(telemetry_server):
    subscription = telemetry_bus.get_bus().subscribe(
        types={"rung_transition"}
    )
    try:
        governor = telemetry_server.governors["tinynet"]
        governor.force(1)
        governor.force(0)
        events = subscription.drain()
        assert [(e.data["from_level"], e.data["to_level"]) for e in events] \
            == [(0, 1), (1, 0)]
        assert events[0].data["endpoint"] == "tinynet"
        assert events[0].data["direction"] == "degrade"
    finally:
        subscription.close()


# ---------------------------------------------------------------------------
# Full-HTTP SSE end-to-end (opt-in serve lane)
# ---------------------------------------------------------------------------


@pytest.mark.serve
def test_http_sse_streams_rung_transitions(tiny_provider, tiny_harness):
    registry = ServeRegistry()
    registry.register(make_spec())
    pool = EnginePool(registry, provider=tiny_provider, warm=False)
    server = NBSMTServer(registry, pool=pool, port=0)

    async def main():
        await server.start()
        base = f"http://127.0.0.1:{server.port}"
        loop = asyncio.get_running_loop()

        def drive():
            html = urllib.request.urlopen(
                f"{base}/dashboard", timeout=10
            ).read()
            assert b"EventSource" in html
            connection = urllib.request.urlopen(
                f"{base}/v1/events", timeout=10
            )
            assert connection.headers["Content-Type"] == "text/event-stream"
            # Force a rung transition; it must appear on the live stream.
            request = urllib.request.Request(
                f"{base}/v1/models/tinynet/operating_point",
                data=json.dumps({"level": 2}).encode(),
                method="POST",
            )
            urllib.request.urlopen(request, timeout=10)
            deadline = 200
            for _ in range(deadline):
                line = connection.readline().decode("utf-8")
                if line.strip() == "event: rung_transition":
                    data = connection.readline().decode("utf-8")
                    event = json.loads(data[len("data: "):])
                    assert event["data"]["endpoint"] == "tinynet"
                    assert event["data"]["to_level"] == 2
                    break
            else:  # pragma: no cover - diagnosed by the assert
                raise AssertionError("rung_transition never streamed")
            connection.close()
            # A predict round trip still works alongside the open stream.
            body = json.dumps(
                {"inputs": tiny_harness.eval_images[:1].tolist()}
            ).encode()
            response = json.load(
                urllib.request.urlopen(
                    urllib.request.Request(
                        f"{base}/v1/models/tinynet:predict",
                        data=body,
                        method="POST",
                    ),
                    timeout=30,
                )
            )
            assert response["operating_point"] == 2

        try:
            await loop.run_in_executor(None, drive)
        finally:
            await server.stop()

    asyncio.run(main())


def test_alert_engine_wired_into_server_and_history_restart(
    tiny_provider, tmp_path
):
    """The default server carries an alert engine fed by its relay; with a
    ``history_dir`` the lifecycle survives a server restart."""
    from repro.telemetry.alerts import AlertRule

    rule = AlertRule(
        name="hot", field="pressure", threshold=0.9, clear_threshold=0.5,
        for_s=0.0, clear_for_s=0.0, cooldown_s=0.0,
    )

    def build():
        registry = ServeRegistry()
        registry.register(make_spec())
        pool = EnginePool(registry, provider=tiny_provider, warm=False)
        server = NBSMTServer(
            registry, pool=pool, history_dir=str(tmp_path),
            alert_rules=[rule],
        )
        server._build_endpoints()
        return server, pool

    def teardown(server, pool):
        for batcher in server.batchers.values():
            batcher.close(drain=False)
        pool.close()
        server.relay.close()
        telemetry_bus.get_bus().unsubscribe(server._history_callback)
        server.history.close()

    server, pool = build()
    try:
        telemetry_bus.publish(
            "endpoint_health", endpoint="tinynet", pressure=0.95
        )
        status, payload = route(server, "GET", "/healthz")
        assert status == 200 and payload["active_alerts"] == 1
        status, snapshot = route(server, "GET", "/v1/telemetry")
        assert status == 200
        engine_view = snapshot["alerts_engine"]
        assert [a["rule"] for a in engine_view["active"]] == ["hot"]
        assert engine_view["fired_total"] == 1
        # The aggregator folded the lifecycle into the dashboard view too.
        assert snapshot["alerts"]["fired"] == 1
    finally:
        teardown(server, pool)

    # -- restart: a fresh server replays the ring-file history ----------
    server2, pool2 = build()
    try:
        active = server2.alert_engine.active()
        assert [(a["rule"], a["key"]) for a in active] == [("hot", "tinynet")]
        assert server2.alert_engine.fired_total == 1
        status, payload = route(server2, "GET", "/healthz")
        assert payload["active_alerts"] == 1
    finally:
        teardown(server2, pool2)
