"""Fixtures for the serving tests: a provider around the tiny harness."""

from __future__ import annotations

import pytest

from repro.core.engine import NBSMTEngine


def direct_reference(harness, images, threads=2, policy="S+A"):
    """What a fresh engine produces for the same images, harness-style."""
    engine = NBSMTEngine(policy, collect_stats=True)
    qmodel = harness.qmodel
    qmodel.ensure_installed()
    qmodel.set_threads(threads)
    harness.clear_permutations()
    qmodel.set_engine(engine)
    qmodel.clear_stats()
    return qmodel.forward(images), dict(engine.layer_stats)


@pytest.fixture(name="direct_reference")
def direct_reference_fixture():
    return direct_reference


class TinyHarnessProvider:
    """Hands out the session-scoped tiny harness; counts leases."""

    def __init__(self, harness):
        self.harness = harness
        self.acquired = 0
        self.released = 0

    def acquire(self, spec):
        self.acquired += 1
        return self.harness

    def release(self, harness):
        self.released += 1


@pytest.fixture
def tiny_provider(tiny_harness) -> TinyHarnessProvider:
    return TinyHarnessProvider(tiny_harness)
