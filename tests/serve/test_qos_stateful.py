"""Stateful property test: no QoSController transition breaks hysteresis.

A ``RuleBasedStateMachine`` drives one controller with a fake clock
through arbitrary interleavings of clock advances, load observations,
operator forces/holds and releases, and checks after every step that the
hysteresis contract held:

* the level stays inside the ladder and automatic transitions move
  exactly one rung;
* no automatic transition fires inside ``cooldown_s`` of the previous
  transition (forced ones excluded -- operators preempt cooldown);
* a degrade only fires when overload has held continuously for
  ``degrade_after_s`` (tracked as: no non-overloaded observation more
  recently than that), and symmetrically for recovery;
* a held controller never transitions on its own.
"""

from __future__ import annotations

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.serve.qos import LoadSignal, QoSConfig, QoSController
from tests.strategies import STATE_MACHINE_SETTINGS, load_signals, rung_counts


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


CONFIG = QoSConfig(
    degrade_pressure=0.75,
    recover_pressure=0.35,
    degrade_after_s=0.5,
    recover_after_s=2.0,
    cooldown_s=1.0,
)


class QoSMachine(RuleBasedStateMachine):
    @initialize(num_levels=rung_counts())
    def setup(self, num_levels):
        self.clock = FakeClock()
        self.controller = QoSController(
            num_levels, config=CONFIG, clock=self.clock
        )
        self.num_levels = num_levels
        # Shadow bookkeeping the invariants are phrased against.  The
        # streak trackers are *lower bounds* on when the controller's own
        # streak can have started, so the sustain checks are sound (the
        # controller may be stricter, never laxer).
        self.last_transition_at = float("-inf")
        self.last_not_overloaded_at = self.clock.now
        self.last_not_calm_at = self.clock.now

    # -- the controller's own predicates, restated for the shadow model ----
    def _overloaded(self, signal: LoadSignal) -> bool:
        return (
            signal.rejected_delta > 0
            or signal.pressure >= CONFIG.degrade_pressure
            or signal.queue_images
            >= CONFIG.degrade_queue_batches * max(1, signal.queue_capacity)
            or bool(
                signal.latency_budget_s
                and signal.queue_age_s > signal.latency_budget_s
            )
            or bool(
                signal.latency_budget_s
                and signal.p99_latency_s > signal.latency_budget_s
            )
        )

    def _calm(self, signal: LoadSignal) -> bool:
        return (
            signal.rejected_delta == 0
            and signal.pressure <= CONFIG.recover_pressure
            and signal.queue_images < max(1, signal.queue_capacity)
            and not (
                signal.latency_budget_s
                and signal.p99_latency_s
                > CONFIG.recover_latency_fraction * signal.latency_budget_s
            )
        )

    # -- rules -------------------------------------------------------------
    @rule(dt=st.floats(min_value=0.01, max_value=1.5))
    def advance(self, dt):
        self.clock.now += dt

    @rule(signal=load_signals())
    def observe(self, signal):
        was_held = self.controller.held
        level_before = self.controller.level
        now = self.clock.now
        transition = self.controller.observe(signal)

        if not self._overloaded(signal):
            self.last_not_overloaded_at = now
        if not self._calm(signal):
            self.last_not_calm_at = now

        if was_held:
            assert transition is None, "held controller transitioned"
        if transition is None:
            assert self.controller.level == level_before
            return

        assert 0 <= transition.to_level < self.num_levels
        assert abs(transition.to_level - transition.from_level) == 1, (
            "automatic transitions move exactly one rung"
        )
        assert transition.from_level == level_before
        assert self.controller.level == transition.to_level
        # Cooldown counts from *any* prior transition, forced included
        # (only forcing itself may preempt the cooldown).
        assert now - self.last_transition_at >= CONFIG.cooldown_s, (
            f"transition at {now} inside cooldown of "
            f"{self.last_transition_at}"
        )
        self.last_transition_at = now
        if transition.direction == "degrade":
            assert self._overloaded(signal), (
                "degraded on a signal that is not overloaded"
            )
            assert now - self.last_not_overloaded_at >= CONFIG.degrade_after_s, (
                "degrade without a sustained overload streak"
            )
        else:
            assert self._calm(signal), "recovered on a signal that is not calm"
            assert now - self.last_not_calm_at >= CONFIG.recover_after_s, (
                "recovery without a sustained calm streak"
            )

    @rule(hold=st.booleans(), data=st.data())
    def force(self, hold, data):
        level = data.draw(
            st.integers(min_value=0, max_value=self.num_levels - 1)
        )
        transition = self.controller.force(level, hold=hold)
        assert self.controller.level == level
        if transition is not None:
            assert transition.to_level == level
            self.last_transition_at = self.clock.now
        assert self.controller.held == hold
        # A force resets the streaks inside the controller; mirror it.
        self.last_not_overloaded_at = self.clock.now
        self.last_not_calm_at = self.clock.now

    @rule()
    def release(self):
        self.controller.release()
        assert not self.controller.held
        self.last_not_overloaded_at = self.clock.now
        self.last_not_calm_at = self.clock.now


TestQoSMachine = QoSMachine.TestCase
TestQoSMachine.settings = STATE_MACHINE_SETTINGS
