"""Whole-model precision reduction (Fig. 7) and the static PTQ baselines."""

import numpy as np
import pytest

from repro.quant.baselines import (
    ACIQEngine,
    LBQEngine,
    aciq_clip_engine,
    lbq_search_engine,
)
from repro.quant.engine import LayerContext
from repro.quant.robustness import (
    OPERATING_POINTS,
    ReducedPrecisionEngine,
    robustness_sweep,
)
from repro.utils.rng import new_rng
from tests.conftest import make_quantized_pair


@pytest.fixture
def pair():
    return make_quantized_pair(new_rng(21), m=32, k=48, n=16)


# -- ReducedPrecisionEngine ------------------------------------------------------

def test_a8w8_point_is_exact(pair):
    x, w = pair
    engine = ReducedPrecisionEngine.from_point("A8W8")
    assert np.array_equal(engine.matmul(x, w, LayerContext("l")), x @ w)


def test_a4w8_reduces_only_wide_activations(pair):
    x, w = pair
    engine = ReducedPrecisionEngine.from_point("A4W8")
    out = engine.matmul(x, w, LayerContext("l"))
    narrow_only = np.clip(x, 0, 15)
    exact_if_narrow = engine.matmul(narrow_only, w, LayerContext("l"))
    assert np.array_equal(exact_if_narrow, narrow_only @ w)
    assert not np.array_equal(out, x @ w)


def test_a4w4_error_at_least_a4w8(pair):
    x, w = pair
    exact = x @ w
    errors = {}
    for point in ("A4W8", "A8W4", "A4W4"):
        engine = ReducedPrecisionEngine.from_point(point)
        out = engine.matmul(x, w, LayerContext("l"))
        errors[point] = float(((out - exact) ** 2).mean())
    assert errors["A4W4"] >= errors["A4W8"] * 0.99
    assert errors["A4W4"] >= errors["A8W4"] * 0.99


def test_unknown_operating_point():
    with pytest.raises(KeyError):
        ReducedPrecisionEngine.from_point("A2W2")
    assert set(OPERATING_POINTS) == {"A8W8", "A4W8", "A8W4", "A4W4"}


def test_robustness_sweep_orders_accuracy(tiny_harness):
    accuracies = robustness_sweep(
        tiny_harness.qmodel,
        tiny_harness.eval_images,
        tiny_harness.eval_labels,
        batch_size=48,
    )
    assert set(accuracies) == set(OPERATING_POINTS)
    # On the tiny evaluation set quantization noise can occasionally help a
    # weak model, so the ordering is asserted with a slack margin.
    assert accuracies["A8W8"] >= accuracies["A4W4"] - 0.1
    assert all(0.0 <= value <= 1.0 for value in accuracies.values())
    # The engine is restored after the sweep.
    assert tiny_harness.qmodel.default_engine is not None


# -- static 4-bit PTQ baselines -----------------------------------------------------

def test_aciq_engine_produces_bounded_error(pair):
    x, w = pair
    engine = aciq_clip_engine(4, 8)
    out = engine.matmul(x, w, LayerContext("layer"))
    exact = x @ w
    assert out.shape == exact.shape
    relative = float(((out - exact) ** 2).sum()) / float((exact**2).sum())
    assert relative < 0.2


def test_lbq_engine_not_worse_than_aciq_on_its_objective(pair):
    x, w = pair
    exact = x @ w
    aciq = aciq_clip_engine(4, 8)
    lbq = lbq_search_engine(4, 8)
    aciq_mse = float(((aciq.matmul(x, w, LayerContext("l")) - exact) ** 2).mean())
    lbq_mse = float(((lbq.matmul(x, w, LayerContext("l")) - exact) ** 2).mean())
    # LBQ optimizes the output MSE directly, so it should not be (much) worse.
    assert lbq_mse <= aciq_mse * 1.05


def test_baseline_engines_cache_clips_per_layer(pair):
    x, w = pair
    engine = lbq_search_engine(4, 8)
    engine.matmul(x, w, LayerContext("layer_a"))
    engine.matmul(x, w, LayerContext("layer_b"))
    assert set(engine._act_clips) == {"layer_a", "layer_b"}


def test_weight_side_baselines(pair):
    x, w = pair
    exact = x @ w
    for engine in (ACIQEngine(8, 4), LBQEngine(8, 4, candidates=6)):
        out = engine.matmul(x, w, LayerContext("l"))
        relative = float(((out - exact) ** 2).sum()) / float((exact**2).sum())
        assert relative < 0.2
