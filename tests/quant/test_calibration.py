"""Calibration pass: activation ranges, BN recalibration, column statistics."""

import numpy as np
import pytest

from repro.nn import Conv2d, GlobalAvgPool2d, Linear, MaxPool2d, ReLU, Sequential
from repro.nn.layers.combine import conv_bn_relu
from repro.nn.layers.norm import BatchNorm2d
from repro.quant.calibration import calibrate_model, recalibrate_batchnorm
from repro.utils.rng import new_rng


@pytest.fixture
def small_model():
    return Sequential(
        conv_bn_relu(3, 4, 3, seed=0),
        MaxPool2d(2),
        conv_bn_relu(4, 8, 3, seed=1),
        GlobalAvgPool2d(),
        Linear(8, 5, seed=2),
    )


@pytest.fixture
def calibration_images():
    return new_rng(0).normal(size=(32, 3, 8, 8)).astype(np.float32)


def test_calibration_covers_all_conv_layers(small_model, calibration_images):
    result = calibrate_model(small_model, calibration_images, batch_size=16)
    conv_names = [
        name for name, module in small_model.named_modules()
        if isinstance(module, Conv2d)
    ]
    assert set(result.act_scales) == set(conv_names)
    assert all(scale > 0 for scale in result.act_scales.values())
    assert result.num_batches == 2


def test_calibration_includes_linear_when_requested(small_model, calibration_images):
    result = calibrate_model(
        small_model, calibration_images, include_linear=True, batch_size=16
    )
    linear_names = [
        name for name, module in small_model.named_modules()
        if isinstance(module, Linear)
    ]
    assert set(linear_names) <= set(result.act_scales)


def test_calibration_restores_original_matmuls(small_model, calibration_images):
    conv = next(m for m in small_model.modules() if isinstance(m, Conv2d))
    original = conv.matmul_fn
    calibrate_model(small_model, calibration_images, batch_size=16)
    assert conv.matmul_fn is original


def test_column_stats_shapes_and_ranges(small_model, calibration_images):
    result = calibrate_model(small_model, calibration_images, batch_size=16)
    for name, stats in result.column_stats.items():
        assert stats.num_columns > 0
        assert np.all((stats.p_wide >= 0) & (stats.p_wide <= 1))
        assert np.all((stats.p_nonzero >= 0) & (stats.p_nonzero <= 1))
        assert np.all(stats.p_wide <= stats.p_nonzero + 1e-12)


def test_column_stats_can_be_skipped(small_model, calibration_images):
    result = calibrate_model(
        small_model, calibration_images, batch_size=16, collect_column_stats=False
    )
    assert result.column_stats == {}


def test_bn_recalibration_tracks_input_statistics():
    bn = BatchNorm2d(3)
    model = Sequential(bn)
    images = new_rng(1).normal(loc=4.0, scale=2.0, size=(64, 3, 4, 4)).astype(np.float32)
    recalibrate_batchnorm(model, images, batch_size=16)
    assert bn.running_mean == pytest.approx(np.full(3, 4.0), abs=0.3)
    assert bn.running_var == pytest.approx(np.full(3, 4.0), abs=1.0)
    assert not model.training


def test_recalibration_without_bn_is_noop():
    model = Sequential(Linear(4, 2, seed=0))
    recalibrate_batchnorm(model, np.zeros((4, 4), dtype=np.float32))
