"""Quantization primitives: ranges, round trips and scale conventions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant.quantizer import (
    activation_scale,
    dequantize,
    quantize_activations,
    quantize_weights_per_channel,
)
from repro.utils.rng import new_rng


def test_activation_scale_maps_max_to_255():
    scale = activation_scale(10.2)
    assert 10.2 / scale == pytest.approx(255)
    assert activation_scale(0.0) == 1.0
    assert activation_scale(-3.0) == 1.0


def test_quantize_activations_range_and_clipping():
    q = quantize_activations(np.array([-5.0, 0.0, 1.0, 2.0]), scale=2.0 / 255)
    assert q.values.min() >= 0
    assert q.values.max() <= 255
    assert q.values[0] == 0  # negatives clip to zero


@settings(max_examples=30, deadline=None)
@given(
    max_value=st.floats(min_value=0.1, max_value=100.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_activation_roundtrip_error_bounded(max_value, seed):
    rng = new_rng(seed)
    x = rng.uniform(0, max_value, size=64).astype(np.float32)
    scale = activation_scale(max_value)
    q = quantize_activations(x, scale)
    reconstructed = q.dequantize()
    assert np.max(np.abs(reconstructed - x)) <= scale / 2 + 1e-6


def test_weight_quantization_is_per_channel_symmetric():
    w = np.array([[1.0, -10.0], [-2.0, 5.0], [0.5, 0.0]], dtype=np.float32)
    quantized = quantize_weights_per_channel(w)
    assert quantized.values.shape == w.shape
    assert quantized.scales.shape == (2,)
    assert np.abs(quantized.values).max() <= 127
    # Each channel's largest magnitude maps to 127.
    assert abs(quantized.values[:, 0]).max() == 127
    assert abs(quantized.values[:, 1]).max() == 127


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_weight_roundtrip_error_bounded(seed):
    rng = new_rng(seed)
    w = rng.normal(0, 0.2, size=(32, 8)).astype(np.float32)
    quantized = quantize_weights_per_channel(w)
    reconstructed = quantized.dequantize()
    per_channel_bound = quantized.scales / 2 + 1e-7
    assert np.all(np.abs(reconstructed - w).max(axis=0) <= per_channel_bound)


def test_zero_channel_does_not_divide_by_zero():
    w = np.zeros((4, 2), dtype=np.float32)
    quantized = quantize_weights_per_channel(w)
    assert np.all(quantized.values == 0)
    assert np.all(quantized.scales == 1.0)


def test_dequantize_applies_both_scales():
    accumulators = np.array([[10, 20]], dtype=np.int64)
    out = dequantize(accumulators, act_scale=0.5, weight_scales=np.array([2.0, 4.0]))
    np.testing.assert_allclose(out, [[10.0, 40.0]])


def test_integer_matmul_pipeline_matches_float_within_quant_error():
    rng = new_rng(3)
    x = np.abs(rng.normal(0, 1, size=(20, 30))).astype(np.float32)
    w = rng.normal(0, 0.1, size=(30, 10)).astype(np.float32)
    scale = activation_scale(float(x.max()))
    x_q = quantize_activations(x, scale)
    w_q = quantize_weights_per_channel(w)
    out = dequantize(x_q.values @ w_q.values, scale, w_q.scales)
    exact = x @ w
    # Error grows with K; bound it loosely but meaningfully.
    assert np.abs(out - exact).max() < 0.05 * np.abs(exact).max() + 0.05
