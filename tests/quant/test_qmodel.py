"""Quantized-model executor: hook installation, accuracy, configuration."""

import numpy as np
import pytest

from repro.core.engine import NBSMTEngine
from repro.nn import Conv2d
from repro.quant.calibration import calibrate_model
from repro.quant.engine import ExactEngine
from repro.quant.qmodel import QuantConfig, QuantizedModel


@pytest.fixture(scope="module")
def calibrated(tiny_trained_entry):
    model = tiny_trained_entry.model
    calibration = calibrate_model(
        model, tiny_trained_entry.dataset.calibration_batch(96), batch_size=48
    )
    return tiny_trained_entry, calibration


def test_first_conv_is_skipped(calibrated):
    entry, calibration = calibrated
    with QuantizedModel(entry.model, calibration) as qmodel:
        conv_names = [
            name for name, module in entry.model.named_modules()
            if isinstance(module, Conv2d)
        ]
        assert conv_names[0] not in qmodel.layers
        assert set(qmodel.layer_names()) == set(conv_names[1:])


def test_int8_accuracy_close_to_fp32(calibrated):
    entry, calibration = calibrated
    dataset = entry.dataset
    with QuantizedModel(entry.model, calibration, engine=ExactEngine()) as qmodel:
        int8_accuracy = qmodel.evaluate(dataset.val_images, dataset.val_labels)
    from repro.nn.train import evaluate_accuracy

    fp32_accuracy = evaluate_accuracy(
        entry.model, dataset.val_images, dataset.val_labels
    )
    assert abs(int8_accuracy - fp32_accuracy) <= 0.05


def test_remove_restores_float_execution(calibrated):
    entry, calibration = calibrated
    qmodel = QuantizedModel(entry.model, calibration)
    hooked = {name: layer.module.matmul_fn for name, layer in qmodel.layers.items()}
    qmodel.remove()
    for name, layer in qmodel.layers.items():
        assert layer.module.matmul_fn is not hooked[name]


def test_thread_assignment_and_engine_selection(calibrated):
    entry, calibration = calibrated
    with QuantizedModel(entry.model, calibration) as qmodel:
        qmodel.set_threads(4)
        assert set(qmodel.thread_assignment().values()) == {4}
        first = qmodel.layer_names()[0]
        qmodel.set_threads({first: 1})
        assert qmodel.thread_assignment()[first] == 1

        engine = NBSMTEngine("S+A")
        qmodel.set_engine(engine, [first])
        assert qmodel.layers[first].engine is engine
        qmodel.set_engine(ExactEngine())
        assert qmodel.layers[first].engine is None


def test_permutations_and_stats_roundtrip(calibrated):
    entry, calibration = calibrated
    with QuantizedModel(entry.model, calibration) as qmodel:
        name = qmodel.layer_names()[0]
        k = calibration.column_stats[name].num_columns
        qmodel.set_permutations({name: np.arange(k)})
        assert qmodel.layers[name].context.permutation is not None
        qmodel.clear_stats()
        qmodel.forward(entry.dataset.val_images[:16])
        stats = qmodel.collect_stats()
        assert stats[name].get("macs", 0) > 0


def test_missing_calibration_raises(calibrated):
    entry, _ = calibrated
    from repro.quant.calibration import CalibrationResult

    with pytest.raises(KeyError):
        QuantizedModel(entry.model, CalibrationResult())


def test_nbsmt_engine_changes_outputs_but_not_catastrophically(calibrated):
    entry, calibration = calibrated
    dataset = entry.dataset
    with QuantizedModel(entry.model, calibration) as qmodel:
        qmodel.set_engine(ExactEngine())
        exact_logits = qmodel.forward(dataset.val_images[:16])
        qmodel.set_engine(NBSMTEngine("S+A", collect_stats=False))
        qmodel.set_threads(2)
        noisy_logits = qmodel.forward(dataset.val_images[:16])
    assert not np.allclose(exact_logits, noisy_logits)
    # The perturbation is bounded: predictions mostly agree.
    agreement = (exact_logits.argmax(1) == noisy_logits.argmax(1)).mean()
    assert agreement >= 0.7
