"""Shared Hypothesis strategies and tiered settings for the test suite.

One import point for every property test::

    from tests.strategies import QUICK_SETTINGS, load_signals

Settings tiers live in :mod:`tests.strategies.settings` (pick the tier
matching the cost of one example; ``REPRO_PROPERTY_SCALE`` multiplies all
example budgets).  Domain strategies for the serving stack live in
:mod:`tests.strategies.serving`.
"""

from tests.strategies.serving import (
    load_signals,
    qos_configs,
    request_sizes,
    rung_counts,
)
from tests.strategies.settings import (
    QUICK_SETTINGS,
    SLOW_SETTINGS,
    STANDARD_SETTINGS,
    STATE_MACHINE_SETTINGS,
)

__all__ = [
    "QUICK_SETTINGS",
    "SLOW_SETTINGS",
    "STANDARD_SETTINGS",
    "STATE_MACHINE_SETTINGS",
    "load_signals",
    "qos_configs",
    "request_sizes",
    "rung_counts",
]
