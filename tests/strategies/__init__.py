"""Shared Hypothesis strategies and tiered settings for the test suite.

One import point for every property test::

    from tests.strategies import QUICK_SETTINGS, load_signals

Settings tiers live in :mod:`tests.strategies.settings` (pick the tier
matching the cost of one example; ``REPRO_PROPERTY_SCALE`` multiplies all
example budgets).  Domain strategies for the serving stack live in
:mod:`tests.strategies.serving`; the request-lifeline vocabulary (retry
policies, deadline budgets, shed advice) in
:mod:`tests.strategies.lifelines`.
"""

from tests.strategies.alerts import alert_rules, rule_values
from tests.strategies.lifelines import (
    attempt_indices,
    deadline_budgets_ms,
    retry_after_advice_ms,
    retry_policies,
)
from tests.strategies.serving import (
    load_signals,
    qos_configs,
    request_sizes,
    rung_counts,
)
from tests.strategies.settings import (
    QUICK_SETTINGS,
    SLOW_SETTINGS,
    STANDARD_SETTINGS,
    STATE_MACHINE_SETTINGS,
)

__all__ = [
    "QUICK_SETTINGS",
    "SLOW_SETTINGS",
    "STANDARD_SETTINGS",
    "STATE_MACHINE_SETTINGS",
    "alert_rules",
    "attempt_indices",
    "deadline_budgets_ms",
    "load_signals",
    "qos_configs",
    "request_sizes",
    "retry_after_advice_ms",
    "retry_policies",
    "rule_values",
    "rung_counts",
]
