"""Domain strategies for the serving-stack property tests.

These generate the *inputs* the serving control plane consumes -- load
signals, QoS configurations, request micro-batch sizes, ladder shapes --
so the stateful machines and property tests all draw from one vocabulary
instead of re-inventing ad-hoc ranges per file.
"""

from __future__ import annotations

from hypothesis import strategies as st


def rung_counts(min_rungs: int = 2, max_rungs: int = 5):
    """Ladder sizes worth testing (1 rung means a static endpoint)."""
    return st.integers(min_value=min_rungs, max_value=max_rungs)


def request_sizes(max_size: int = 8):
    """Micro-batch sizes a client may submit in one request."""
    return st.integers(min_value=1, max_value=max_size)


@st.composite
def qos_configs(draw):
    """Well-formed hysteresis configurations (thresholds ordered)."""
    from repro.serve.qos import QoSConfig

    recover = draw(st.floats(min_value=0.1, max_value=0.5))
    degrade = draw(st.floats(min_value=recover + 0.1, max_value=1.0))
    degrade_after = draw(st.floats(min_value=0.1, max_value=1.0))
    return QoSConfig(
        degrade_pressure=degrade,
        recover_pressure=recover,
        degrade_after_s=degrade_after,
        recover_after_s=draw(
            st.floats(min_value=degrade_after, max_value=3.0)
        ),
        cooldown_s=draw(st.floats(min_value=0.0, max_value=1.0)),
    )


@st.composite
def load_signals(draw, queue_capacity: int = 8):
    """Arbitrary (but type-correct) load snapshots, calm through overload."""
    from repro.serve.qos import LoadSignal

    budget = draw(
        st.one_of(st.none(), st.floats(min_value=0.05, max_value=2.0))
    )
    return LoadSignal(
        pressure=draw(st.floats(min_value=0.0, max_value=1.5)),
        queue_images=draw(st.integers(min_value=0, max_value=64)),
        queue_capacity=queue_capacity,
        queue_age_s=draw(st.floats(min_value=0.0, max_value=1.0)),
        rejected_delta=draw(st.sampled_from([0, 0, 0, 1, 5])),
        p99_latency_s=draw(st.floats(min_value=0.0, max_value=3.0)),
        latency_budget_s=budget,
    )
