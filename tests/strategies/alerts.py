"""Hypothesis strategies for the alert engine.

``alert_rules()`` draws one well-formed :class:`AlertRule` (both
directions, optional hysteresis dead band, sustain/cooldown durations on
the scale the stateful machine advances its clock); ``rule_values()``
draws observed values wide enough to land on either side of any drawn
threshold -- and inside the dead band when there is one.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.telemetry.alerts import AlertRule

_durations = st.floats(
    min_value=0.0, max_value=3.0, allow_nan=False, allow_infinity=False
)


@st.composite
def alert_rules(draw) -> AlertRule:
    below = draw(st.booleans())
    threshold = draw(
        st.floats(
            min_value=-10.0, max_value=10.0,
            allow_nan=False, allow_infinity=False,
        )
    )
    clear_threshold = None
    if draw(st.booleans()):
        gap = draw(
            st.floats(
                min_value=0.0, max_value=5.0,
                allow_nan=False, allow_infinity=False,
            )
        )
        clear_threshold = threshold + gap if below else threshold - gap
    return AlertRule(
        name="machine-rule",
        event_type="endpoint_health",
        field="value",
        threshold=threshold,
        below=below,
        clear_threshold=clear_threshold,
        for_s=draw(_durations),
        clear_for_s=draw(_durations),
        cooldown_s=draw(_durations),
        key_fields=("endpoint",),
    )


def rule_values():
    """Observed values spanning past both sides of any drawn threshold."""
    return st.floats(
        min_value=-20.0, max_value=20.0,
        allow_nan=False, allow_infinity=False,
    )
