"""Standardized Hypothesis settings profiles for the property tests.

Import the tier that matches the cost of one example, so the example budget
is consistent suite-wide and can be scaled globally:

* ``QUICK_SETTINGS``         -- cheap pure-python examples.
* ``STANDARD_SETTINGS``      -- one factorized-vs-reference executor
                                cross-check per example.
* ``SLOW_SETTINGS``          -- examples that run the explicit simulators.
* ``STATE_MACHINE_SETTINGS`` -- ``RuleBasedStateMachine`` runs: fewer
                                examples, each a long rule sequence.

The ``REPRO_PROPERTY_SCALE`` environment variable multiplies the example
counts (e.g. ``REPRO_PROPERTY_SCALE=10`` for a thorough overnight run).
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

_SCALE = float(os.environ.get("REPRO_PROPERTY_SCALE", "1"))


def _profile(max_examples: int, **overrides) -> settings:
    return settings(
        max_examples=max(1, int(max_examples * _SCALE)),
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
        **overrides,
    )


QUICK_SETTINGS = _profile(100)
STANDARD_SETTINGS = _profile(40)
SLOW_SETTINGS = _profile(15)
#: Stateful machines: each example is a whole rule sequence, so the
#: budget buys depth (steps per run) rather than example count.
STATE_MACHINE_SETTINGS = _profile(20, stateful_step_count=30)
