"""Domain strategies for the request-lifeline property tests.

Retry policies, deadline budgets, and server shed advice -- the inputs the
retrying client's budget arithmetic consumes.  Shared by the unit
properties (``tests/serve/test_client_retry.py``) and the stateful
lifecycle machine (``tests/serve/test_retry_stateful.py``).
"""

from __future__ import annotations

from hypothesis import strategies as st


@st.composite
def retry_policies(draw):
    """Well-formed retry policies (cap at or above the base backoff)."""
    from repro.serve.client import RetryPolicy

    base = draw(st.floats(min_value=1.0, max_value=200.0))
    return RetryPolicy(
        max_retries=draw(st.integers(min_value=0, max_value=6)),
        base_backoff_ms=base,
        multiplier=draw(st.floats(min_value=1.0, max_value=4.0)),
        max_backoff_ms=draw(st.floats(min_value=base, max_value=5000.0)),
        jitter=draw(st.floats(min_value=0.0, max_value=0.5)),
    )


def deadline_budgets_ms(min_ms: float = 1.0, max_ms: float = 10_000.0):
    """Relative deadline budgets a client might attach (or none)."""
    return st.one_of(
        st.none(), st.floats(min_value=min_ms, max_value=max_ms)
    )


def retry_after_advice_ms():
    """Server shed advice: absent, or a positive retry-after in ms."""
    return st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=2000.0)
    )


def attempt_indices(max_attempt: int = 8):
    return st.integers(min_value=0, max_value=max_attempt)
