"""Tracing unit suite: sampling, the exemplar ring, span trees, persistence.

The tracer's contract has three independently checkable pieces:

* **Consistent head sampling** -- the verdict is a pure function of the
  trace id and rate, so two processes (or machines) always agree.
* **Exemplar policy** -- unsampled spans buffer in a bounded ring and
  :meth:`Tracer.keep` retroactively publishes them (budget breaches,
  expiries, sheds and errors are never lost to sampling).
* **Span-tree utilities** -- grouping, summarizing and rendering must
  survive duplicates, orphans and out-of-order arrival.
"""

from __future__ import annotations

import pytest

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.tracing import (
    SPAN_EVENT,
    TraceContext,
    TraceStore,
    Tracer,
    build_tree,
    group_spans,
    new_span_id,
    new_trace_id,
    render_waterfall,
    sample_decision,
    summarize_trace,
)

pytestmark = pytest.mark.trace


class Collector:
    """A stand-in for ``bus.publish`` that records span payloads."""

    def __init__(self):
        self.events: list[tuple[str, dict]] = []

    def __call__(self, type: str, **data):
        self.events.append((type, data))

    @property
    def spans(self) -> list[dict]:
        return [data for type_, data in self.events if type_ == SPAN_EVENT]


# -- sampling --------------------------------------------------------------

def test_sample_decision_extremes():
    for _ in range(32):
        tid = new_trace_id()
        assert sample_decision(tid, 1.0)
        assert not sample_decision(tid, 0.0)


def test_sample_decision_is_deterministic_and_monotone_in_rate():
    # The same id gets the same verdict everywhere; raising the rate
    # never un-samples a trace (an upstream's kept trace stays kept
    # downstream at equal-or-higher rates).
    for _ in range(64):
        tid = new_trace_id()
        verdicts = [sample_decision(tid, r) for r in (0.1, 0.3, 0.7, 0.9)]
        assert verdicts == sorted(verdicts)  # False... then True...
        assert sample_decision(tid, 0.5) == sample_decision(tid, 0.5)


def test_sample_rate_is_roughly_honored():
    kept = sum(sample_decision(new_trace_id(), 0.2) for _ in range(2000))
    assert 250 < kept < 550  # ~400 expected; generous bounds


def test_trace_honors_inbound_id_and_normalizes_case():
    tracer = Tracer(publish=Collector(), sample_rate=1.0)
    context = tracer.trace("  DEADBEEFCAFEBABE ")
    assert context.trace_id == "deadbeefcafebabe"
    assert tracer.trace(None).trace_id != tracer.trace(None).trace_id


# -- span lifecycle --------------------------------------------------------

def test_sampled_trace_publishes_immediately():
    out = Collector()
    tracer = Tracer(publish=out, sample_rate=1.0)
    context = tracer.trace()
    span = tracer.start_span(context, "request", root=True, endpoint="m")
    child = tracer.start_span(span.child_context(), "admission")
    child.finish()
    span.finish()
    assert [s["name"] for s in out.spans] == ["admission", "request"]
    root = out.spans[1]
    assert root["span_id"] == context.span_id
    assert root["parent_id"] is None
    assert root["endpoint"] == "m"
    assert out.spans[0]["parent_id"] == context.span_id
    assert tracer.published_spans == 2


def test_span_finish_is_idempotent():
    out = Collector()
    tracer = Tracer(publish=out, sample_rate=1.0)
    span = tracer.start_span(tracer.trace(), "request", root=True)
    first = span.finish(status="ok")
    assert span.finish(status="error") == {}
    assert len(out.spans) == 1
    assert first["status"] == "ok"


def test_start_span_none_context_returns_none():
    tracer = Tracer(publish=Collector(), sample_rate=1.0)
    assert tracer.start_span(None, "request") is None
    assert tracer.emit(None, "x", start=0.0, duration_s=0.0) == {}


def test_emit_records_external_timing_under_the_context_span():
    out = Collector()
    tracer = Tracer(publish=out, sample_rate=1.0)
    context = tracer.trace()
    payload = tracer.emit(
        context, "queue_wait", start=100.0, duration_s=0.25, batcher="b"
    )
    assert payload["parent_id"] == context.span_id
    assert payload["duration_ms"] == pytest.approx(250.0)
    assert out.spans[0]["batcher"] == "b"


# -- exemplar policy -------------------------------------------------------

def _unsampled(tracer: Tracer) -> TraceContext:
    return TraceContext(new_trace_id(), new_span_id(), sampled=False)


def test_unsampled_trace_buffers_until_kept():
    out = Collector()
    tracer = Tracer(publish=out, sample_rate=0.0)
    context = _unsampled(tracer)
    tracer.start_span(context, "request", root=True).finish()
    tracer.emit(context, "queue_wait", start=1.0, duration_s=0.1)
    assert out.spans == []
    assert tracer.buffered_spans == 2

    flushed = tracer.keep(context, "budget_breach")
    assert flushed == 2
    assert len(out.spans) == 2
    assert all(s["exemplar"] == "budget_breach" for s in out.spans)
    assert tracer.exemplars_kept == 1
    assert tracer.buffered_spans == 0


def test_late_spans_after_keep_publish_directly():
    out = Collector()
    tracer = Tracer(publish=out, sample_rate=0.0)
    context = _unsampled(tracer)
    tracer.keep(context, "expired")
    tracer.emit(context, "batch", start=1.0, duration_s=0.2)
    assert len(out.spans) == 1
    assert out.spans[0]["exemplar"] == "expired"


def test_keep_on_sampled_trace_is_a_noop():
    out = Collector()
    tracer = Tracer(publish=out, sample_rate=1.0)
    context = tracer.trace()
    tracer.start_span(context, "request", root=True).finish()
    assert tracer.keep(context, "error") == 0
    assert len(out.spans) == 1
    assert "exemplar" not in out.spans[0]


def test_discard_drops_the_buffer():
    out = Collector()
    tracer = Tracer(publish=out, sample_rate=0.0)
    context = _unsampled(tracer)
    tracer.emit(context, "batch", start=1.0, duration_s=0.1)
    assert tracer.discard(context) == 1
    assert tracer.keep(context, "late") == 0  # nothing left to flush
    assert out.spans == []
    assert tracer.buffered_spans == 0


def test_exemplar_ring_evicts_oldest_traces():
    tracer = Tracer(publish=Collector(), sample_rate=0.0, exemplar_traces=4)
    contexts = [_unsampled(tracer) for _ in range(10)]
    for context in contexts:
        tracer.emit(context, "request", start=1.0, duration_s=0.1)
    assert tracer.dropped_traces == 6
    assert tracer.buffered_spans == 4
    # The oldest were evicted: keeping them finds nothing.
    assert tracer.keep(contexts[0], "x") == 0
    assert tracer.keep(contexts[-1], "x") == 1


def test_per_trace_span_cap():
    tracer = Tracer(
        publish=Collector(), sample_rate=0.0, max_spans_per_trace=8
    )
    context = _unsampled(tracer)
    for index in range(20):
        tracer.emit(context, f"s{index}", start=float(index), duration_s=0.0)
    assert tracer.buffered_spans == 8


def test_snapshot_counts():
    tracer = Tracer(publish=Collector(), sample_rate=0.5)
    context = _unsampled(tracer)
    tracer.emit(context, "a", start=0.0, duration_s=0.0)
    snap = tracer.snapshot()
    assert snap["buffered_spans"] == 1
    assert snap["buffered_traces"] == 1
    assert snap["sample_rate"] == 0.5


# -- span-tree utilities ---------------------------------------------------

def _span(trace_id, span_id, parent_id, name, start, dur_ms=1.0, **extra):
    return {
        "trace_id": trace_id, "span_id": span_id, "parent_id": parent_id,
        "name": name, "start": start, "duration_ms": dur_ms, "status": "ok",
        **extra,
    }


def test_group_spans_dedups_and_sorts_by_start():
    spans = [
        _span("t1", "b", "a", "later", 5.0),
        _span("t1", "a", None, "root", 1.0),
        _span("t1", "b", "a", "later-duplicate", 5.0),
        _span("t2", "c", None, "other", 2.0),
    ]
    grouped = group_spans(spans)
    assert list(grouped) == ["t1", "t2"]
    assert [s["name"] for s in grouped["t1"]] == ["root", "later"]
    assert len(grouped["t1"]) == 2  # duplicate span id folded


def test_group_spans_skips_malformed_payloads():
    grouped = group_spans([
        {"trace_id": "t", "name": "no-span-id"},
        {"span_id": "s", "name": "no-trace-id"},
    ])
    assert grouped == {}


def test_summarize_trace_picks_root_status_and_exemplar():
    spans = [
        _span("t", "a", None, "request", 1.0, 100.0, endpoint="m"),
        _span("t", "b", "a", "batch", 1.01, 50.0, status="error"),
        _span("t", "c", "b", "engine", 1.02, 40.0, exemplar="error"),
    ]
    summary = summarize_trace("t", spans)
    assert summary["root"] == "request"
    assert summary["endpoint"] == "m"
    assert summary["status"] == "error"
    assert summary["exemplar"] == "error"
    assert summary["spans"] == 3
    assert summary["duration_ms"] == pytest.approx(100.0)


def test_build_tree_nests_and_promotes_orphans():
    spans = [
        _span("t", "a", None, "request", 1.0),
        _span("t", "b", "a", "batch", 2.0),
        _span("t", "c", "b", "engine", 3.0),
        _span("t", "x", "missing", "stray", 4.0),
    ]
    roots = build_tree(spans)
    assert [r["span"]["name"] for r in roots] == ["request", "stray"]
    assert roots[1]["span"]["orphan"] is True
    batch = roots[0]["children"][0]
    assert batch["span"]["name"] == "batch"
    assert batch["children"][0]["span"]["name"] == "engine"


def test_render_waterfall_marks_status_exemplar_and_orphan():
    spans = [
        _span("t", "a", None, "request", 1.0, 10.0),
        _span("t", "b", "a", "batch", 1.002, 5.0,
              status="error", exemplar="shed"),
        _span("t", "x", "missing", "stray", 1.004, 1.0),
    ]
    lines = render_waterfall(spans)
    assert len(lines) == 3
    assert "request" in lines[0]
    assert "!error" in lines[1] and "[exemplar:shed]" in lines[1]
    assert "[orphan]" in lines[2]
    assert render_waterfall([]) == ["(no spans)"]


# -- persistence -----------------------------------------------------------

def test_trace_store_persists_only_span_events(tmp_path):
    bus = TelemetryBus(role="test")
    store = TraceStore(str(tmp_path))
    bus.subscribe(callback=store.record)
    tracer = Tracer(publish=bus.publish, sample_rate=1.0)
    context = tracer.trace("feedc0defeedc0de")
    root = tracer.start_span(context, "request", root=True)
    tracer.emit(context, "queue_wait", start=1.0, duration_s=0.1)
    root.finish()
    bus.publish("endpoint_health", endpoint="m", dead_workers=0)
    store.close()

    replayed = TraceStore(str(tmp_path))
    traces = replayed.load_traces(compact=False)
    replayed.close()
    assert list(traces) == ["feedc0defeedc0de"]
    assert sorted(s["name"] for s in traces["feedc0defeedc0de"]) == [
        "queue_wait", "request",
    ]


def test_trace_store_readonly_load_creates_no_files(tmp_path):
    # The CLI constructs a TraceStore just to read -- inspection must
    # never add a ring file to a live server's directory.
    store = TraceStore(str(tmp_path))
    assert store.load_traces(compact=False) == {}
    store.close()
    assert list(tmp_path.iterdir()) == []
