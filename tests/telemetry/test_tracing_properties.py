"""Property tests: span trees stay well-formed under concurrent batching.

Two layers of invariants:

* **Pure tree machinery** -- for any forest of spans whose parents exist,
  :func:`build_tree` places every span exactly once, promotes nothing to
  an orphan, and orders children by start time.
* **The live batcher** -- requests traced through a concurrent
  :class:`DynamicBatcher` (several workers, racing batches) always yield
  per-trace span trees with a single root, acyclic parent chains, no
  orphans, and child intervals inside their parent's (small epsilon for
  the wall/monotonic clock stitch).
"""

from __future__ import annotations

import os
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.batcher import DynamicBatcher
from repro.telemetry.tracing import (
    Tracer,
    build_tree,
    group_spans,
    summarize_trace,
)
from tests.strategies import QUICK_SETTINGS, STANDARD_SETTINGS

pytestmark = pytest.mark.trace

#: Queue-wait spans stitch a monotonic duration onto a wall-clock start,
#: so containment checks allow this much slack (seconds).
CLOCK_EPSILON = 0.05


# -- pure tree machinery ---------------------------------------------------

@st.composite
def span_forests(draw):
    """A forest: every parent id points at an earlier span (or None)."""
    count = draw(st.integers(min_value=1, max_value=24))
    spans = []
    for index in range(count):
        parent = None
        if index and draw(st.booleans()):
            parent = spans[draw(st.integers(0, index - 1))]["span_id"]
        spans.append({
            "trace_id": "t",
            "span_id": f"s{index}",
            "parent_id": parent,
            "name": f"n{index}",
            "start": draw(st.floats(0.0, 100.0, allow_nan=False,
                                    allow_infinity=False)),
            "duration_ms": draw(st.floats(0.0, 1000.0, allow_nan=False,
                                          allow_infinity=False)),
            "status": "ok",
        })
    return spans


def _flatten(nodes):
    for node in nodes:
        yield node["span"]
        yield from _flatten(node["children"])


@QUICK_SETTINGS
@given(spans=span_forests())
def test_build_tree_places_every_span_exactly_once(spans):
    roots = build_tree(spans)
    seen = [s["span_id"] for s in _flatten(roots)]
    assert sorted(seen) == sorted(s["span_id"] for s in spans)
    assert len(seen) == len(set(seen))
    # Parents all exist, so nothing was promoted to an orphan.
    assert not any(s.get("orphan") for s in _flatten(roots))
    expected_roots = sum(1 for s in spans if s["parent_id"] is None)
    assert len(roots) == expected_roots


@QUICK_SETTINGS
@given(spans=span_forests())
def test_children_are_ordered_by_start(spans):
    def check(nodes):
        starts = [n["span"]["start"] for n in nodes]
        assert starts == sorted(starts)
        for node in nodes:
            check(node["children"])

    check(build_tree(spans))


@QUICK_SETTINGS
@given(spans=span_forests())
def test_group_and_summarize_are_total(spans):
    grouped = group_spans(spans)
    assert list(grouped) == ["t"]
    summary = summarize_trace("t", grouped["t"])
    assert summary["spans"] == len(spans)
    assert summary["duration_ms"] >= 0.0
    # Every span's interval sits inside the summary's envelope.
    t0 = summary["start"]
    t1 = t0 + summary["duration_ms"] / 1000.0
    for span in spans:
        assert span["start"] >= t0 - 1e-9
        assert span["start"] + span["duration_ms"] / 1000.0 <= t1 + 1e-6


# -- the live batcher ------------------------------------------------------

class Collector:
    def __init__(self):
        self.spans: list[dict] = []

    def __call__(self, type, **data):
        self.spans.append(data)  # list.append is atomic; workers race here


def _engine_runner(payloads, trace=None):
    """A fake engine: fills the trace carrier like a real replica does."""
    now = time.time()
    if trace is not None:
        trace["engine"] = {
            "start": now,
            "duration_s": 0.002,
            "pid": os.getpid(),
            "level": 0,
            "layers": [("conv1", now, 0.001), ("fc", now + 0.001, 0.001)],
        }
    return payloads


def _assert_well_formed(trace_id, spans):
    by_id = {s["span_id"]: s for s in spans}
    roots = [s for s in spans if s["parent_id"] is None]
    assert len(roots) == 1, f"{trace_id}: roots {[r['name'] for r in roots]}"
    root = roots[0]

    # Acyclic: every parent chain reaches the root in <= len(spans) hops,
    # and no parent id dangles (no orphans).
    for span in spans:
        hops = 0
        current = span
        while current["parent_id"] is not None:
            assert current["parent_id"] in by_id, \
                f"{trace_id}: {current['name']} orphaned"
            current = by_id[current["parent_id"]]
            hops += 1
            assert hops <= len(spans), f"{trace_id}: parent cycle"
        assert current is root

    # Child intervals sit inside their parent's (clock-stitch epsilon).
    for span in spans:
        parent = by_id.get(span["parent_id"] or "")
        if parent is None:
            continue
        assert span["start"] >= parent["start"] - CLOCK_EPSILON
        span_end = span["start"] + span["duration_ms"] / 1000.0
        parent_end = parent["start"] + parent["duration_ms"] / 1000.0
        assert span_end <= parent_end + CLOCK_EPSILON

    assert not any(n.get("orphan") for n in spans)


@STANDARD_SETTINGS
@given(
    requests=st.integers(min_value=1, max_value=10),
    max_batch=st.integers(min_value=1, max_value=6),
    workers=st.integers(min_value=1, max_value=3),
)
def test_concurrent_batching_yields_well_formed_trees(
    requests, max_batch, workers
):
    out = Collector()
    tracer = Tracer(publish=out, sample_rate=1.0)
    batcher = DynamicBatcher(
        _engine_runner,
        max_batch=max_batch,
        max_wait=0.001,
        workers=workers,
        tracer=tracer,
        name="prop",
    )
    try:
        contexts, roots, futures = [], [], []
        for index in range(requests):
            context = tracer.trace()
            root = tracer.start_span(
                context, "request", root=True, endpoint="prop"
            )
            futures.append(batcher.submit([index], trace=context))
            contexts.append(context)
            roots.append(root)
        for future, root, index in zip(futures, roots, range(requests)):
            assert future.result(timeout=30) == [index]
            root.finish()
    finally:
        batcher.close()

    grouped = group_spans(out.spans)
    assert len(grouped) == requests  # every trace id distinct + present
    for context in contexts:
        spans = grouped[context.trace_id]
        names = [s["name"] for s in spans]
        for required in ("request", "queue_wait", "batch",
                         "engine_compute", "layer:conv1", "layer:fc"):
            assert required in names, f"missing {required} in {names}"
        _assert_well_formed(context.trace_id, spans)

    # Batches that carried several traced requests link their peers.
    for spans in grouped.values():
        batch_span = next(s for s in spans if s["name"] == "batch")
        for link in batch_span.get("links", []):
            assert link["span_id"] != batch_span["parent_id"]
            assert link["trace_id"] in grouped
