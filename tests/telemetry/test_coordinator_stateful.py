"""Stateful property test: quorum monotonicity of the QoS coordinator.

A ``RuleBasedStateMachine`` drives a real :class:`ShardStateChannel`
directory (atomic-rename publishes, real gathers) through arbitrary
join/leave/hold/release/desire-change sequences and checks, after every
step, the properties the leaderless recommendation claims:

* the recommendation equals the **max** desired rung over live, non-held
  shards, clamped to the ladder -- and is ``None`` exactly when that
  quorum is empty;
* monotonicity: a join (or desire raise, or a release) never *lowers*
  the recommendation below the joining shard's own clamped desire, and a
  leave/hold never *raises* it (shards only ever drag the service down
  by overload, never up by disappearing);
* held shards stay visible in ``desired_by_shard`` but have no vote.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.telemetry.coordinator import ShardStateChannel, recommend_level
from tests.strategies import STATE_MACHINE_SETTINGS

NUM_LEVELS = 4
SHARD_COUNT = 5
ENDPOINT = "m"

shard_indexes = st.integers(min_value=0, max_value=SHARD_COUNT - 1)
desires = st.integers(min_value=-1, max_value=NUM_LEVELS + 1)  # incl. junk


class CoordinatorMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.directory = tempfile.mkdtemp(prefix="repro-coord-machine-")
        self.channels = [
            ShardStateChannel(self.directory, index, SHARD_COUNT)
            for index in range(SHARD_COUNT)
        ]
        self.model: dict[int, dict] = {}  # index -> {"desired", "held"}

    def _recommend(self):
        states = self.channels[0].gather()
        return recommend_level(states, ENDPOINT, NUM_LEVELS)

    def _check(self):
        level, desired_by_shard = self._recommend()
        quorum = [
            entry["desired"]
            for entry in self.model.values()
            if not entry["held"]
        ]
        if not quorum:
            assert level is None, (
                f"recommendation {level} from an empty quorum"
            )
        else:
            expected = max(0, min(NUM_LEVELS - 1, max(quorum)))
            assert level == expected, (
                f"recommendation {level}, expected {expected} "
                f"from quorum {quorum}"
            )
        assert desired_by_shard == {
            index: entry["desired"] for index, entry in self.model.items()
        }
        return level

    def _publish(self, index):
        entry = self.model[index]
        self.channels[index].publish(
            {ENDPOINT: {
                "desired": entry["desired"],
                "applied": entry["desired"],
                "pressure": 0.5,
                "held": entry["held"],
            }}
        )

    # -- rules -------------------------------------------------------------
    @rule(index=shard_indexes, desired=desires)
    def join_or_update(self, index, desired):
        before, _ = self._recommend()
        is_new = index not in self.model
        held = self.model.get(index, {}).get("held", False)
        self.model[index] = {"desired": desired, "held": held}
        self._publish(index)
        after = self._check()
        if not held:
            clamped = max(0, min(NUM_LEVELS - 1, desired))
            assert after is not None and after >= clamped, (
                f"joining shard {index} desiring {desired} left the "
                f"recommendation at {after}"
            )
            if is_new and before is not None:
                # A *new* join only adds a vote to the max, never lowers
                # it.  (An update of an existing shard may lower it.)
                assert after >= before

    @rule(index=shard_indexes)
    def leave(self, index):
        if index not in self.model:
            return
        before, _ = self._recommend()
        del self.model[index]
        try:
            os.unlink(os.path.join(self.directory, f"qos-shard-{index}.json"))
        except FileNotFoundError:  # pragma: no cover
            pass
        after = self._check()
        if before is not None and after is not None:
            assert after <= before, (
                f"shard {index} leaving raised the recommendation "
                f"{before} -> {after}"
            )

    @rule(index=shard_indexes)
    def hold(self, index):
        if index not in self.model:
            return
        before, _ = self._recommend()
        self.model[index]["held"] = True
        self._publish(index)
        after = self._check()
        if before is not None and after is not None:
            assert after <= before, (
                f"holding shard {index} raised the recommendation"
            )

    @rule(index=shard_indexes)
    def release(self, index):
        if index not in self.model:
            return
        before, _ = self._recommend()
        self.model[index]["held"] = False
        self._publish(index)
        after = self._check()
        if before is not None:
            assert after is not None and after >= before, (
                f"releasing shard {index} lowered the recommendation"
            )

    def teardown(self):
        if hasattr(self, "directory"):
            shutil.rmtree(self.directory, ignore_errors=True)


TestCoordinatorMachine = CoordinatorMachine.TestCase
TestCoordinatorMachine.settings = STATE_MACHINE_SETTINGS
