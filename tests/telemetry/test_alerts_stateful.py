"""Stateful property test for the alert lifecycle.

Mirrors the QoS controller machine: a Hypothesis-driven sequence of
observed values and clock advances against one :class:`AlertEngine`,
with shadow *lower bounds* on the breach/clear streaks.  Invariants:

- no fire before the value has breached continuously for ``for_s``
  (tracked via the last instant the value was *not* breached);
- no resolve before the value has cleared continuously for
  ``clear_for_s``;
- no transition (either direction) within ``cooldown_s`` of the last;
- a fire only happens while not firing, a resolve only while firing;
- after a sustained definitely-clear signal, a firing alert resolves.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.telemetry.alerts import AlertEngine
from repro.telemetry.bus import Event
from tests.strategies import STATE_MACHINE_SETTINGS, alert_rules, rule_values


def _event(value: float) -> Event:
    return Event(
        "endpoint_health", at=0.0, source={"pid": 1}, seq=0,
        data={"endpoint": "e", "value": value},
    )


class AlertMachine(RuleBasedStateMachine):
    @initialize(alert=alert_rules())
    def setup(self, alert):
        self.now = 0.0
        self.alert_rule = alert
        self.engine = AlertEngine([alert], clock=lambda: self.now)
        self.firing = False
        self.last_transition_at: float | None = None
        # Shadow lower bounds: the most recent instant at which the value
        # was observed NOT breached / NOT cleared.  The true streaks can
        # only have started after these, so they bound sustain from below.
        self.last_not_breached_at: float | None = None
        self.last_not_cleared_at: float | None = None
        self.saw_any_value = False

    @rule(delta=st.floats(min_value=0.0, max_value=2.0,
                          allow_nan=False, allow_infinity=False))
    def advance(self, delta):
        self.now += delta

    @rule(value=rule_values())
    def observe(self, value):
        emitted = self.engine.consume(_event(value))
        breached = self.alert_rule.breached(value)
        cleared = self.alert_rule.cleared(value)
        if not self.saw_any_value:
            # The streak clocks can only start at the first observation.
            self.last_not_breached_at = self.now
            self.last_not_cleared_at = self.now
            self.saw_any_value = True

        assert len(emitted) <= 1
        for alert in emitted:
            if self.last_transition_at is not None:
                assert (self.now - self.last_transition_at
                        >= self.alert_rule.cooldown_s)
            if alert["status"] == "firing":
                assert not self.firing
                assert breached
                assert (self.now - self.last_not_breached_at
                        >= self.alert_rule.for_s)
                self.firing = True
            else:
                assert alert["status"] == "resolved"
                assert self.firing
                assert cleared
                assert (self.now - self.last_not_cleared_at
                        >= self.alert_rule.clear_for_s)
                self.firing = False
            self.last_transition_at = self.now

        # Update the shadow bounds *after* the asserts: the engine judged
        # this observation against streaks that existed before it.
        if not breached:
            self.last_not_breached_at = self.now
        if not cleared:
            self.last_not_cleared_at = self.now

    @rule()
    def recovery_resolves(self):
        """A sustained, definitely-clear signal always resolves."""
        if not self.firing:
            return
        clear = (
            self.alert_rule.threshold
            if self.alert_rule.clear_threshold is None
            else self.alert_rule.clear_threshold
        )
        clear_value = clear + 1.0 if self.alert_rule.below else clear - 1.0
        self.observe(clear_value)
        self.advance(0.0)
        self.now += max(self.alert_rule.cooldown_s,
                        self.alert_rule.clear_for_s) + 1.0
        self.observe(clear_value)
        assert not self.firing

    @rule()
    def active_matches_shadow(self):
        active = self.engine.active()
        assert len(active) == (1 if self.firing else 0)


TestAlertMachine = AlertMachine.TestCase
TestAlertMachine.settings = STATE_MACHINE_SETTINGS
