"""Alert routing and silence windows (PR 10 satellites).

Routing: named sinks, first-matching-route-wins, unmatched alerts go to
*every* sink (a narrow route for one noisy rule never silences the
rest).  Silencing: wall-clock windows shared through the history
store's silence document, so `repro.cli alerts --silence` in one
process reaches a live engine in another.
"""

from __future__ import annotations

import time

import pytest

from repro.telemetry.alerts import (
    AlertEngine,
    AlertHistoryStore,
    AlertRule,
    SinkRoute,
)
from repro.telemetry.bus import Event


def event(type, at=0.0, source=None, seq=0, **data):
    return Event(type, at=at, source=source or {"pid": 1}, seq=seq, data=data)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class RecordingSink:
    def __init__(self):
        self.alerts: list[dict] = []

    def deliver(self, alert: dict) -> None:
        self.alerts.append(alert)

    __call__ = deliver


def _rule(name, severity="warning", **overrides):
    params = dict(
        name=name, field="pressure", threshold=0.9, clear_threshold=0.5,
        for_s=0.0, clear_for_s=0.0, cooldown_s=0.0, severity=severity,
    )
    params.update(overrides)
    return AlertRule(**params)


def _fire(engine, clock, rule_field="pressure", value=0.95, at=1.0):
    clock.now = at
    return engine.consume(event("endpoint_health", endpoint="e",
                                **{rule_field: value}))


# -- SinkRoute -------------------------------------------------------------

def test_route_matching_by_glob_and_severity():
    route = SinkRoute(rule="replica_*", severity="critical", sinks=("pager",))
    assert route.matches({"rule": "replica_loss", "severity": "critical"})
    assert not route.matches({"rule": "replica_loss", "severity": "warning"})
    assert not route.matches({"rule": "overload", "severity": "critical"})
    assert SinkRoute().matches({"rule": "anything", "severity": "info"})


def test_route_from_dict_rejects_unknown_fields():
    route = SinkRoute.from_dict(
        {"rule": "overload", "sinks": ["webhook", "log"]}
    )
    assert route.sinks == ("webhook", "log")
    assert route.describe()["sinks"] == ["webhook", "log"]
    with pytest.raises(ValueError, match="unknown sink route fields"):
        SinkRoute.from_dict({"rule": "x", "url": "http://nope"})


# -- engine routing --------------------------------------------------------

def test_first_matching_route_wins_and_unmatched_goes_everywhere():
    pager, log = RecordingSink(), RecordingSink()
    clock = FakeClock()
    engine = AlertEngine(
        [_rule("critical_rule", severity="critical"),
         _rule("noisy_rule", severity="warning", field="queue_age")],
        clock=clock,
        sinks={"pager": pager, "log": log},
        routes=[
            {"rule": "critical_*", "sinks": ["pager", "log"]},
            {"rule": "critical_*", "sinks": []},  # shadowed: first wins
            {"rule": "noisy_*", "sinks": ["log"]},
        ],
    )
    _fire(engine, clock)  # critical_rule -> both sinks
    assert [a["rule"] for a in pager.alerts] == ["critical_rule"]
    assert [a["rule"] for a in log.alerts] == ["critical_rule"]

    _fire(engine, clock, rule_field="queue_age", at=2.0)  # noisy -> log only
    assert [a["rule"] for a in pager.alerts] == ["critical_rule"]
    assert [a["rule"] for a in log.alerts] == ["critical_rule", "noisy_rule"]


def test_unrouted_alert_fans_out_to_all_sinks():
    pager, log = RecordingSink(), RecordingSink()
    clock = FakeClock()
    engine = AlertEngine(
        [_rule("overload")],
        clock=clock,
        sinks={"pager": pager, "log": log},
        routes=[{"rule": "replica_*", "sinks": ["pager"]}],  # no match
    )
    _fire(engine, clock)
    assert len(pager.alerts) == 1 and len(log.alerts) == 1


def test_empty_sinks_route_is_bus_only():
    published, sink = [], RecordingSink()
    clock = FakeClock()
    engine = AlertEngine(
        [_rule("noisy")],
        clock=clock,
        publish=lambda type, **data: published.append((type, data)),
        sinks={"webhook": sink},
        routes=[{"rule": "noisy", "sinks": []}],
    )
    _fire(engine, clock)
    assert sink.alerts == []  # sink suppressed...
    assert [t for t, _ in published] == ["alert_fired"]  # ...bus still told


def test_legacy_iterable_sinks_are_auto_named():
    sink = RecordingSink()
    clock = FakeClock()
    engine = AlertEngine([_rule("overload")], clock=clock, sinks=[sink])
    assert list(engine._sinks) == ["sink0"]  # named, so routes can target it
    _fire(engine, clock)
    assert len(sink.alerts) == 1


# -- silence windows -------------------------------------------------------

def test_silenced_rule_skips_sinks_but_keeps_state_and_history():
    sink = RecordingSink()
    published = []
    clock = FakeClock()
    engine = AlertEngine(
        [_rule("overload")],
        clock=clock,
        publish=lambda type, **data: published.append(type),
        sinks={"log": sink},
    )
    engine.silence("overload", 60.0)
    fired = _fire(engine, clock)
    assert [a["silenced"] for a in fired] == [True]
    assert sink.alerts == [] and published == []
    # The state machine advanced: the rule is genuinely firing.
    assert engine.fired_total == 1 and engine.silenced_total == 1
    assert [a["rule"] for a in engine.active()] == ["overload"]
    assert engine.history()[-1]["silenced"] is True

    # Resolution during the window is silenced too; after it lapses,
    # a fresh fire reaches the sink again.
    clock.now = 2.0
    engine.consume(event("endpoint_health", endpoint="e", pressure=0.1))
    engine._silences.clear()  # the window lapses
    clock.now = 3.0
    engine.consume(event("endpoint_health", endpoint="e", pressure=0.95))
    assert [a["rule"] for a in sink.alerts] == ["overload"]


def test_silences_snapshot_prunes_expired_windows():
    engine = AlertEngine([_rule("overload")], clock=FakeClock())
    deadline = engine.silence("overload", 30.0)
    assert deadline == pytest.approx(time.time() + 30.0, abs=2.0)
    assert "overload" in engine.silences()
    assert engine.snapshot()["silences"]["overload"] == pytest.approx(
        deadline
    )
    engine._silences["overload"] = time.time() - 1.0
    assert engine.silences() == {}


def test_silence_document_crosses_processes(tmp_path):
    # Writer (the CLI's role) and a live engine share the directory.
    writer_store = AlertHistoryStore(str(tmp_path))
    writer_store.save_silences({"overload": time.time() + 60.0})

    sink = RecordingSink()
    clock = FakeClock()
    engine_store = AlertHistoryStore(str(tmp_path))
    engine = AlertEngine(
        [_rule("overload")], clock=clock,
        sinks={"log": sink}, store=engine_store,
    )
    try:
        fired = _fire(engine, clock)
        assert fired and fired[0].get("silenced") is True
        assert sink.alerts == []
    finally:
        engine_store.close()
        writer_store.close()


def test_save_silences_merges_with_max_deadline(tmp_path):
    store = AlertHistoryStore(str(tmp_path))
    try:
        near = time.time() + 10.0
        far = time.time() + 100.0
        store.save_silences({"overload": far, "stale": time.time() - 5.0})
        store.save_silences({"overload": near})  # shorter must not clobber
        loaded = store.load_silences()
        assert loaded["overload"] == pytest.approx(far)
        assert "stale" not in loaded
    finally:
        store.close()
