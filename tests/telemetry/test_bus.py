"""Telemetry bus: ordering, bounded buffers, spool round trips, fork."""

import json
import os

from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry.bus import (
    Event,
    EventSpool,
    SpoolFollower,
    TelemetryBus,
    pid_alive,
)
from tests.strategies import QUICK_SETTINGS


def test_publish_is_inert_without_consumers():
    bus = TelemetryBus()
    assert not bus.active
    assert bus.publish("anything", value=1) is None


def test_subscription_receives_events_in_publish_order():
    bus = TelemetryBus(role="test")
    subscription = bus.subscribe(maxlen=64)
    for index in range(10):
        bus.publish("tick", index=index)
    events = subscription.drain()
    assert [event.data["index"] for event in events] == list(range(10))
    assert [event.seq for event in events] == list(range(1, 11))
    assert all(event.type == "tick" for event in events)
    assert all(event.source["pid"] == os.getpid() for event in events)


def test_type_filtered_subscription():
    bus = TelemetryBus()
    subscription = bus.subscribe(types={"wanted"})
    bus.publish("wanted", a=1)
    bus.publish("ignored", a=2)
    bus.publish("wanted", a=3)
    assert [event.data["a"] for event in subscription.drain()] == [1, 3]


def test_callback_subscriber_and_error_isolation():
    bus = TelemetryBus()
    seen = []

    def boom(event):
        raise RuntimeError("consumer bug")

    bus.subscribe(callback=boom)
    bus.subscribe(callback=seen.append)
    event = bus.publish("tick")
    assert event is not None
    assert [e.seq for e in seen] == [1]  # the broken consumer broke nothing


@given(
    maxlen=st.integers(min_value=1, max_value=16),
    count=st.integers(min_value=0, max_value=64),
)
@QUICK_SETTINGS
def test_bounded_buffer_evicts_oldest(maxlen, count):
    bus = TelemetryBus()
    subscription = bus.subscribe(maxlen=maxlen)
    for index in range(count):
        bus.publish("tick", index=index)
    events = subscription.drain()
    # The newest min(count, maxlen) events survive, oldest first.
    expected = list(range(count))[-maxlen:]
    assert [event.data["index"] for event in events] == expected
    assert subscription.dropped == max(0, count - maxlen)
    subscription.close()
    assert not bus.active  # last consumer gone -> publish is inert again


def test_event_json_round_trip():
    event = Event("t", at=123.5, source={"pid": 7, "role": "x"}, seq=3,
                  data={"a": [1, 2], "b": "s"})
    clone = Event.from_json(event.to_json())
    assert clone.describe() == event.describe()


def test_spool_round_trip(tmp_path):
    bus = TelemetryBus(role="writer")
    bus.attach_spool(str(tmp_path), role="writer")
    for index in range(5):
        bus.publish("tick", index=index)
    follower = SpoolFollower(str(tmp_path))
    events = follower.poll()
    assert [event.data["index"] for event in events] == list(range(5))
    # Incremental: a second poll sees only what was appended since.
    assert follower.poll() == []
    bus.publish("tick", index=5)
    assert [event.data["index"] for event in follower.poll()] == [5]
    bus.detach_spool()


def test_spool_ignores_torn_tail_and_junk(tmp_path):
    spool = EventSpool(str(tmp_path), role="w")
    spool.append(Event("a", 1.0, {"pid": 1}, 1, {}))
    follower = SpoolFollower(str(tmp_path))
    assert len(follower.poll()) == 1
    # A writer mid-line: the partial line must not be consumed yet.
    with open(spool.path, "a", encoding="utf-8") as handle:
        handle.write('{"type":"b","at":2.0,"so')
    assert follower.poll() == []
    with open(spool.path, "a", encoding="utf-8") as handle:
        handle.write('urce":{},"seq":2,"data":{}}\n')
        handle.write("not json at all\n")
    events = follower.poll()
    assert [event.type for event in events] == ["b"]  # junk line skipped
    spool.close()


def test_spool_rotation_keeps_events_readable(tmp_path):
    spool = EventSpool(str(tmp_path), role="w", rotate_bytes=400)
    follower = SpoolFollower(str(tmp_path))
    total = 24
    seen = []
    for index in range(total):
        spool.append(Event("tick", float(index), {"pid": 1}, index, {"i": index}))
        seen.extend(event.data["i"] for event in follower.poll())
    seen.extend(event.data["i"] for event in follower.poll())
    assert seen == list(range(total))
    names = sorted(os.listdir(tmp_path))
    assert any(name.endswith(".jsonl.old") for name in names)
    spool.close()


def test_spool_follower_skips_basenames(tmp_path):
    own = EventSpool(str(tmp_path), role="own")
    peer = EventSpool(str(tmp_path), role="peer")
    own.append(Event("mine", 1.0, {"pid": os.getpid()}, 1, {}))
    peer.append(Event("theirs", 2.0, {"pid": 0}, 1, {}))
    follower = SpoolFollower(
        str(tmp_path), skip_basenames={os.path.basename(own.path)}
    )
    assert [event.type for event in follower.poll()] == ["theirs"]
    own.close()
    peer.close()


def test_spool_round_trip_across_fork(tmp_path):
    """A forked child publishes into its own per-pid file, same directory."""
    if not hasattr(os, "fork"):  # pragma: no cover - platform
        import pytest

        pytest.skip("fork unavailable")
    bus = TelemetryBus(role="parent")
    bus.attach_spool(str(tmp_path), role="sweep")
    bus.subscribe(maxlen=8)  # a parent-side consumer the child must drop
    bus.publish("parent_event", stage="before-fork")
    pid = os.fork()
    if pid == 0:
        # Child: inherited subscribers dropped, spool kept and re-homed.
        try:
            bus.reset_after_fork(role="child")
            bus.publish("child_event", stage="in-child")
            os._exit(0)
        except BaseException:  # pragma: no cover - diagnosed via exit code
            os._exit(1)
    _, status = os.waitpid(pid, 0)
    assert os.waitstatus_to_exitcode(status) == 0
    bus.publish("parent_event", stage="after-fork")
    events = SpoolFollower(str(tmp_path)).poll()
    by_type = {}
    for event in events:
        by_type.setdefault(event.type, []).append(event)
    assert len(by_type["parent_event"]) == 2
    assert len(by_type["child_event"]) == 1
    child_event = by_type["child_event"][0]
    assert child_event.source["pid"] == pid
    assert child_event.source["role"] == "child"
    # Two distinct per-pid spool files exist.
    files = [n for n in os.listdir(tmp_path) if n.endswith(".jsonl")]
    assert len(files) == 2
    bus.detach_spool()


def test_pid_alive():
    assert pid_alive(os.getpid())
    assert not pid_alive(0)
    # Spawn-and-reap: a just-dead pid reads as dead.
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    assert not pid_alive(pid)


def test_source_configuration_stamps_events():
    bus = TelemetryBus(role="serve")
    bus.configure_source(shard=3)
    subscription = bus.subscribe()
    bus.publish("tick")
    event = subscription.get(timeout=1.0)
    assert event.source["role"] == "serve"
    assert event.source["shard"] == 3


def test_spool_document_is_one_json_per_line(tmp_path):
    bus = TelemetryBus(role="w")
    bus.attach_spool(str(tmp_path), role="w")
    bus.publish("a", x=1)
    bus.publish("b", y="two")
    path = bus.spool_path
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert len(lines) == 2
    assert [json.loads(line)["type"] for line in lines] == ["a", "b"]
    bus.detach_spool()


def test_spool_corrupt_lines_are_counted_not_fatal(tmp_path):
    spool = EventSpool(str(tmp_path), role="w")
    spool.append(Event("a", 1.0, {"pid": 1}, 1, {}))
    follower = SpoolFollower(str(tmp_path))
    assert len(follower.poll()) == 1
    assert follower.stats() == {"corrupt_lines": 0, "corrupt_by_file": {}}
    with open(spool.path, "ab") as handle:
        handle.write(b"\xff\xfebinary junk\n")  # undecodable
        handle.write(b"[1, 2, 3]\n")  # valid JSON, not an object
        handle.write(b'{"no":"type field"}\n')  # object, wrong shape
        handle.write(b'{"type":"c","at":3.0,"source":{},"seq":3,"data":{}}\n')
    events = follower.poll()
    # The good line after the damage is still delivered...
    assert [event.type for event in events] == ["c"]
    # ...and every skipped line is on the books, attributed to its file.
    stats = follower.stats()
    assert stats["corrupt_lines"] == 3
    assert stats["corrupt_by_file"] == {os.path.basename(spool.path): 3}
    # Counters are cumulative across polls, not reset by them.
    spool.append(Event("d", 4.0, {"pid": 1}, 4, {}))
    assert [event.type for event in follower.poll()] == ["d"]
    assert follower.stats()["corrupt_lines"] == 3
    spool.close()


def test_spool_truncated_mid_line_resumes_at_next_newline(tmp_path):
    spool = EventSpool(str(tmp_path), role="w")
    for index in range(3):
        spool.append(Event("tick", float(index), {"pid": 1}, index, {"i": index}))
    follower = SpoolFollower(str(tmp_path))
    assert len(follower.poll()) == 3
    # A fault truncates the file mid-line below the follower's offset and
    # the writer appends again before the next poll, so the size grows
    # *past* the stored offset and the shrink is invisible.  The follower
    # seeks into the middle of the new line: that damaged window is lost
    # (counted corrupt), but the follower resyncs at its newline and
    # everything appended afterwards flows again.
    os.truncate(spool.path, os.path.getsize(spool.path) - 7)
    spool.append(Event("during", 9.0, {"pid": 1}, 9, {}))
    assert follower.poll() == []
    assert follower.stats()["corrupt_lines"] >= 1
    spool.append(Event("after", 10.0, {"pid": 1}, 10, {}))
    assert [event.type for event in follower.poll()] == ["after"]
    spool.close()
