"""Cross-shard QoS coordination: quorum recommendation, governor follow.

Everything here is socket-free: shard channels are plain files in a tmp
directory, governors run against stub pools/admission/batchers, and time
is a fake clock -- the convergence properties the sharded e2e test relies
on are pinned deterministically.
"""

import json
import os
import time
from types import SimpleNamespace

import pytest

from repro.eval.throttle import OperatingLadder, OperatingPoint
from repro.serve.qos import EndpointGovernor, QoSConfig, QoSController
from repro.telemetry.coordinator import (
    QoSCoordinator,
    ShardStateChannel,
    recommend_level,
)


def make_coordinator(tmp_path, index, count=2, stale_after_s=5.0):
    return QoSCoordinator(
        ShardStateChannel(str(tmp_path), index, count),
        stale_after_s=stale_after_s,
    )


# ---------------------------------------------------------------------------
# Channel + pure recommendation
# ---------------------------------------------------------------------------


def test_channel_publish_and_gather(tmp_path):
    a = ShardStateChannel(str(tmp_path), 0, 2)
    b = ShardStateChannel(str(tmp_path), 1, 2)
    a.publish({"m": {"desired": 2, "applied": 0, "held": False}})
    b.publish({"m": {"desired": 0, "applied": 0, "held": False}})
    states = a.gather()
    assert sorted(states) == [0, 1]
    assert states[0]["endpoints"]["m"]["desired"] == 2


def test_gather_excludes_stale_and_dead_documents(tmp_path):
    live = ShardStateChannel(str(tmp_path), 0, 3)
    live.publish({"m": {"desired": 1}})
    # Shard 1: stale timestamp AND a dead pid -> excluded.
    with open(tmp_path / "qos-shard-1.json", "w", encoding="utf-8") as handle:
        json.dump(
            {"shard": 1, "pid": 0, "published_at": time.time() - 60.0,
             "endpoints": {"m": {"desired": 2}}},
            handle,
        )
    # Shard 2: fresh timestamp, live pid -> included.
    with open(tmp_path / "qos-shard-2.json", "w", encoding="utf-8") as handle:
        json.dump(
            {"shard": 2, "pid": os.getpid(), "published_at": time.time(),
             "endpoints": {"m": {"desired": 0}}},
            handle,
        )
    states = live.gather()
    assert sorted(states) == [0, 2]


def test_recommend_level_is_max_over_non_held_shards():
    states = {
        0: {"endpoints": {"m": {"desired": 2, "held": False}}},
        1: {"endpoints": {"m": {"desired": 0, "held": False}}},
    }
    level, desired = recommend_level(states, "m", num_levels=4)
    assert level == 2
    assert desired == {0: 2, 1: 0}
    # A held shard publishes its pin for visibility but has no vote.
    states[0]["endpoints"]["m"]["held"] = True
    level, desired = recommend_level(states, "m", num_levels=4)
    assert level == 0
    assert desired == {0: 2, 1: 0}
    # No shard reports the endpoint at all: nothing to coordinate.
    assert recommend_level(states, "ghost", num_levels=4) == (None, {})
    # Every shard held: no quorum either.
    states[1]["endpoints"]["m"]["held"] = True
    assert recommend_level(states, "m", num_levels=4)[0] is None


def test_recommendation_clamped_to_ladder(tmp_path):
    a = make_coordinator(tmp_path, 0)
    a.update("m", desired=7, applied=0)
    a.flush()
    assert a.recommendation("m", num_levels=3) == 2


def test_coordinator_two_shards_converge(tmp_path):
    a = make_coordinator(tmp_path, 0)
    b = make_coordinator(tmp_path, 1)
    a.update("m", desired=2, applied=0, pressure=0.9)
    b.update("m", desired=0, applied=0, pressure=0.1)
    a.flush()
    b.flush()
    # Both shards deterministically compute the same recommendation.
    assert a.recommendation("m", num_levels=3) == 2
    assert b.recommendation("m", num_levels=3) == 2
    # The overloaded shard calms down: recovery needs *everyone* calm.
    a.update("m", desired=1, applied=2, pressure=0.4)
    a.flush()
    assert a.recommendation("m", num_levels=3) == 1
    assert b.recommendation("m", num_levels=3) == 1
    a.update("m", desired=0, applied=1, pressure=0.1)
    a.flush()
    assert b.recommendation("m", num_levels=3) == 0


def test_coordinator_snapshot(tmp_path):
    a = make_coordinator(tmp_path, 0)
    b = make_coordinator(tmp_path, 1)
    a.update("m", desired=1, applied=1, pressure=0.8)
    a.flush()
    b.update("m", desired=0, applied=0, pressure=0.0)
    b.flush()
    a.recommendation("m", num_levels=3)
    snapshot = a.snapshot()
    assert snapshot["shard"] == 0
    assert snapshot["live_shards"] == [0, 1]
    assert snapshot["endpoints"]["m"]["0"]["desired"] == 1
    assert snapshot["recommendations"] == {"m": 1}


# ---------------------------------------------------------------------------
# Governor integration (socket-free, fake clock)
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


class StubMetrics:
    def __init__(self, budget_ms=0.0):
        self.rejected_requests = 0
        self.latency_budget_ms = budget_ms
        self.levels = []
        self.transitions = []

    def recent_p99(self):
        return 0.0

    def set_operating_point(self, level, description):
        self.levels.append(level)

    def record_transition(self, transition):
        self.transitions.append(transition)


class StubPool:
    def __init__(self, ladder):
        self._ladder = ladder
        self.level = 0
        self.applied = []

    def set_operating_point(self, endpoint, level):
        self.level = level
        self.applied.append((endpoint, level))
        return self._ladder[level]

    def current_level(self, endpoint):
        return self.level

    def ladder(self, endpoint):
        return self._ladder


class StubAdmission(SimpleNamespace):
    def __init__(self, pressure=0.0):
        super().__init__(pressure=pressure)
        self.prices = []

    def set_price(self, price):
        self.prices.append(price)


def stub_ladder(levels=3):
    return OperatingLadder(
        tuple(
            OperatingPoint(
                level=level,
                slowed_layers=(),
                threads={"l0": 4},
                expected_speedup=1.0 + level,  # rung L is (L+1)x faster
                expected_mse=float(level),
            )
            for level in range(levels)
        )
    )


CONFIG = QoSConfig(
    degrade_pressure=0.75,
    recover_pressure=0.35,
    degrade_after_s=0.5,
    recover_after_s=2.0,
    cooldown_s=1.0,
)


def make_governor(tmp_path, shard, clock, pressure, count=2):
    ladder = stub_ladder()
    pool = StubPool(ladder)
    admission = StubAdmission(pressure=pressure)
    governor = EndpointGovernor(
        endpoint="m",
        pool=pool,
        admission=admission,
        batcher=SimpleNamespace(pending_images=0, max_batch=4,
                                oldest_pending_age=lambda: 0.0),
        metrics=StubMetrics(),
        controller=QoSController(len(ladder), config=CONFIG, clock=clock),
        coordinator=make_coordinator(tmp_path, shard, count),
    )
    return governor, pool, admission


def test_two_fake_shards_converge_to_one_rung(tmp_path):
    """One overloaded shard degrades both; recovery needs both calm."""
    clock = FakeClock()
    hot, hot_pool, hot_admission = make_governor(tmp_path, 0, clock, 0.95)
    calm, calm_pool, _ = make_governor(tmp_path, 1, clock, 0.10)

    assert hot.tick() is None and calm.tick() is None  # streaks start
    clock.advance(0.6)
    hot_transition = hot.tick()
    calm_transition = calm.tick()
    assert hot_transition is not None and hot_transition.to_level == 1
    # The calm shard follows the quorum although its own signal is calm.
    assert calm_transition is not None and calm_transition.to_level == 1
    assert "coordinator" in calm_transition.reason
    assert hot_pool.level == calm_pool.level == 1

    # Rung-aware admission repriced on both shards: rung 1 is 2x the top
    # rung's speedup, so each image now costs half an admission slot.
    assert hot_admission.prices[-1] == pytest.approx(0.5)

    # Overload ends on shard 0: both recover only once *it* desires up.
    hot.admission.pressure = 0.10
    clock.advance(1.1)  # past cooldown; calm streaks start
    assert hot.tick() is None and calm.tick() is None
    clock.advance(2.1)  # calm sustained past recover_after_s
    hot_recovery = hot.tick()
    calm_recovery = calm.tick()
    assert hot_recovery is not None and hot_recovery.to_level == 0
    assert calm_recovery is not None and calm_recovery.to_level == 0
    assert hot_pool.level == calm_pool.level == 0


def test_calm_shard_never_drags_quorum_down(tmp_path):
    """A single calm shard cannot recover while the peer still desires."""
    clock = FakeClock()
    hot, hot_pool, _ = make_governor(tmp_path, 0, clock, 0.95)
    calm, calm_pool, _ = make_governor(tmp_path, 1, clock, 0.10)
    hot.tick(), calm.tick()
    clock.advance(0.6)
    hot.tick(), calm.tick()
    assert calm_pool.level == 1
    # The calm shard's controller would recover alone, but the hot peer
    # still desires rung 1: the quorum holds both at 1.
    clock.advance(3.0)
    assert calm.tick() is None
    assert calm_pool.level == 1
    assert hot_pool.level == 1


def test_held_shard_keeps_pin_and_loses_vote(tmp_path):
    clock = FakeClock()
    hot, hot_pool, _ = make_governor(tmp_path, 0, clock, 0.95)
    calm, calm_pool, _ = make_governor(tmp_path, 1, clock, 0.10)
    # Operator pins shard 1 at rung 2 with a hold.
    forced = calm.force(2, hold=True)
    assert forced is not None and calm_pool.level == 2
    hot.tick(), calm.tick()
    clock.advance(0.6)
    hot.tick()
    calm.tick()
    # The held shard ignored the quorum (stays pinned at 2); the hot shard
    # walked to 1 on its own desire (the held peer has no vote).
    assert calm_pool.level == 2
    assert hot_pool.level == 1
    # Releasing the hold re-joins the quorum: the next tick follows it
    # (the stale forced desire must not drag the peers up to rung 2).
    calm.release()
    transition = calm.tick()
    assert transition is not None and transition.to_level == 1
    assert calm_pool.level == 1


def test_solo_governor_without_peer_state_acts_locally(tmp_path):
    """recommendation() None (empty quorum) falls back to local control."""
    clock = FakeClock()
    governor, pool, _ = make_governor(tmp_path, 0, clock, 0.95, count=1)
    # Sabotage the channel so even our own publish never lands.
    governor.coordinator.channel.directory = str(tmp_path / "missing")
    governor.coordinator.channel.publish = lambda endpoints: None
    governor.tick()
    clock.advance(0.6)
    transition = governor.tick()
    assert transition is not None and transition.to_level == 1
    assert pool.level == 1
