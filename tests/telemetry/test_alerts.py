"""Alert engine: rule lifecycle, sinks, and ring-file history."""

from __future__ import annotations

import http.server
import json
import os
import threading

import pytest

from repro.telemetry.alerts import (
    ALERT_EVENT_TYPES,
    AlertEngine,
    AlertHistoryStore,
    AlertRule,
    WebhookSink,
    default_rules,
    probe_rule,
)
from repro.telemetry.bus import Event, SpoolWriter, TelemetryBus


def event(type, at=0.0, source=None, seq=0, **data):
    return Event(type, at=at, source=source or {"pid": 1}, seq=seq, data=data)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


RULE = AlertRule(
    name="overload",
    field="pressure",
    threshold=0.9,
    clear_threshold=0.5,
    for_s=1.0,
    clear_for_s=1.0,
    cooldown_s=2.0,
)


def engine_with(rule=RULE, **kwargs):
    clock = FakeClock()
    return AlertEngine([rule], clock=clock, **kwargs), clock


# ---------------------------------------------------------------------------
# Rule lifecycle
# ---------------------------------------------------------------------------


def test_fire_requires_sustained_breach_then_resolves():
    engine, clock = engine_with()
    assert engine.consume(event("endpoint_health",
                                endpoint="e", pressure=0.95)) == []
    clock.now = 0.5  # breached, but not for for_s yet
    assert engine.consume(event("endpoint_health",
                                endpoint="e", pressure=0.95)) == []
    clock.now = 1.0
    fired = engine.consume(event("endpoint_health",
                                 endpoint="e", pressure=0.97))
    assert [a["status"] for a in fired] == ["firing"]
    assert fired[0]["rule"] == "overload" and fired[0]["key"] == "e"
    assert engine.active() and engine.fired_total == 1
    # Clear streak starts; resolve only after clear_for_s (and cooldown).
    clock.now = 3.0
    assert engine.consume(event("endpoint_health",
                                endpoint="e", pressure=0.1)) == []
    clock.now = 4.0
    resolved = engine.consume(event("endpoint_health",
                                    endpoint="e", pressure=0.1))
    assert [a["status"] for a in resolved] == ["resolved"]
    assert resolved[0]["duration_s"] == pytest.approx(3.0)
    assert engine.active() == [] and engine.resolved_total == 1


def test_dead_band_resets_both_streaks():
    engine, clock = engine_with()
    for step in range(8):
        clock.now = 0.6 * step
        # Alternate breach / dead-band: the breach streak never reaches
        # for_s=1.0 continuously, so the rule must never fire.
        pressure = 0.95 if step % 2 == 0 else 0.7
        assert engine.consume(
            event("endpoint_health", endpoint="e", pressure=pressure)
        ) == []
    assert engine.fired_total == 0


def test_cooldown_blocks_refire():
    rule = AlertRule(name="r", field="v", threshold=1.0, for_s=0.0,
                     clear_for_s=0.0, cooldown_s=5.0, key_fields=())
    engine, clock = engine_with(rule)
    assert engine.consume(event("endpoint_health", v=2.0))[0]["status"] == \
        "firing"
    clock.now = 1.0
    assert engine.consume(event("endpoint_health", v=0.0)) == []  # cooldown
    clock.now = 5.0
    assert engine.consume(event("endpoint_health", v=0.0))[0]["status"] == \
        "resolved"
    clock.now = 6.0
    assert engine.consume(event("endpoint_health", v=2.0)) == []  # cooldown
    clock.now = 10.0
    assert engine.consume(event("endpoint_health", v=2.0))[0]["status"] == \
        "firing"
    assert engine.fired_total == 2


def test_dedup_keys_are_independent():
    engine, clock = engine_with()
    clock.now = 0.0
    engine.consume(event("endpoint_health", endpoint="a", pressure=0.95))
    engine.consume(event("endpoint_health", endpoint="b", pressure=0.1))
    clock.now = 1.0
    fired = engine.consume(event("endpoint_health",
                                 endpoint="a", pressure=0.95))
    assert [a["key"] for a in fired] == ["a"]
    active = engine.active()
    assert [(a["rule"], a["key"]) for a in active] == [("overload", "a")]


def test_divide_by_ratio_and_missing_fields():
    rule = AlertRule(name="slo", field="recent_p99_ms",
                     divide_by="latency_budget_ms", threshold=1.0,
                     for_s=0.0, cooldown_s=0.0)
    engine, clock = engine_with(rule)
    # Missing denominator / zero denominator / missing field: no evaluation.
    assert engine.consume(event("endpoint_health", endpoint="e",
                                recent_p99_ms=50.0)) == []
    assert engine.consume(event("endpoint_health", endpoint="e",
                                recent_p99_ms=50.0,
                                latency_budget_ms=0.0)) == []
    assert engine.consume(event("endpoint_health", endpoint="e")) == []
    fired = engine.consume(event("endpoint_health", endpoint="e",
                                 recent_p99_ms=150.0,
                                 latency_budget_ms=100.0))
    assert fired and fired[0]["value"] == pytest.approx(1.5)


def test_below_rule_and_dotted_path():
    rule = AlertRule(name="starved", field="replicas.live", threshold=1.0,
                     below=True, clear_threshold=2.0, for_s=0.0,
                     clear_for_s=0.0, cooldown_s=0.0)
    engine, clock = engine_with(rule)
    fired = engine.consume(event("endpoint_health", endpoint="e",
                                 replicas={"live": 0}))
    assert fired[0]["status"] == "firing"
    clock.now = 1.0
    # 2 is not *strictly above* clear_threshold=2.0: dead band, no resolve.
    assert engine.consume(event("endpoint_health", endpoint="e",
                                replicas={"live": 2})) == []
    resolved = engine.consume(event("endpoint_health", endpoint="e",
                                    replicas={"live": 3}))
    assert resolved[0]["status"] == "resolved"


def test_rule_validation_and_from_dict_roundtrip():
    with pytest.raises(ValueError):
        AlertRule(name="bad", event_type="alert_fired")
    with pytest.raises(ValueError):
        AlertRule(name="bad", threshold=1.0, clear_threshold=2.0)
    with pytest.raises(ValueError):
        AlertRule(name="bad", below=True, threshold=2.0, clear_threshold=1.0)
    with pytest.raises(ValueError):
        AlertRule.from_dict({"name": "x", "not_a_field": 1})
    for rule in default_rules() + [probe_rule(1.0)]:
        clone = AlertRule.from_dict(json.loads(json.dumps(rule.describe())))
        assert clone == rule


def test_default_count_rules_resolve_from_zero():
    """Integer-count rules (failed replicas, probe failures, corruption
    deltas) must resolve once the count returns to exactly zero."""
    by_name = {rule.name: rule for rule in default_rules()}
    rule = by_name["replica_failed"]
    engine, clock = engine_with(rule)
    fired = engine.consume(event("endpoint_health", endpoint="e",
                                 replicas={"failed": 1}))
    assert fired and fired[0]["status"] == "firing"
    clock.now = rule.cooldown_s + 0.1
    engine.consume(event("endpoint_health", endpoint="e",
                         replicas={"failed": 0}))
    clock.now += rule.clear_for_s + 0.1
    resolved = engine.consume(event("endpoint_health", endpoint="e",
                                    replicas={"failed": 0}))
    assert resolved and resolved[0]["status"] == "resolved"
    assert probe_rule(1.0).cleared(0.0)
    assert by_name["spool_corruption"].cleared(0.0)


def test_duplicate_rule_names_rejected():
    with pytest.raises(ValueError):
        AlertEngine([RULE, RULE])
    engine, _ = engine_with()
    with pytest.raises(ValueError):
        engine.add_rule(RULE)


# ---------------------------------------------------------------------------
# Bus integration (lifecycle events + relay recursion safety)
# ---------------------------------------------------------------------------


def test_engine_publishes_lifecycle_through_relay_without_recursion():
    from repro.telemetry.dashboard import EventRelay

    bus = TelemetryBus(role="test")
    relay = EventRelay(local_bus=bus)
    rule = AlertRule(name="r", field="v", threshold=1.0, for_s=0.0,
                     clear_for_s=0.0, cooldown_s=0.0, key_fields=())
    engine = AlertEngine([rule], publish=bus.publish, clock=FakeClock())
    relay.add_consumer(engine.consume)
    seen = []
    bus.subscribe(
        callback=lambda e: seen.append(e) if e.type in ALERT_EVENT_TYPES
        else None
    )
    bus.publish("endpoint_health", v=2.0)
    bus.publish("endpoint_health", v=0.0)
    assert [e.type for e in seen] == ["alert_fired", "alert_resolved"]
    # The aggregator folded the lifecycle into its snapshot.
    alerts = relay.snapshot()["alerts"]
    assert alerts["fired"] == 1 and alerts["resolved"] == 1
    assert alerts["active"] == []


def test_sink_errors_never_break_consumption():
    calls = []

    def bad_sink(alert):
        calls.append(alert)
        raise RuntimeError("sink exploded")

    rule = AlertRule(name="r", field="v", threshold=1.0, for_s=0.0,
                     cooldown_s=0.0, key_fields=())
    engine = AlertEngine([rule], sinks=[bad_sink], clock=FakeClock())
    fired = engine.consume(event("endpoint_health", v=2.0))
    assert fired and calls


# ---------------------------------------------------------------------------
# Webhook sink
# ---------------------------------------------------------------------------


class _Receiver(http.server.BaseHTTPRequestHandler):
    fail_first = 0

    def do_POST(self):  # noqa: N802 - stdlib naming
        length = int(self.headers.get("Content-Length", "0"))
        body = json.loads(self.rfile.read(length))
        server = self.server
        if server.failures_left > 0:
            server.failures_left -= 1
            self.send_response(500)
            self.end_headers()
            return
        server.received.append(body)
        self.send_response(200)
        self.end_headers()

    def log_message(self, *args):  # pragma: no cover - silence
        pass


@pytest.fixture
def receiver():
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _Receiver)
    server.received = []
    server.failures_left = 0
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()


def _wait_for(predicate, timeout_s=10.0):
    import time

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def test_webhook_sink_delivers_and_retries(receiver):
    url = f"http://127.0.0.1:{receiver.server_address[1]}/alerts"
    sink = WebhookSink(url, sleep=lambda seconds: None)
    receiver.failures_left = 2  # first two attempts 500, then succeed
    sink({"rule": "r", "key": "k", "status": "firing"})
    assert _wait_for(lambda: receiver.received)
    assert receiver.received[0]["rule"] == "r"
    stats = sink.stats()
    assert stats["delivered"] == 1 and stats["attempts"] == 3
    sink.close()


def test_webhook_sink_counts_terminal_failures(receiver):
    url = f"http://127.0.0.1:{receiver.server_address[1]}/alerts"
    sink = WebhookSink(url, sleep=lambda seconds: None)
    receiver.failures_left = 10**6  # never succeeds
    sink({"rule": "r", "key": "k", "status": "firing"})
    assert _wait_for(lambda: sink.stats()["failed"] == 1)
    assert receiver.received == []
    sink.close()


# ---------------------------------------------------------------------------
# History ring + restart survival
# ---------------------------------------------------------------------------


def test_history_store_filters_and_replays(tmp_path):
    store = AlertHistoryStore(str(tmp_path))
    store.record(event("endpoint_health", at=1.0, endpoint="e", pressure=0.5))
    store.record(event("batch_served", at=2.0, endpoint="e"))  # not persisted
    store.record(event("alert_fired", at=3.0, rule="r", key="e",
                       status="firing"))
    events = store.load(compact=False)
    assert [e.type for e in events] == ["endpoint_health", "alert_fired"]
    store.close()


def test_alert_history_survives_restart(tmp_path):
    bus = TelemetryBus(role="serve")
    store = AlertHistoryStore(str(tmp_path))
    bus.subscribe(callback=store.record)
    rule = AlertRule(name="r", field="v", threshold=1.0, for_s=0.0,
                     cooldown_s=0.0, key_fields=("endpoint",))
    engine = AlertEngine([rule], publish=bus.publish, clock=FakeClock(),
                         store=store)
    bus.subscribe(callback=engine.consume, types=["endpoint_health"])
    bus.publish("endpoint_health", endpoint="e", v=5.0)
    assert engine.active()
    assert engine.fired_total == 1
    store.close()

    # -- restart: a new process replays the ring --------------------------
    store2 = AlertHistoryStore(str(tmp_path))
    engine2 = AlertEngine([rule], clock=FakeClock(), store=store2)
    replayed = store2.load()
    imported = [dict(e.data) for e in replayed
                if e.type in ALERT_EVENT_TYPES]
    engine2.import_history(imported)
    assert engine2.fired_total == 1  # from the state document
    active = engine2.active()
    assert [(a["rule"], a["key"]) for a in active] == [("r", "e")]
    store2.close()


def test_history_compacts_dead_writers_exactly_once(tmp_path):
    # A file left by a dead writer (pid that cannot exist).
    dead = tmp_path / "history-999999999.jsonl"
    lines = [
        event("endpoint_health", at=1.0, source={"pid": 999999999},
              endpoint="e", pressure=0.4).to_json(),
        event("alert_fired", at=2.0, source={"pid": 999999999},
              rule="r", key="e", status="firing").to_json(),
    ]
    dead.write_text("".join(line + "\n" for line in lines))

    store = AlertHistoryStore(str(tmp_path))
    events = store.load()
    assert [e.type for e in events] == ["endpoint_health", "alert_fired"]
    assert not dead.exists()  # folded into this process's ring
    store.close()

    # Next restart still sees each event exactly once.
    store2 = AlertHistoryStore(str(tmp_path))
    events2 = store2.load()
    assert [e.type for e in events2] == ["endpoint_health", "alert_fired"]
    store2.close()


def test_history_leaves_live_writers_alone(tmp_path):
    # A "peer" file stamped with *this* process's pid is live: replay it,
    # never unlink or duplicate it.
    peer = SpoolWriter(str(tmp_path), role="peerhistory")
    peer.append(event("endpoint_health", at=1.0, source={"pid": os.getpid()},
                      endpoint="e", pressure=0.4))
    store = AlertHistoryStore(str(tmp_path))
    assert [e.type for e in store.load()] == ["endpoint_health"]
    assert os.path.exists(peer.path)
    assert [e.type for e in store.load()] == ["endpoint_health"]
    peer.close()
    store.close()


def test_engine_state_document_roundtrip(tmp_path):
    store = AlertHistoryStore(str(tmp_path))
    store.save_state({"fired_total": 7, "resolved_total": 5})
    assert store.load_state() == {"fired_total": 7, "resolved_total": 5}
    engine = AlertEngine(clock=FakeClock(), store=store)
    assert engine.fired_total == 7 and engine.resolved_total == 5
    store.close()
