"""Ring series, timeline monotonicity, histogram merges, aggregation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.metrics import LatencyHistogram
from repro.telemetry.bus import Event
from repro.telemetry.timeseries import (
    OperatingTimeline,
    RingSeries,
    TelemetryAggregator,
    merge_latency_payloads,
)
from tests.strategies import QUICK_SETTINGS


def event(type, at=0.0, source=None, seq=0, **data):
    return Event(type, at=at, source=source or {"pid": 1}, seq=seq, data=data)


# ---------------------------------------------------------------------------
# RingSeries
# ---------------------------------------------------------------------------


def test_ring_series_bounded_and_ordered():
    series = RingSeries(capacity=4)
    for index in range(7):
        series.append(float(index), at=float(index))
    assert len(series) == 4
    assert series.samples() == [(3.0, 3.0), (4.0, 4.0), (5.0, 5.0), (6.0, 6.0)]
    assert series.last() == 6.0


def test_ring_series_windowed_aggregation():
    series = RingSeries(capacity=16)
    for at in range(10):
        series.append(2.0, at=float(at))
    # Window [5, 10): five samples of 2.0.
    assert series.window_sum(5.0, now=10.0) == 10.0
    assert series.window_mean(5.0, now=10.0) == 2.0
    assert series.window_rate(5.0, now=10.0) == 2.0
    assert series.window_sum(0.5, now=100.0) == 0.0


# ---------------------------------------------------------------------------
# OperatingTimeline
# ---------------------------------------------------------------------------


def test_timeline_segments_and_level_at():
    timeline = OperatingTimeline()
    assert timeline.level is None
    assert timeline.observe(0, at=10.0)
    assert not timeline.observe(0, at=11.0)  # same rung: no new segment
    assert timeline.observe(2, at=12.0, reason="pressure 0.9", pressure=0.9)
    segments = timeline.segments()
    assert [s["level"] for s in segments] == [0, 2]
    assert segments[0]["until"] == segments[1]["since"] == 12.0
    assert segments[1]["until"] is None
    assert segments[1]["reason"] == "pressure 0.9"
    assert timeline.level_at(11.5) == 0
    assert timeline.level_at(50.0) == 2
    assert timeline.level_at(5.0) is None
    assert timeline.transitions == 2


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.floats(
                min_value=0.0, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
        ),
        max_size=60,
    ),
    st.integers(min_value=2, max_value=8),
)
@QUICK_SETTINGS
def test_timeline_monotone_nonoverlapping_bounded(observations, capacity):
    """Arbitrary (even out-of-order) observations keep the invariants."""
    timeline = OperatingTimeline(capacity=capacity)
    for level, at in observations:
        timeline.observe(level, at=at)
    segments = timeline.segments()
    assert len(segments) <= capacity
    for first, second in zip(segments, segments[1:]):
        assert first["until"] == second["since"]  # contiguous
        assert first["since"] <= first["until"]  # monotone
        assert first["level"] != second["level"]  # real transitions only
    if segments:
        assert segments[-1]["until"] is None  # the present is open-ended
        starts = [segment["since"] for segment in segments]
        assert starts == sorted(starts)


# ---------------------------------------------------------------------------
# Histogram payload merging
# ---------------------------------------------------------------------------


def test_merge_latency_payloads_equals_single_histogram():
    samples_a = [0.010, 0.012, 0.5, 0.020]
    samples_b = [0.001, 0.9, 0.015]
    one, two, union = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    for sample in samples_a:
        one.record(sample)
        union.record(sample)
    for sample in samples_b:
        two.record(sample)
        union.record(sample)
    merged = merge_latency_payloads([one.to_payload(), two.to_payload()])
    expected = union.snapshot()
    assert merged["count"] == expected["count"]
    for key in ("min_s", "max_s", "p50_s", "p90_s", "p99_s"):
        assert merged[key] == expected[key]  # bucket-exact
    # The mean sums per-shard subtotals: equal up to summation order.
    assert merged["mean_s"] == pytest.approx(expected["mean_s"])
    assert merge_latency_payloads([])["count"] == 0


# ---------------------------------------------------------------------------
# TelemetryAggregator
# ---------------------------------------------------------------------------


def test_aggregator_sweep_progress_and_reuse():
    aggregator = TelemetryAggregator()
    aggregator.consume(event("sweep_started", at=0.0, points=3))
    aggregator.consume(
        event("point_started", at=1.0, kind="k", model="resnet18", key="p1")
    )
    aggregator.consume(
        event("point_finished", at=2.0, kind="k", model="resnet18",
              key="p1", reused=False)
    )
    aggregator.consume(
        event("point_finished", at=3.0, kind="k", model="googlenet",
              key="p2", reused=True)
    )
    sweep = aggregator.snapshot()["sweep"]
    assert (sweep["total"], sweep["done"], sweep["reused"]) == (3, 2, 1)
    assert sweep["per_model"]["resnet18"] == {
        "done": 1, "reused": 0, "in_flight": 0,
    }
    assert sweep["per_model"]["googlenet"]["reused"] == 1


def test_aggregator_dedups_points_by_key():
    """Worker-computed + parent-collected events count once (compute wins)."""
    aggregator = TelemetryAggregator()
    worker = {"pid": 100, "role": "sweep-worker"}
    parent = {"pid": 1, "role": "sweep"}
    aggregator.consume(
        event("point_finished", at=1.0, source=worker, key="p", reused=False)
    )
    aggregator.consume(
        event("point_finished", at=5.0, source=parent, key="p", reused=True)
    )
    sweep = aggregator.snapshot()["sweep"]
    assert (sweep["done"], sweep["reused"]) == (1, 0)


def test_aggregator_point_failure_clears_in_flight():
    aggregator = TelemetryAggregator()
    aggregator.consume(
        event("point_started", at=1.0, kind="k", model="resnet18", key="p1")
    )
    assert (
        aggregator.snapshot()["sweep"]["per_model"]["resnet18"]["in_flight"]
        == 1
    )
    aggregator.consume(
        event("point_failed", at=2.0, kind="k", model="resnet18", key="p1")
    )
    sweep = aggregator.snapshot()["sweep"]
    assert sweep["failed"] == 1
    assert sweep["per_model"]["resnet18"]["in_flight"] == 0


def test_aggregator_worker_lifecycle():
    aggregator = TelemetryAggregator()
    aggregator.consume(event("worker_started", at=1.0,
                             source={"pid": 42}, tasks=3))
    assert aggregator.snapshot()["sweep"]["workers"]["42"]["alive"]
    aggregator.consume(event("worker_exited", at=2.0,
                             source={"pid": 42}, drained=False))
    worker = aggregator.snapshot()["sweep"]["workers"]["42"]
    assert not worker["alive"] and not worker["drained"]


def test_aggregator_endpoint_health_and_timelines():
    import time

    # Wall-clock-ish timestamps: timeline describe() windows on real time.
    base = time.time()
    aggregator = TelemetryAggregator()
    histogram = LatencyHistogram()
    histogram.record(0.05)
    for shard, p99 in ((0, 80.0), (1, 120.0)):
        aggregator.consume(
            event(
                "endpoint_health",
                at=base - 2.0,
                source={"pid": shard + 1, "shard": shard},
                endpoint="resnet18",
                requests=10 * (shard + 1),
                images=20 * (shard + 1),
                rejected_images=shard,
                throughput_images_per_s=5.0,
                goodput_images_per_s=4.0,
                recent_p99_ms=p99,
                pressure=0.5 + 0.2 * shard,
                level=shard,  # shard 1 currently degraded
                latency=histogram.to_payload(),
                latency_budget_ms=100.0,
            )
        )
    aggregator.consume(
        event(
            "rung_transition",
            at=base - 1.0,
            source={"pid": 2, "shard": 1},
            endpoint="resnet18",
            from_level=1,
            to_level=0,
            reason="calm",
            pressure=0.1,
        )
    )
    aggregator.consume(event("shed", at=base - 0.5, endpoint="resnet18", images=4))
    aggregator.consume(event("replica_respawn", at=base, endpoint="resnet18"))
    snapshot = aggregator.snapshot()["endpoints"]["resnet18"]
    assert snapshot["requests"] == 30
    assert snapshot["images"] == 60
    assert snapshot["recent_p99_ms"] == 120.0  # worst shard
    assert snapshot["throughput_images_per_s"] == 10.0  # summed
    assert snapshot["latency_budget_ms"] == 100.0
    assert snapshot["latency_merged"]["count"] == 2
    assert snapshot["respawns"] == 1
    # Shard 1's timeline: health gauge said rung 1, then a transition to 0.
    levels = [s["level"] for s in snapshot["timelines"]["1"]]
    assert levels == [1, 0]
    assert snapshot["shard_levels"] == {"0": 0, "1": 0}


def test_aggregator_coordinator_recommendation():
    aggregator = TelemetryAggregator()
    aggregator.consume(
        event(
            "coordinator_recommendation",
            at=1.0,
            endpoint="resnet18",
            level=2,
            shard_levels={"0": 2, "1": 0},
            reason="max desired rung over 2 shard(s)",
        )
    )
    entry = aggregator.snapshot()["coordinator"]["resnet18"]
    assert entry["level"] == 2
    assert entry["shard_levels"] == {"0": 2, "1": 0}


# ---------------------------------------------------------------------------
# Clock robustness (PR 9): wall steps must not distort windows or liveness
# ---------------------------------------------------------------------------


class SteppedClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_ring_series_clamps_backward_publisher_timestamps():
    series = RingSeries(capacity=8)
    series.append(1.0, at=100.0)
    series.append(2.0, at=40.0)  # publisher's wall clock stepped backward
    ats = [at for at, _ in series.samples()]
    assert ats == [100.0, 100.0]
    # The stepped sample stays in any window that includes its neighbour.
    assert series.window_sum(5.0, now=100.0) == 3.0


def test_ring_series_windows_survive_wall_clock_steps(monkeypatch):
    from repro.telemetry import timeseries as ts

    wall, mono = SteppedClock(1000.0), SteppedClock(50.0)
    monkeypatch.setattr(ts, "_wall", wall)
    monkeypatch.setattr(ts, "_mono", mono)
    series = RingSeries(capacity=8)
    series.append(1.0)  # at=1000.0 per the fake wall clock
    # Wall clock steps an hour backward; only 1s of real time passes.
    wall.now -= 3600.0
    mono.now += 1.0
    assert series.window_sum(10.0) == 1.0  # still inside the window
    # Real time (monotonic) passing is what ages samples out.
    mono.now += 30.0
    assert series.window_sum(10.0) == 0.0


def test_endpoint_liveness_ignores_wall_steps(monkeypatch):
    from repro.telemetry import timeseries as ts

    wall, mono = SteppedClock(1000.0), SteppedClock(50.0)
    monkeypatch.setattr(ts, "_wall", wall)
    monkeypatch.setattr(ts, "_mono", mono)
    aggregator = TelemetryAggregator()

    def health():
        aggregator.consume(
            event(
                "endpoint_health",
                at=wall.now,
                source={"pid": 1, "shard": 0},
                endpoint="resnet18",
                requests=1,
                images=1,
                pressure=0.1,
                level=0,
            )
        )

    health()
    # A forward wall step of a day must not mark the shard stale...
    wall.now += 86400.0
    assert aggregator.snapshot()["endpoints"]["resnet18"]["live_shards"] == [0]
    # ...and a backward step must not resurrect it once real time passes.
    wall.now -= 86400.0 * 2
    mono.now += ts.HEALTH_STALE_S + 1.0
    assert aggregator.snapshot()["endpoints"]["resnet18"]["live_shards"] == []
    # A fresh heartbeat revives it regardless of the wall clock's opinion.
    health()
    assert aggregator.snapshot()["endpoints"]["resnet18"]["live_shards"] == [0]
