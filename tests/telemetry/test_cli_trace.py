"""CLI surfaces for tracing and silences: `trace` and `alerts --silence`."""

from __future__ import annotations

import time

import pytest

from repro.cli import main
from repro.telemetry.alerts import AlertHistoryStore
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.tracing import TraceStore, Tracer

pytestmark = pytest.mark.trace


def _write_trace(directory, trace_id="feedfacecafef00d"):
    bus = TelemetryBus(role="test")
    store = TraceStore(str(directory))
    bus.subscribe(callback=store.record)
    tracer = Tracer(publish=bus.publish, sample_rate=1.0)
    context = tracer.trace(trace_id)
    root = tracer.start_span(
        context, "request", root=True, endpoint="tinynet"
    )
    child = tracer.start_span(root.child_context(), "batch")
    child.finish()
    root.finish()
    store.close()
    return context.trace_id


def test_trace_lists_persisted_traces(tmp_path, capsys):
    trace_id = _write_trace(tmp_path)
    assert main(["trace", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert trace_id in out
    assert "tinynet" in out and "request" in out


def test_trace_renders_a_waterfall_for_one_id(tmp_path, capsys):
    trace_id = _write_trace(tmp_path)
    # Ids are matched case-insensitively, like the wire normalization.
    assert main(["trace", "--dir", str(tmp_path),
                 "--id", trace_id.upper()]) == 0
    out = capsys.readouterr().out
    assert f"trace {trace_id}: 2 span(s)" in out
    assert "request" in out and "batch" in out and "|" in out


def test_trace_accepts_the_telemetry_parent_directory(tmp_path, capsys):
    # A server keeps its ring under `<telemetry>/traces`; passing the
    # parent --telemetry-dir must find it.
    trace_id = _write_trace(tmp_path / "traces")
    assert main(["trace", "--dir", str(tmp_path)]) == 0
    assert trace_id in capsys.readouterr().out


def test_trace_unknown_id_and_empty_dir_fail(tmp_path, capsys):
    assert main(["trace", "--dir", str(tmp_path)]) == 1
    assert "no traces" in capsys.readouterr().err
    _write_trace(tmp_path)
    assert main(["trace", "--dir", str(tmp_path), "--id", "0" * 16]) == 1
    assert "no spans" in capsys.readouterr().err
    # Read-only inspection added no ring file of its own.
    assert all("traces-" not in p.name or p.stat().st_size >= 0
               for p in tmp_path.iterdir())


def test_alerts_silence_writes_the_shared_document(tmp_path, capsys):
    assert main(["alerts", "--dir", str(tmp_path),
                 "--silence", "overload", "--for", "60"]) == 0
    assert "silenced rule 'overload'" in capsys.readouterr().out

    store = AlertHistoryStore(str(tmp_path))
    try:
        silences = store.load_silences()
        assert silences["overload"] == pytest.approx(
            time.time() + 60.0, abs=5.0
        )
        # A shorter window later never shortens the standing one.
        assert main(["alerts", "--dir", str(tmp_path),
                     "--silence", "overload", "--for", "1"]) == 0
        assert store.load_silences()["overload"] >= silences["overload"]
    finally:
        store.close()


def test_alerts_silence_targets_a_nested_history_directory(tmp_path):
    # A serving front-end keeps its ring under `<telemetry>/history`;
    # the CLI writes the silence where the engine will look for it.
    (tmp_path / "history").mkdir()
    assert main(["alerts", "--dir", str(tmp_path),
                 "--silence", "replica_loss", "--for", "30"]) == 0
    store = AlertHistoryStore(str(tmp_path / "history"))
    try:
        assert "replica_loss" in store.load_silences()
    finally:
        store.close()
