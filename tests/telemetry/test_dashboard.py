"""Dashboard machinery: SSE framing, the event relay, and the server.

The relay and framing tests are tier-1 (no sockets); the
:class:`~repro.telemetry.dashboard.DashboardServer` end-to-end tests bind
real localhost sockets and live in the opt-in ``serve`` lane.
"""

import asyncio
import json
import urllib.request

import pytest

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.dashboard import (
    DASHBOARD_HTML,
    DashboardServer,
    EventRelay,
    format_sse,
)


def test_format_sse_framing():
    frame = format_sse("point_finished", {"a": 1, "b": "x"}).decode("utf-8")
    lines = frame.splitlines()
    assert lines[0] == "event: point_finished"
    assert lines[1].startswith("data: ")
    assert json.loads(lines[1][len("data: "):]) == {"a": 1, "b": "x"}
    assert frame.endswith("\n\n")


def test_dashboard_html_is_self_contained():
    assert "<script" in DASHBOARD_HTML
    assert "EventSource" in DASHBOARD_HTML
    assert "/v1/events" in DASHBOARD_HTML
    assert "/v1/telemetry" in DASHBOARD_HTML
    # Zero external assets: no http(s) URLs outside the page's own routes.
    assert "https://" not in DASHBOARD_HTML
    assert "http://" not in DASHBOARD_HTML


def test_relay_merges_local_bus_and_feeds_aggregator():
    bus = TelemetryBus(role="serve")
    relay = EventRelay(local_bus=bus)
    subscription = relay.subscribe(maxlen=16)
    bus.publish("point_finished", key="p1", reused=False)
    events = subscription.drain()
    assert [event.type for event in events] == ["point_finished"]
    assert relay.snapshot()["sweep"]["done"] == 1
    relay.close()
    # Closed relay no longer consumes the local bus.
    bus.publish("point_finished", key="p2", reused=False)
    assert relay.snapshot()["sweep"]["done"] == 1


def test_relay_does_not_double_count_own_spool(tmp_path):
    """Own events arrive via the bus; the follower must skip our file."""
    bus = TelemetryBus(role="serve")
    bus.attach_spool(str(tmp_path), role="serve")
    # Trailing slash: the own-file skip must normalize paths, not compare
    # the raw strings.
    relay = EventRelay(local_bus=bus, spool_dir=str(tmp_path) + "/")
    bus.publish("point_finished", key="own", reused=False)
    relay.poll()  # would re-ingest the spooled copy if not skipped
    assert relay.snapshot()["sweep"]["done"] == 1
    # A peer's spool file IS followed.
    peer = TelemetryBus(role="peer")
    peer.attach_spool(str(tmp_path), role="peer")
    peer.publish("point_finished", key="peer", reused=False)
    relay.poll()
    assert relay.snapshot()["sweep"]["done"] == 2
    bus.detach_spool()
    peer.detach_spool()
    relay.close()


# ---------------------------------------------------------------------------
# DashboardServer end-to-end (real sockets: opt-in serve lane)
# ---------------------------------------------------------------------------


def _run_dash(spool_dir, actions):
    """Start a DashboardServer on port 0, run ``actions(port)`` off-loop."""

    async def main():
        server = DashboardServer(spool_dir=spool_dir, port=0, poll_s=0.05)
        await server.start()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, actions, server.port)
        finally:
            await server.stop()

    return asyncio.run(main())


@pytest.mark.serve
def test_dashboard_server_routes(tmp_path):
    writer = TelemetryBus(role="sweep")
    writer.attach_spool(str(tmp_path), role="sweep")
    writer.publish("sweep_started", points=2)
    writer.publish("point_finished", key="p1", model="resnet18", reused=False)

    def actions(port):
        base = f"http://127.0.0.1:{port}"
        html = urllib.request.urlopen(f"{base}/dashboard", timeout=10).read()
        assert b"repro telemetry" in html
        health = json.load(urllib.request.urlopen(f"{base}/healthz", timeout=10))
        assert health == {"status": "ok"}
        # The follower needs one poll interval to ingest the spool.
        deadline = 50
        for _ in range(deadline):
            snapshot = json.load(
                urllib.request.urlopen(f"{base}/v1/telemetry", timeout=10)
            )
            if snapshot["sweep"]["done"] == 1:
                break
            import time

            time.sleep(0.05)
        assert snapshot["sweep"]["total"] == 2
        assert snapshot["sweep"]["done"] == 1
        with urllib.request.urlopen(f"{base}/missing", timeout=10) as _:
            pass

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _run_dash(str(tmp_path), actions)
    assert excinfo.value.code == 404
    writer.detach_spool()


@pytest.mark.serve
def test_dashboard_server_sse_stream(tmp_path):
    writer = TelemetryBus(role="sweep")
    writer.attach_spool(str(tmp_path), role="sweep")
    writer.publish("point_finished", key="p0", reused=False)

    def actions(port):
        connection = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/v1/events", timeout=10
        )
        assert connection.headers["Content-Type"] == "text/event-stream"
        # Frame 1 is the snapshot (possibly empty -- the follower may not
        # have polled yet); the spooled events then stream live.
        writer.publish("point_finished", key="p1", reused=True)
        frames = []
        current = []
        seen_keys = []
        while "p1" not in seen_keys:
            line = connection.readline().decode("utf-8")
            if line.startswith(":"):
                continue
            if line.strip():
                current.append(line.strip())
                continue
            if current:
                frames.append(current)
                if current[0] == "event: point_finished":
                    event = json.loads(current[1][len("data: "):])
                    seen_keys.append(event["data"]["key"])
                current = []
        assert frames[0][0] == "event: snapshot"
        snapshot = json.loads(frames[0][1][len("data: "):])
        # p0 arrives exactly once: either folded into the opening snapshot
        # (the follower polled before this connection subscribed) or as a
        # live frame ahead of p1 -- never both, never dropped.
        if seen_keys == ["p1"]:
            assert snapshot["sweep"]["done"] == 1
        else:
            assert seen_keys == ["p0", "p1"]
        connection.close()

    _run_dash(str(tmp_path), actions)
    writer.detach_spool()


def test_relay_corruption_counts_survive_restart(tmp_path):
    """`corrupt_lines` is an operator-facing damage odometer (and an alert
    input): a follower restart must not reset it to zero."""
    from repro.telemetry.bus import Event

    def spool_file(name, lines):
        path = tmp_path / name
        path.write_text("".join(line + "\n" for line in lines))
        return path

    good = Event(
        "point_finished", at=1.0, source={"pid": 999}, seq=0,
        data={"key": "p", "reused": False},
    ).to_json()
    damaged = spool_file("peer-11.jsonl", [good, "{not json", "%% nope"])

    relay = EventRelay(spool_dir=str(tmp_path), stats_name="shard0")
    relay.poll()
    assert relay.corruption_stats()["corrupt_lines"] == 2
    relay.close()

    damaged.unlink()  # even the damaged file itself disappearing...

    relay2 = EventRelay(spool_dir=str(tmp_path), stats_name="shard0")
    relay2.poll()
    assert relay2.corruption_stats()["corrupt_lines"] == 2  # ...is remembered
    spool_file("other-12.jsonl", ["garbage"])
    relay2.poll()
    stats = relay2.snapshot()["spool"]
    assert stats["corrupt_lines"] == 3  # cumulative across the restart
    assert stats["session_corrupt_lines"] == 1  # this follower saw only one
    relay2.close()

    # A third relay under a *different* name starts from its own baseline.
    relay3 = EventRelay(spool_dir=str(tmp_path), stats_name="other")
    relay3.poll()
    assert relay3.corruption_stats()["corrupt_lines"] == 1
    relay3.close()
