"""Fixtures for the chaos lane: the serving provider around the tiny harness."""

from __future__ import annotations

import pytest

from tests.serve.conftest import TinyHarnessProvider


@pytest.fixture
def tiny_provider(tiny_harness) -> TinyHarnessProvider:
    return TinyHarnessProvider(tiny_harness)
