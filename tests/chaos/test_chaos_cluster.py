"""Chaos conformance for the cluster substrate.

A real remote worker process is killed (or partitioned) mid-lease: the
hub must recycle the lease and the parent must recompute the leftovers,
producing the exact payloads a serial run would.  A federated QoS quorum
must re-converge when a peer machine drops out.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import multiprocessing

import pytest

from repro.cluster.agent import ClusterAgent
from repro.cluster.documents import DocumentStore
from repro.cluster.transport import SocketTransport
from repro.cluster.worker import SweepHub
from repro.eval.parallel import fork_available
from repro.eval.sweep import (
    SweepPoint,
    SweepSession,
    point_runner,
    run_sweep,
)
from repro.telemetry.coordinator import ShardStateChannel, recommend_level

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    ),
]


@point_runner("chaos-block")
def _chaos_block(ctx, point):
    # Parks the evaluating process while the flag file exists, so the
    # test can kill/partition the worker at a known place.
    flag = point.param("flag")
    while flag and os.path.exists(flag):
        time.sleep(0.05)
    x = point.param("x")
    return {"x": x, "double": 2 * x}


def _points(flag: str):
    return [
        SweepPoint.make("chaos-block", None, x=0, flag=flag),
        SweepPoint.make("chaos-block", None, x=1, flag=""),
        SweepPoint.make("chaos-block", None, x=2, flag=""),
    ]


def _worker_main(address):
    from repro.cluster.worker import RemoteWorker

    RemoteWorker(address, node="chaos-worker", max_idle_s=10.0).run()


def _run_sweep_in_thread(points, session):
    result: dict = {}

    def run():
        result["payloads"] = run_sweep(points, session=session)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, result


def _wait_for_lease(hub, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if hub.agent.ledger.leased() > 0:
            return
        time.sleep(0.02)
    raise AssertionError("no worker ever leased the group")


def _serial_payloads(points, tmp_path):
    serial = SweepSession(
        scale="fast", workers=1, store_root=str(tmp_path / "serial-store")
    )
    return run_sweep(points, session=serial)


def test_killed_worker_lease_recycles_and_parent_recomputes(tmp_path):
    flag = tmp_path / "hold"
    flag.touch()
    points = _points(str(flag))
    session = SweepSession(
        scale="fast", workers=1, store_root=str(tmp_path / "store")
    )
    hub = SweepHub.create(session, listen="127.0.0.1:0", connect_grace_s=60.0)
    session.hub = hub
    worker = multiprocessing.get_context("fork").Process(
        target=_worker_main, args=(hub.address,), daemon=True
    )
    worker.start()
    try:
        thread, result = _run_sweep_in_thread(points, session)
        _wait_for_lease(hub)
        # SIGKILL while the worker is parked inside the first point.
        os.kill(worker.pid, signal.SIGKILL)
        worker.join(timeout=10.0)
        flag.unlink()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
    finally:
        hub.close()
        if worker.is_alive():
            worker.kill()
            worker.join(timeout=10.0)

    # The dead node's lease was recycled, nothing completed remotely,
    # and the parent's serial recompute produced the exact payloads.
    assert hub.agent.ledger.recycled_leases >= 1
    assert hub.agent.ledger.completed_groups == 0
    assert result["payloads"] == _serial_payloads(points, tmp_path)


def test_partitioned_worker_goes_stale_and_parent_recomputes(tmp_path):
    flag = tmp_path / "hold"
    flag.touch()
    points = _points(str(flag))
    session = SweepSession(
        scale="fast", workers=1, store_root=str(tmp_path / "store")
    )
    # A partitioned node's pid may well be alive; only heartbeat
    # staleness can evict it.  Tight horizon so the test converges fast.
    hub = SweepHub.create(
        session, listen="127.0.0.1:0", connect_grace_s=60.0,
        stale_after_s=1.0,
    )
    session.hub = hub
    worker = multiprocessing.get_context("fork").Process(
        target=_worker_main, args=(hub.address,), daemon=True
    )
    worker.start()
    try:
        thread, result = _run_sweep_in_thread(points, session)
        _wait_for_lease(hub)
        # SIGSTOP: the process stays alive (a live local pid!) but its
        # heartbeats stop -- the network-partition analogue.
        os.kill(worker.pid, signal.SIGSTOP)
        flag.unlink()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
    finally:
        hub.close()
        try:
            os.kill(worker.pid, signal.SIGCONT)
        except ProcessLookupError:
            pass
        worker.kill()
        worker.join(timeout=10.0)

    assert hub.agent.ledger.recycled_leases >= 1
    assert result["payloads"] == _serial_payloads(points, tmp_path)


def test_federated_quorum_reconverges_after_peer_machine_loss(tmp_path):
    agent = ClusterAgent({"qos": str(tmp_path / "qos")}, node="hub")
    agent.start_in_thread()
    transport = SocketTransport(agent.address, node="serve-0")
    try:
        channel = ShardStateChannel(
            None, 0, 2, store=DocumentStore(transport, "qos")
        )
        channel.publish({"model": {"desired": 1, "held": False}})
        # A peer machine in the quorum, wanting deeper degradation.
        DocumentStore(transport, "qos").put("qos-shard-1.json", {
            "shard": 1, "pid": 12345, "host": "machine-b",
            "published_at": time.time(),
            "endpoints": {"model": {"desired": 3, "held": False}},
        })
        level, desired = recommend_level(
            channel.gather(stale_after_s=0.6), "model", num_levels=4
        )
        assert level == 3
        assert desired == {0: 1, 1: 3}

        # The peer machine drops off the network: no more heartbeats.
        # Past the horizon the quorum re-converges on the survivor.
        time.sleep(0.8)
        channel.publish({"model": {"desired": 1, "held": False}})
        level, desired = recommend_level(
            channel.gather(stale_after_s=0.6), "model", num_levels=4
        )
        assert level == 1
        assert desired == {0: 1}
    finally:
        transport.close()
        agent.stop()
