"""Chaos conformance: the in-process serving stack under process churn.

The real data path (warm forked replicas -> dynamic batcher -> admission)
is driven open-loop while a seeded reaper SIGKILLs workers out from under
it.  The contract proved here is the serving stack's central robustness
claim: **every admitted request gets exactly one response or one explicit
error** -- kills may fail individual batches, but nothing is lost, nothing
is double-counted, and the stack recovers to full health by respawning.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.chaos.actors import ProcessReaper, SpoolCorruptor
from repro.chaos.drive import ServingStack, drive_open_loop
from repro.chaos.invariants import InvariantChecker, ResponseLedger
from repro.chaos.schedule import ChaosSchedule
from repro.eval.parallel import fork_available

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    ),
]

SEED = 20260808


def _make_stack(tiny_harness, tiny_provider, **overrides):
    params = dict(
        fork_workers=2,
        threads=2,
        max_batch=8,
        max_wait_ms=2.0,
        max_pending=32,
        provider=tiny_provider,
        images=tiny_harness.eval_images,
    )
    params.update(overrides)
    return ServingStack(**params)


def _await_recovery(stack, checker, *, bound_s=60.0, probes=5):
    """Alert-free recovery: after the faults stop, fresh probes must all
    succeed within the bound (respawns happen lazily on dispatch, so the
    probes themselves drive the healing)."""
    replica_set = stack.pool.replica_set(stack.spec.name)
    image = stack.images[:1]
    started = time.monotonic()
    streak = 0
    while streak < probes and time.monotonic() - started < bound_s:
        try:
            replica_set.infer(image)
        except RuntimeError:
            streak = 0  # hit a corpse; the dispatch respawned its slot
            continue
        streak += 1
    elapsed = time.monotonic() - started
    checker.check_recovered(streak, probes, bound_s, elapsed)
    health = stack.replica_health()
    checker.check(
        "all_replicas_live",
        health["live_replicas"] == health["replicas"]
        and not health["degraded"],
        f"health after recovery: {health}",
    )


def test_replica_kills_mid_traffic_keep_the_ledger_exact(
    tiny_harness, tiny_provider
):
    stack = _make_stack(tiny_harness, tiny_provider)
    reaper = ProcessReaper(random.Random(SEED))
    ledger = ResponseLedger()
    checker = InvariantChecker()
    schedule = ChaosSchedule(seed=SEED)
    schedule.every(
        0.3,
        "reap-replica",
        lambda: reaper.reap(stack.replica_pids()),
        until_s=1.2,
        jitter_s=0.1,
    )
    try:
        chaos_thread = schedule.run_in_thread()
        summary = drive_open_loop(
            stack, rate=80.0, duration=1.6, budget_s=10.0, ledger=ledger
        )
        schedule.stop()
        chaos_thread.join(timeout=30)

        checker.check("kills_landed", len(reaper.killed) >= 1,
                      f"killed {reaper.killed}")
        checker.check_ledger(ledger)
        counts = ledger.counts()
        checker.check(
            "every_offer_accounted",
            counts["offered"] == counts["shed"] + counts["resolved"],
            f"counts {counts}",
        )
        checker.check(
            "served_through_churn", summary["completed"] > 0,
            f"drive summary {summary}",
        )
        _await_recovery(stack, checker)
        checker.check(
            "kills_were_respawned",
            stack.replica_health()["total_respawns"] >= len(reaper.killed),
            f"health {stack.replica_health()} after kills {reaper.killed}",
        )
        checker.assert_all()
    finally:
        stack.close()


def test_killing_every_worker_at_once_is_survivable(
    tiny_harness, tiny_provider
):
    """Total worker loss: in-flight batches error explicitly, the free
    list never wedges, and dispatch respawns the whole set back."""
    stack = _make_stack(tiny_harness, tiny_provider)
    reaper = ProcessReaper(random.Random(SEED))
    ledger = ResponseLedger()
    checker = InvariantChecker()
    try:
        warmup = drive_open_loop(
            stack, rate=40.0, duration=0.5, budget_s=10.0, ledger=ledger
        )
        checker.check("warmup_served", warmup["completed"] > 0,
                      f"warmup {warmup}")
        pids = stack.replica_pids()
        checker.check("had_workers", len(pids) >= 2, f"pids {pids}")
        for pid in pids:
            reaper.kill(pid)
        under_fault = drive_open_loop(
            stack, rate=40.0, duration=0.8, budget_s=10.0, ledger=ledger
        )
        checker.check_ledger(ledger)
        checker.check(
            "no_silent_drops",
            under_fault["completed"] + under_fault["errored"]
            + under_fault["shed"] == under_fault["offered"],
            f"under_fault {under_fault}",
        )
        _await_recovery(stack, checker)
        checker.check(
            "fresh_workers_forked",
            set(stack.replica_pids()) and
            not (set(stack.replica_pids()) & set(pids)),
            f"old {pids} new {stack.replica_pids()}",
        )
        checker.assert_all()
    finally:
        stack.close()


def test_deadline_expiry_under_overload_keeps_the_ledger_exact(
    tiny_harness, tiny_provider
):
    """Mixed-deadline overload: requests whose deadline passes in the
    queue are cancelled *before* compute with an explicit
    ``deadline_exceeded`` answer -- the ledger's ``expired`` outcome --
    never silently dropped, and deadline-free traffic still completes."""
    stack = _make_stack(
        tiny_harness, tiny_provider, fork_workers=0, max_pending=64
    )
    ledger = ResponseLedger()
    checker = InvariantChecker()
    try:
        summary = drive_open_loop(
            stack,
            rate=200.0,
            duration=1.5,
            budget_s=30.0,
            ledger=ledger,
            # Every other request carries a deadline far too tight for an
            # overloaded queue; the rest are deadline-free.
            deadline_ms=lambda index: 1.0 if index % 2 else None,
        )
        checker.check_ledger(ledger)
        counts = ledger.counts()
        checker.check(
            "expiries_ledgered",
            counts["expired"] > 0 and counts["expired"] == summary["expired"],
            f"ledger {counts}, drive {summary}",
        )
        checker.check(
            "every_offer_accounted",
            counts["offered"] == counts["shed"] + counts["resolved"],
            f"counts {counts}",
        )
        checker.check(
            "expired_before_compute",
            stack.batcher.expired_requests == counts["expired"],
            f"batcher expired {stack.batcher.expired_requests}, "
            f"ledger {counts['expired']}",
        )
        checker.check(
            "deadline_free_traffic_completed",
            summary["completed"] > 0,
            f"drive summary {summary}",
        )
        # Fault-free recovery: without deadlines everything admitted
        # completes again.
        recovery = drive_open_loop(
            stack, rate=20.0, duration=1.0, budget_s=30.0, ledger=ledger
        )
        checker.check_recovered(
            recovery["completed"], recovery["admitted"], 30.0,
            recovery["elapsed_s"],
        )
        checker.check_ledger(ledger, name="ledger_exact_after_recovery")
        checker.assert_all()
    finally:
        stack.close()


def test_spool_corruption_between_polls_does_not_break_the_follower(
    tmp_path
):
    """A corruptor damages the live telemetry spool between polls; the
    follower skips the damage, counts it, and keeps delivering the events
    published after each damaged window.

    Per-mode expectations: ``tear`` merges the *next* published line into
    one corrupt line (that event is lost, later ones flow); ``garbage``
    and ``non_event`` cost exactly their own line; ``truncate`` below the
    follower's offset makes it re-read from the start (duplicates are
    possible, crashes and silent stalls are not).
    """
    from repro.telemetry.bus import SpoolFollower, TelemetryBus

    bus = TelemetryBus(role="writer")
    bus.attach_spool(str(tmp_path), role="writer")
    corruptor = SpoolCorruptor(random.Random(SEED))
    follower = SpoolFollower(str(tmp_path))
    checker = InvariantChecker()
    try:
        for index in range(3):
            bus.publish("baseline", index=index)
        assert len(follower.poll()) == 3
        for round_index, mode in enumerate(
            ("tear", "garbage", "non_event", "truncate")
        ):
            hit = corruptor.corrupt_spool(str(tmp_path), mode)
            checker.check(f"{mode}_landed", hit is not None, repr(hit))
            bus.publish("during", mode=mode, index=round_index)
            bus.publish("after", mode=mode, index=round_index)
            delivered = follower.poll()
            if not any(
                event.type == "after" and event.data["mode"] == mode
                for event in delivered
            ):
                # The damaged window swallowed the markers (truncation can
                # regrow the file past the follower's offset, hiding the
                # shrink).  Resync-at-next-newline still holds: the next
                # complete line must flow.
                bus.publish("rescue", mode=mode, index=round_index)
                delivered = follower.poll()
                checker.check(
                    f"{mode}_resynced",
                    any(event.type == "rescue"
                        and event.data["mode"] == mode
                        for event in delivered),
                    f"after {mode}: {[event.type for event in delivered]}",
                )
            else:
                checker.check(f"{mode}_resynced", True)
        stats = follower.stats()
        checker.check(
            "damage_was_counted", stats["corrupt_lines"] >= 3, f"{stats}"
        )
        bus.publish("final")
        checker.check(
            "still_following",
            any(event.type == "final" for event in follower.poll()),
        )
        checker.assert_all()
    finally:
        bus.detach_spool()
