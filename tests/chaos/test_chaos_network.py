"""Chaos conformance: the HTTP front-end under misbehaving clients.

A :class:`~repro.chaos.actors.NetworkMangler` opens *real* TCP
connections against a live :class:`~repro.serve.server.NBSMTServer` and
abuses them -- slow-loris header drips, half-open silence, mid-body RSTs,
byte-drip readers that never consume their response.  The contracts
proved here are the socket-hardening claims:

* the connection cap is **never leaked**: parked connections are
  reclaimed by read timeouts or evicted for newcomers, and the open count
  stays at or under the cap throughout;
* **well-behaved traffic keeps flowing** alongside every fault mode (no
  head-of-line starvation by parked garbage);
* recovery is **bounded**: once the faults lift, fresh requests succeed
  immediately with no restart.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.chaos.actors import NetworkMangler
from repro.chaos.drive import HttpStack
from repro.chaos.invariants import InvariantChecker

pytestmark = [pytest.mark.chaos]

SEED = 20260808


def _make_http(tiny_provider, **server_kwargs):
    params = dict(
        model="resnet18",
        scale="fast",
        provider=tiny_provider,
        threads=2,
        max_batch=8,
        max_wait_ms=2.0,
        max_pending=32,
    )
    params.update(server_kwargs)
    return HttpStack(**params)


def test_mangled_connections_are_reclaimed_and_traffic_flows(
    tiny_harness, tiny_provider
):
    stack = _make_http(
        tiny_provider,
        max_connections=8,
        read_timeout_s=0.4,
        body_timeout_s=1.0,
        write_timeout_s=2.0,
    )
    mangler = NetworkMangler(
        stack.host, stack.port, rng=random.Random(SEED)
    )
    checker = InvariantChecker()
    image = tiny_harness.eval_images[0]
    try:
        status, _payload = stack.probe("resnet18", image)
        checker.check("baseline_served", status == 200, f"status {status}")

        assert mangler.slow_loris()
        assert mangler.slow_loris()
        assert mangler.half_open()
        assert mangler.mid_body_disconnect()
        assert mangler.byte_drip_reader()

        ok = sum(
            1
            for _ in range(3)
            if stack.probe("resnet18", image)[0] == 200
        )
        checker.check(
            "served_alongside_faults", ok == 3, f"{ok}/3 probes ok"
        )

        # The parked connections must be reclaimed by the read timeout;
        # the open count must never exceed the cap while we wait.
        bound_s = 10.0
        started = time.monotonic()
        leaked = False
        while time.monotonic() - started < bound_s:
            stats = stack.connection_stats()
            leaked = leaked or stats["open"] > stats["max"]
            if stats["timed_out_reads"] >= 3 and stats["open"] <= 1:
                break
            time.sleep(0.1)
        stats = stack.connection_stats()
        checker.check(
            "cap_never_leaked", not leaked and stats["open"] <= stats["max"],
            f"connection stats {stats}",
        )
        checker.check(
            "parked_connections_reclaimed",
            stats["timed_out_reads"] >= 3,
            f"connection stats {stats} after {len(mangler.mangled)} faults",
        )

        released = mangler.release_all()
        status, _payload = stack.probe("resnet18", image)
        checker.check(
            "recovered_after_release",
            status == 200,
            f"status {status} after releasing {released} connections",
        )
        checker.assert_all()
    finally:
        mangler.release_all()
        stack.close()


def test_slow_loris_storm_cannot_exhaust_the_connection_cap(
    tiny_harness, tiny_provider
):
    """More parked connections than the cap: newcomers evict the idle
    garbage (never ledgered in-flight work) or are refused explicitly,
    and a well-behaved request always gets through."""
    stack = _make_http(
        tiny_provider,
        max_connections=4,
        read_timeout_s=5.0,  # long: reclaim must come from eviction
        body_timeout_s=5.0,
        write_timeout_s=5.0,
    )
    mangler = NetworkMangler(
        stack.host, stack.port, rng=random.Random(SEED)
    )
    checker = InvariantChecker()
    image = tiny_harness.eval_images[0]
    try:
        parked = sum(1 for _ in range(8) if mangler.slow_loris())
        checker.check("storm_landed", parked >= 6, f"parked {parked}")
        started = time.monotonic()
        status, _payload = stack.probe("resnet18", image)
        elapsed = time.monotonic() - started
        checker.check(
            "served_through_the_storm",
            status == 200 and elapsed < 5.0,
            f"status {status} in {elapsed:.2f}s",
        )
        stats = stack.connection_stats()
        checker.check(
            "cap_held", stats["open"] <= stats["max"],
            f"connection stats {stats}",
        )
        checker.check(
            "defense_was_explicit",
            stats["evicted"] + stats["refused"] + stats["timed_out_reads"]
            >= parked - stats["max"],
            f"connection stats {stats}, parked {parked}",
        )
        checker.assert_all()
    finally:
        mangler.release_all()
        stack.close()


def test_seeded_injection_is_reproducible():
    """``inject`` draws its fault mode from the seeded RNG alone."""
    first = NetworkMangler("127.0.0.1", 1, rng=random.Random(SEED))
    second = NetworkMangler("127.0.0.1", 1, rng=random.Random(SEED))
    # Port 1 refuses connections, so every mode fails fast -- but the
    # *choice* sequence must match between same-seed manglers.
    draws_first = [first.rng.randrange(4) for _ in range(16)]
    draws_second = [second.rng.randrange(4) for _ in range(16)]
    assert draws_first == draws_second
