"""Chaos conformance: the sharded HTTP front end losing a whole shard.

A two-shard ``SO_REUSEPORT`` deployment takes real traffic, then one
shard is SIGKILLed mid-flight.  The merged ``/v1/metrics`` view must stay
**exact** -- the dead shard's last published counters keep contributing
until the staleness horizon passes, after which its spool is reaped from
disk -- and the surviving shard must keep serving every new connection.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import random
import signal
import time

import pytest

from repro.chaos.actors import ProcessReaper
from repro.chaos.invariants import InvariantChecker
from repro.eval.parallel import fork_available
from repro.serve import sharding

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not sharding.reuseport_supported(), reason="SO_REUSEPORT unavailable"
    ),
    pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    ),
]


def test_shard_kill_keeps_merged_metrics_exact(tmp_path):
    from repro.serve.client import predict_once
    from repro.serve.registry import default_registry

    registry = default_registry(
        models=["resnet18"], threads=2, max_batch=8, max_wait_ms=2.0
    )
    shards = 2
    sockets = sharding.create_shard_sockets("127.0.0.1", 0, shards)
    port = sockets[0].getsockname()[1]
    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(
            target=sharding._shard_main,
            args=(index, sockets, registry, shards, str(tmp_path),
                  {"scale": "fast", "shard_publish_s": 0.2}, False),
            daemon=True,
        )
        for index in range(shards)
    ]
    for process in processes:
        process.start()
    for sock in sockets:
        sock.close()

    def fetch(path, timeout=60):
        connection = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=timeout
        )
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, json.loads(response.read().decode())
        finally:
            connection.close()

    def shard_ready(index):
        """Shard ``index`` publishes its metrics document only once its
        listener is up, every 0.2s -- existence + freshness means the
        shard is accepting connections (``/healthz`` alone only proves
        whichever single shard the kernel routed that connection to)."""
        path = tmp_path / f"shard-{index}.json"
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return False
        return time.time() - float(document.get("published_at", 0.0)) < 5.0

    checker = InvariantChecker()
    reaper = ProcessReaper(random.Random(4))
    try:
        deadline = time.monotonic() + 300
        while True:
            try:
                status, _payload = fetch("/healthz", timeout=10)
                if status == 200 and all(
                    shard_ready(index) for index in range(shards)
                ):
                    break
            except OSError:
                pass
            assert time.monotonic() < deadline, "shards never became healthy"
            time.sleep(0.5)

        from repro.models.zoo import load_dataset

        images = load_dataset(fast=True).val_images[:4]

        def predict_batch(count):
            ok = 0
            for index in range(count):
                connection = http.client.HTTPConnection(
                    "127.0.0.1", port, timeout=60
                )
                try:
                    status, _payload = predict_once(
                        connection, "resnet18",
                        images[index % images.shape[0]],
                    )
                finally:
                    connection.close()
                if status == 200:
                    ok += 1
            return ok

        before_kill = predict_batch(8)
        checker.check_metrics_exact(
            before_kill, 8, name="pre_kill_requests_served"
        )
        # Let BOTH shards publish counters covering every request above,
        # so the victim's last document is complete when it dies.
        time.sleep(1.0)

        victim = reaper.reap([process.pid for process in processes])
        checker.check("a_shard_was_killed", victim is not None, str(victim))
        dead = next(
            process for process in processes if process.pid == victim
        )
        dead.join(timeout=30)
        checker.check(
            "victim_is_down", not dead.is_alive(), f"pid {victim}"
        )

        # The kernel drops the dead listener from the reuseport group:
        # every new connection lands on the survivor.
        after_kill = predict_batch(6)
        checker.check_metrics_exact(
            after_kill, 6, name="survivor_serves_all_new_connections"
        )
        time.sleep(1.0)  # survivor publishes its final counters

        # Merged view: survivor's live counters + the dead shard's last
        # (fresh, not yet stale) document == every client success.  Not
        # one request lost, not one double-merged.
        status, merged = fetch("/v1/metrics")
        checker.check_metrics_exact(status, 200, name="metrics_route_up")
        endpoint = merged["endpoints"]["resnet18"]
        checker.check_metrics_exact(
            endpoint["requests"], before_kill + after_kill,
            name="merged_requests_exact_across_kill",
        )
        checker.check_metrics_exact(
            endpoint["images"], before_kill + after_kill,
            name="merged_images_exact_across_kill",
        )

        # Push the dead shard's document past the staleness horizon (the
        # test stands in for the wall-clock wait): the next merge must
        # drop it AND reap the file from disk.
        dead_index = processes.index(dead)
        dead_spool = tmp_path / f"shard-{dead_index}.json"
        with open(dead_spool, encoding="utf-8") as handle:
            document = json.load(handle)
        document["published_at"] = time.time() - 2 * sharding.STALE_AFTER_S
        with open(dead_spool, "w", encoding="utf-8") as handle:
            json.dump(document, handle)

        survivor_requests = before_kill + after_kill - int(
            document["payload"]["endpoints"]["resnet18"]["requests"]
        )
        status, merged = fetch("/v1/metrics")
        endpoint = merged["endpoints"]["resnet18"]
        checker.check_metrics_exact(
            endpoint["requests"], survivor_requests,
            name="stale_dead_shard_excluded_from_merge",
        )
        checker.check_reaped([str(dead_spool)])
        checker.check(
            "survivor_spool_kept",
            (tmp_path / f"shard-{1 - dead_index}.json").exists(),
        )
        checker.assert_all()
    finally:
        for process in processes:
            if process.is_alive():
                os.kill(process.pid, signal.SIGTERM)
        for process in processes:
            process.join(timeout=60)
        for process in processes:
            if process.is_alive():  # pragma: no cover - stuck shard
                process.kill()
                process.join()
