"""Chaos conformance: disk exhaustion degrades writers, never correctness.

A :class:`~repro.chaos.actors.DiskFiller` squeezes
:class:`~repro.utils.diskbudget.DiskBudget` quotas down to nothing -- the
injectable form of a disk filling up -- against each budgeted writer:

* the telemetry event spool **drops events with a counter** and resumes
  cleanly when the fault lifts;
* the shard metrics exchange **skips publishes with a counter** (peers
  keep merging the previous document until it goes stale, exactly the
  crashed-publisher degradation);
* the sweep results store **refuses persistence with a counter** while
  reads keep serving and the returned payload stays exact (the in-flight
  sweep proceeds; the point is recomputed next session).

In every case the degradation is *explicit* (counted, inspectable) and
*recoverable* (restoring the quota restores the writer with no restart).
"""

from __future__ import annotations

import random

import pytest

from repro.chaos.actors import DiskFiller
from repro.chaos.invariants import InvariantChecker
from repro.utils.diskbudget import DiskBudget

pytestmark = [pytest.mark.chaos]

SEED = 20260808


def test_spool_squeeze_drops_events_with_counters_then_recovers(tmp_path):
    from repro.telemetry.bus import SpoolFollower, TelemetryBus

    bus = TelemetryBus(role="writer")
    budget = DiskBudget(
        str(tmp_path), 256 * 1024, name="spool", rescan_interval_s=0.0
    )
    bus.attach_spool(str(tmp_path), role="writer", budget=budget)
    follower = SpoolFollower(str(tmp_path))
    filler = DiskFiller(random.Random(SEED))
    checker = InvariantChecker()
    try:
        for index in range(5):
            bus.publish("before", index=index)
        checker.check(
            "baseline_delivered", len(follower.poll()) == 5
        )
        filler.squeeze(budget, to_bytes=1)
        for index in range(5):
            bus.publish("during", index=index)
        stats = bus.spool_stats()
        checker.check(
            "drops_counted",
            stats is not None and stats["dropped_events"] >= 5,
            f"spool stats {stats}",
        )
        checker.check(
            "nothing_leaked_past_the_quota",
            len(follower.poll()) == 0,
            "events appeared on disk while squeezed",
        )
        checker.check(
            "budget_degraded_flag", budget.degraded, repr(budget.snapshot())
        )
        restored = filler.restore()
        checker.check("restore_count", restored == 1, f"restored {restored}")
        bus.publish("after")
        delivered = follower.poll()
        checker.check(
            "writer_recovered_without_restart",
            any(event.type == "after" for event in delivered),
            f"delivered {[event.type for event in delivered]}",
        )
        checker.assert_all()
    finally:
        bus.detach_spool()


def test_shard_exchange_skips_over_quota_publishes(tmp_path):
    from repro.serve.sharding import ShardMetricsExchange

    peer = ShardMetricsExchange(str(tmp_path), 1, 2)
    peer.publish({"requests": 7})
    budget = DiskBudget(
        str(tmp_path), 1, name="exchange", rescan_interval_s=0.0
    )
    exchange = ShardMetricsExchange(str(tmp_path), 0, 2, budget=budget)

    exchange.publish({"requests": 1})
    assert exchange.dropped_publishes == 1
    assert not (tmp_path / "shard-0.json").exists()
    # The reader side is unaffected: the peer's document still merges.
    payloads, sources = exchange.gather_peers()
    assert payloads == [{"requests": 7}]
    assert sources[0]["stale"] is False

    # Quota restored: the very next publish lands and the peer sees it.
    budget.set_max_bytes(1 << 20)
    exchange.publish({"requests": 2})
    assert (tmp_path / "shard-0.json").exists()
    peer_view, _sources = peer.gather_peers()
    assert peer_view == [{"requests": 2}]
    assert exchange.dropped_publishes == 1  # no further drops


def test_point_store_refuses_writes_but_keeps_serving_reads(tmp_path):
    from repro.eval.sweep import PointStore, SweepPoint

    store = PointStore("fast", root=tmp_path)
    store_dir = str(store.dir)
    budget = DiskBudget(
        store_dir, 1 << 20, name="points", rescan_interval_s=0.0
    )
    store.budget = budget
    filler = DiskFiller(random.Random(SEED))

    first = SweepPoint.make("unit", model="m", value=1)
    saved = store.save(first, {"acc": 0.5}, "session-a")
    assert store.load(first) == (saved, "session-a")

    filler.squeeze(budget, to_bytes=1)
    second = SweepPoint.make("unit", model="m", value=2)
    refused = store.save(second, {"acc": 0.25}, "session-a")
    # Correctness is preserved: the caller gets the exact normalized
    # payload a store round-trip would have produced, just un-persisted.
    assert refused["acc"] == 0.25
    assert store.refused_writes == 1
    assert store.load(second) is None
    # Reads keep serving through the full disk.
    assert store.load(first) == (saved, "session-a")

    filler.restore()
    assert store.save(second, {"acc": 0.25}, "session-b") == refused
    assert store.load(second) == (refused, "session-b")
    assert store.refused_writes == 1


def test_disk_filler_is_seeded_and_restores_first_squeeze(tmp_path):
    budgets = [
        DiskBudget(str(tmp_path), 1000, name=name) for name in ("a", "b")
    ]
    filler = DiskFiller(random.Random(SEED))
    victim = filler.squeeze_one(budgets)
    assert victim in ("a", "b")
    # Same seed, same candidate set -> same victim.
    assert DiskFiller(random.Random(SEED)).squeeze_one(budgets) == victim
    squeezed = next(b for b in budgets if b.name == victim)
    filler.squeeze(squeezed, to_bytes=7)  # second squeeze: original kept
    assert squeezed.max_bytes == 7
    filler.restore()
    assert squeezed.max_bytes == 1000
