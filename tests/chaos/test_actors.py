"""Fault actors: seeded determinism and real-process effects.

These are the unit tests of the injection primitives themselves -- each
actor must do exactly the damage it claims (and remember it), and two
actors built from the same seed must do the *same* damage, because the
chaos conformance lane's reproducibility rests on it.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time

import pytest

from repro.chaos.actors import (
    CORRUPTION_MODES,
    ClockPerturber,
    PeerFreezer,
    ProcessReaper,
    SpoolCorruptor,
)
from repro.chaos.schedule import ChaosSchedule
from repro.eval.parallel import fork_available
from repro.telemetry.bus import pid_alive


def _spawn_sleeper():
    import multiprocessing

    context = multiprocessing.get_context(
        "fork" if fork_available() else "spawn"
    )
    process = context.Process(target=time.sleep, args=(120,), daemon=True)
    process.start()
    return process


# -- ProcessReaper ----------------------------------------------------------


def test_reaper_kills_a_real_child():
    process = _spawn_sleeper()
    reaper = ProcessReaper(random.Random(7))
    try:
        victim = reaper.reap([process.pid])
        assert victim == process.pid
        process.join(timeout=10)
        assert process.exitcode == -signal.SIGKILL
        assert reaper.killed == [process.pid]
    finally:
        if process.is_alive():  # pragma: no cover - cleanup on failure
            process.kill()
        process.join(timeout=10)


def test_reaper_skips_dead_candidates():
    process = _spawn_sleeper()
    process.kill()
    process.join(timeout=10)
    reaper = ProcessReaper(random.Random(7))
    assert reaper.reap([process.pid]) is None
    assert reaper.kill(process.pid) is False
    assert reaper.killed == []


def test_reaper_victim_depends_only_on_seed_and_candidate_set(monkeypatch):
    import repro.chaos.actors as actors_module

    monkeypatch.setattr(actors_module, "pid_alive", lambda pid: True)
    pids = [400000, 400001, 400002, 400003]

    class _Immortal(ProcessReaper):
        def kill(self, pid):  # record without signalling anything real
            self.killed.append(pid)
            return True

    picks_a = _Immortal(random.Random(3))
    picks_b = _Immortal(random.Random(3))
    for _ in range(4):
        picks_a.reap(pids)
        picks_b.reap(list(reversed(pids)))  # order must not matter
    assert len(picks_a.killed) == 4
    assert picks_a.killed == picks_b.killed


# -- PeerFreezer ------------------------------------------------------------


def _proc_state(pid: int) -> str:
    with open(f"/proc/{pid}/stat") as handle:
        return handle.read().rsplit(")", 1)[1].split()[0]


@pytest.mark.skipif(
    not os.path.isdir("/proc"), reason="needs /proc to observe stop state"
)
def test_freezer_suspends_and_resumes():
    process = _spawn_sleeper()
    freezer = PeerFreezer()
    try:
        assert freezer.freeze(process.pid)
        deadline = time.monotonic() + 10
        while _proc_state(process.pid) != "T":
            assert time.monotonic() < deadline, "child never stopped"
            time.sleep(0.01)
        # Frozen, not dead: liveness checks must still see it.
        assert pid_alive(process.pid)
        assert freezer.frozen == {process.pid}
        assert freezer.thaw(process.pid)
        deadline = time.monotonic() + 10
        while _proc_state(process.pid) == "T":
            assert time.monotonic() < deadline, "child never resumed"
            time.sleep(0.01)
        assert freezer.frozen == set()
    finally:
        freezer.thaw_all()
        process.kill()
        process.join(timeout=10)


def test_thaw_all_is_safe_on_dead_peers():
    process = _spawn_sleeper()
    freezer = PeerFreezer()
    assert freezer.freeze(process.pid)
    process.kill()
    process.join(timeout=10)
    freezer.thaw_all()  # must not raise
    assert freezer.frozen == set()
    assert freezer.freeze(process.pid) is False


# -- SpoolCorruptor ---------------------------------------------------------


def _write_spool(path, lines=6):
    with open(path, "w") as handle:
        for index in range(lines):
            handle.write(json.dumps({"type": "tick", "seq": index}) + "\n")
    return os.path.getsize(path)


def test_corruptor_truncate_cuts_mid_file(tmp_path):
    path = str(tmp_path / "events.jsonl")
    size = _write_spool(path)
    corruptor = SpoolCorruptor(random.Random(1))
    assert corruptor.corrupt_file(path, "truncate") == "truncate"
    assert os.path.getsize(path) < size
    assert corruptor.corrupted == [(path, "truncate")]


def test_corruptor_append_modes_do_what_they_say(tmp_path):
    for mode in ("tear", "garbage", "non_event"):
        path = str(tmp_path / f"{mode}.jsonl")
        size = _write_spool(path)
        SpoolCorruptor(random.Random(2)).corrupt_file(path, mode)
        with open(path, "rb") as handle:
            handle.seek(size)
            tail = handle.read()
        if mode == "tear":
            assert not tail.endswith(b"\n")  # a write that died mid-line
        else:
            assert tail.endswith(b"\n")
            assert b"\n" not in tail[:-1]  # exactly one complete line
        if mode == "non_event":
            assert isinstance(json.loads(tail), list)  # valid, wrong shape


def test_corruptor_is_deterministic_from_seed(tmp_path):
    def run(directory):
        os.makedirs(directory)
        for name in ("a.jsonl", "b.jsonl", "c.jsonl.old"):
            _write_spool(os.path.join(directory, name))
        corruptor = SpoolCorruptor(random.Random(42))
        hits = [corruptor.corrupt_spool(directory) for _ in range(5)]
        return [
            (os.path.basename(path), mode) for path, mode in hits
        ], [mode for _path, mode in corruptor.corrupted]

    first = run(str(tmp_path / "one"))
    second = run(str(tmp_path / "two"))
    assert first == second
    assert all(mode in CORRUPTION_MODES for mode in first[1])


def test_corruptor_document_clobbers_json(tmp_path):
    path = str(tmp_path / "qos-shard-0.json")
    with open(path, "w") as handle:
        json.dump({"shard": 0, "payload": {"endpoints": {}}}, handle)
    assert SpoolCorruptor(random.Random(3)).corrupt_document(path)
    with open(path) as handle:
        with pytest.raises(json.JSONDecodeError):
            json.load(handle)


def test_corruptor_handles_missing_targets(tmp_path):
    corruptor = SpoolCorruptor(random.Random(4))
    assert corruptor.corrupt_file(str(tmp_path / "gone.jsonl"), "tear") is None
    assert corruptor.corrupt_spool(str(tmp_path / "nodir")) is None
    assert corruptor.corrupt_document(str(tmp_path / "gone.json")) is False
    assert corruptor.corrupted == []


# -- ClockPerturber ---------------------------------------------------------


def test_perturber_clock_is_monotone_and_skews_forward():
    perturber = ClockPerturber(random.Random(5), max_skew_s=0.5)
    readings = [perturber.clock()]
    jumps = []
    for _ in range(20):
        jumps.append(perturber.perturb())
        readings.append(perturber.clock())
    assert all(jump >= 0.0 for jump in jumps)
    assert any(jump > 0.0 for jump in jumps)
    assert readings == sorted(readings)
    assert readings[-1] - readings[0] >= sum(jumps)


def test_perturber_wrapped_runner_preserves_results():
    perturber = ClockPerturber(random.Random(6), max_delay_s=0.001)
    seen = []

    def runner(payloads):
        seen.append(list(payloads))
        return [payload * 2 for payload in payloads]

    wrapped = perturber.wrap_runner(runner)
    assert wrapped([1, 2, 3]) == [2, 4, 6]
    assert seen == [[1, 2, 3]]


# -- ChaosSchedule ----------------------------------------------------------


class _FakeTime:
    def __init__(self):
        self.now = 0.0

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


def test_schedule_fires_in_order_and_records_errors():
    fake = _FakeTime()
    fired = []
    schedule = ChaosSchedule(seed=0, clock=fake.clock, sleep=fake.sleep)
    schedule.at(0.2, "second", lambda: fired.append("second") or "two")
    schedule.at(0.1, "first", lambda: fired.append("first") or "one")

    def boom():
        fired.append("boom")
        raise RuntimeError("actor crashed")

    schedule.at(0.3, "boom", boom)
    schedule.at(0.4, "last", lambda: fired.append("last"))
    log = schedule.run()
    assert fired == ["first", "second", "boom", "last"]
    assert [record["label"] for record in log] == [
        "first", "second", "boom", "last",
    ]
    boom_record = log[2]
    assert boom_record["error"] == repr(RuntimeError("actor crashed"))
    assert boom_record["result"] is None
    # The crash was contained: the entry after it still fired.
    assert log[3]["error"] is None
    assert schedule.describe()["errors"] == 1


def test_schedule_every_expands_a_deterministic_timeline():
    def timeline(seed):
        schedule = ChaosSchedule(seed=seed)
        schedule.every(1.0, "kill", lambda: None, until_s=5.0, jitter_s=0.3)
        schedule.every(
            2.0, "corrupt", lambda: None, until_s=5.0, start_s=0.5
        )
        return schedule.timeline

    assert timeline(11) == timeline(11)
    assert timeline(11) != timeline(12)  # jitter comes from the seed
    labels = [label for _at, label in timeline(11)]
    assert labels.count("kill") == 4
    assert labels.count("corrupt") == 3


def test_schedule_until_and_stop_cut_the_run_short():
    fake = _FakeTime()
    fired = []
    schedule = ChaosSchedule(seed=0, clock=fake.clock, sleep=fake.sleep)
    schedule.at(0.1, "early", lambda: fired.append("early"))
    schedule.at(5.0, "late", lambda: fired.append("late"))
    schedule.run(until_s=1.0)
    assert fired == ["early"]

    fake = _FakeTime()
    fired = []
    stopping = ChaosSchedule(seed=0, clock=fake.clock, sleep=fake.sleep)
    stopping.at(0.1, "one", lambda: fired.append("one"))
    stopping.at(0.2, "stop", stopping.stop)
    stopping.at(0.3, "never", lambda: fired.append("never"))
    stopping.run()
    assert fired == ["one"]


def test_schedule_run_in_thread_joins():
    schedule = ChaosSchedule(seed=0)
    fired = []
    schedule.at(0.0, "tick", lambda: fired.append("tick"))
    thread = schedule.run_in_thread()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert fired == ["tick"]
