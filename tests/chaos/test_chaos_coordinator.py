"""Chaos conformance: cross-shard QoS coordination under wedged peers.

A frozen (SIGSTOP) coordinator peer is the nastiest failure mode the
leaderless protocol claims to handle: the pid stays alive, the state
document stays on disk, only the ``published_at`` heartbeat stops.  The
staleness horizon -- not pid liveness -- must evict it from the quorum,
and a thawed peer must rejoin without any explicit recovery step.  A
SIGKILLed peer, by contrast, must drop out *immediately* via pid
liveness, without waiting out the horizon.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import time

import pytest

from repro.chaos.actors import PeerFreezer, ProcessReaper, SpoolCorruptor
from repro.chaos.invariants import InvariantChecker
from repro.eval.parallel import fork_available
from repro.telemetry.bus import pid_alive
from repro.telemetry.coordinator import ShardStateChannel, recommend_level

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    ),
]

ENDPOINT = "m"
NUM_LEVELS = 4
STALE_S = 1.0
PUBLISH_PERIOD_S = 0.1
BOUND_S = 30.0


def _publisher_main(directory, index, shard_count, desired):
    channel = ShardStateChannel(directory, index, shard_count)
    while True:
        channel.publish(
            {ENDPOINT: {
                "desired": desired,
                "applied": desired,
                "pressure": 0.5,
                "held": False,
            }}
        )
        time.sleep(PUBLISH_PERIOD_S)


def _spawn_publisher(directory, index, shard_count, desired):
    context = multiprocessing.get_context("fork")
    process = context.Process(
        target=_publisher_main,
        args=(directory, index, shard_count, desired),
        daemon=True,
    )
    process.start()
    return process


def _await_recommendation(observer, expected, *, bound_s=BOUND_S):
    """Poll (republishing our own heartbeat) until the quorum's
    recommendation settles at ``expected``; returns the elapsed time or
    fails the bound."""
    started = time.monotonic()
    level = None
    while time.monotonic() - started < bound_s:
        observer.publish(
            {ENDPOINT: {
                "desired": 0, "applied": 0, "pressure": 0.1, "held": False,
            }}
        )
        states = observer.gather(stale_after_s=STALE_S)
        level, _desired = recommend_level(states, ENDPOINT, NUM_LEVELS)
        if level == expected:
            return time.monotonic() - started, level
        time.sleep(0.05)
    return float("inf"), level


def test_frozen_peer_leaves_the_quorum_and_rejoins_on_thaw(tmp_path):
    directory = str(tmp_path)
    observer = ShardStateChannel(directory, 0, 3)
    freezer = PeerFreezer()
    reaper = ProcessReaper(random.Random(0))
    checker = InvariantChecker()
    low = _spawn_publisher(directory, 1, 3, desired=1)
    high = _spawn_publisher(directory, 2, 3, desired=2)
    try:
        elapsed, level = _await_recommendation(observer, 2)
        checker.check_recovered(
            1 if elapsed < BOUND_S else 0, 1, BOUND_S, elapsed,
            name="full_quorum_converges",
        )

        # Freeze the shard pinning the service at rung 2.  Its pid stays
        # alive and its document stays on disk -- only staleness may (and
        # must) evict it.
        assert freezer.freeze(high.pid)
        elapsed, level = _await_recommendation(observer, 1)
        checker.check_recovered(
            1 if elapsed < BOUND_S else 0, 1, BOUND_S, elapsed,
            name="frozen_peer_evicted_by_staleness",
        )
        checker.check(
            "frozen_pid_still_alive", pid_alive(high.pid),
            f"pid {high.pid}",
        )
        checker.check(
            "frozen_document_still_on_disk",
            os.path.exists(os.path.join(directory, "qos-shard-2.json")),
        )

        # Thaw: the peer rejoins by heartbeat alone.
        assert freezer.thaw(high.pid)
        elapsed, level = _await_recommendation(observer, 2)
        checker.check_recovered(
            1 if elapsed < BOUND_S else 0, 1, BOUND_S, elapsed,
            name="thawed_peer_rejoins",
        )

        # SIGKILL the same peer: pid liveness (not the staleness horizon)
        # must evict it, so convergence is prompt even though its last
        # document is still fresh.
        reaper.kill(high.pid)
        high.join(timeout=10)
        elapsed, level = _await_recommendation(observer, 1)
        checker.check_recovered(
            1 if elapsed < BOUND_S else 0, 1, BOUND_S, elapsed,
            name="killed_peer_evicted_by_liveness",
        )
        states = observer.gather(stale_after_s=STALE_S)
        checker.check(
            "killed_shard_absent", 2 not in states,
            f"states {sorted(states)}",
        )
        checker.assert_all()
    finally:
        freezer.thaw_all()
        for process in (low, high):
            if process.is_alive():
                process.kill()
            process.join(timeout=10)


def test_corrupt_shard_document_drops_out_without_crashing(tmp_path):
    """A corrupted state document (disk fault, foreign writer) is counted
    and excluded; the quorum continues on the surviving shards."""
    directory = str(tmp_path)
    observer = ShardStateChannel(directory, 0, 2)
    peer = ShardStateChannel(directory, 1, 2)
    checker = InvariantChecker()
    observer.publish(
        {ENDPOINT: {"desired": 0, "applied": 0, "pressure": 0.1,
                    "held": False}}
    )
    peer.publish(
        {ENDPOINT: {"desired": 3, "applied": 3, "pressure": 0.9,
                    "held": False}}
    )
    level, _ = recommend_level(
        observer.gather(stale_after_s=STALE_S), ENDPOINT, NUM_LEVELS
    )
    checker.check_metrics_exact(level, 3, name="both_shards_counted")

    SpoolCorruptor(random.Random(1)).corrupt_document(
        os.path.join(directory, "qos-shard-1.json")
    )
    states = observer.gather(stale_after_s=STALE_S)
    level, _ = recommend_level(states, ENDPOINT, NUM_LEVELS)
    checker.check_metrics_exact(level, 0, name="corrupt_shard_excluded")
    checker.check(
        "corruption_counted", observer.corrupt_documents == 1,
        f"corrupt_documents {observer.corrupt_documents}",
    )

    # Structurally-wrong-but-valid JSON must be rejected too.
    with open(os.path.join(directory, "qos-shard-1.json"), "w") as handle:
        json.dump(["not", "a", "document"], handle)
    states = observer.gather(stale_after_s=STALE_S)
    checker.check(
        "non_object_document_excluded", 1 not in states,
        f"states {sorted(states)}",
    )
    checker.check(
        "structure_rejection_counted", observer.corrupt_documents == 2,
        f"corrupt_documents {observer.corrupt_documents}",
    )
    checker.assert_all()
