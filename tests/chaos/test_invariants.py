"""Response ledger and invariant checker: the chaos lane's bookkeeping."""

from __future__ import annotations

from concurrent.futures import Future

import pytest

from repro.chaos.invariants import (
    InvariantChecker,
    LedgerViolation,
    ResponseLedger,
)


def test_clean_ledger_is_exact():
    ledger = ResponseLedger()
    for request_id in range(4):
        ledger.offer()
        ledger.admit(request_id)
        ledger.resolve(request_id, "ok" if request_id % 2 else "error")
    ledger.offer()
    ledger.shed_one()
    ledger.offer()
    ledger.admit("late")
    ledger.resolve("late", "expired")
    ledger.assert_exact()
    counts = ledger.counts()
    assert counts == {
        "offered": 6, "shed": 1, "admitted": 5, "resolved": 5,
        "ok": 2, "error": 2, "expired": 1,
    }


def test_lost_response_is_a_violation():
    ledger = ResponseLedger()
    ledger.offer()
    ledger.admit("r1")
    with pytest.raises(LedgerViolation, match="never resolved"):
        ledger.assert_exact()


def test_double_response_is_a_violation():
    ledger = ResponseLedger()
    ledger.offer()
    ledger.admit("r1")
    ledger.resolve("r1", "ok")
    ledger.resolve("r1", "error")
    with pytest.raises(LedgerViolation, match="double-counted"):
        ledger.assert_exact()


def test_double_admission_and_orphan_resolution_are_violations():
    ledger = ResponseLedger()
    ledger.admit("r1")
    ledger.admit("r1")
    ledger.resolve("r1", "ok")
    ledger.resolve("ghost", "ok")
    problems = "\n".join(ledger.violations())
    assert "admitted 2 times" in problems
    assert "without admission" in problems


def test_unknown_outcome_rejected():
    with pytest.raises(ValueError, match="unknown outcome"):
        ResponseLedger().resolve("r1", "maybe")


class _CountingAdmission:
    def __init__(self):
        self.released = 0

    def release(self, images):
        self.released += images


def test_attach_resolves_from_future_and_releases_admission():
    ledger = ResponseLedger()
    admission = _CountingAdmission()

    ok = Future()
    ledger.admit("ok")
    ledger.attach("ok", ok, admission=admission, images=2)
    ok.set_result("fine")

    failed = Future()
    ledger.admit("failed")
    ledger.attach("failed", failed, admission=admission)
    failed.set_exception(RuntimeError("replica died"))

    cancelled = Future()
    ledger.admit("cancelled")
    ledger.attach("cancelled", cancelled, admission=admission)
    cancelled.cancel()

    # A deadline expiry is its own terminal outcome, not an error.
    from repro.serve.deadline import DeadlineExceeded

    expired = Future()
    ledger.admit("expired")
    ledger.attach("expired", expired, admission=admission)
    expired.set_exception(DeadlineExceeded("late", late_by_s=0.01))

    ledger.assert_exact()
    counts = ledger.counts()
    assert counts["ok"] == 1
    assert counts["error"] == 2
    assert counts["expired"] == 1
    assert admission.released == 5  # 2 + 1 + 1 + 1, exactly once each


def test_checker_accumulates_and_asserts():
    checker = InvariantChecker()
    assert checker.check("first", True)
    assert checker.check_metrics_exact(10, 10)
    assert checker.check_single_rung([2, 2, 2])
    assert checker.ok
    checker.check_metrics_exact(9, 10, name="merged")
    assert not checker.ok
    summary = checker.summary()
    assert summary["checked"] == 4
    assert summary["failed"] == 1
    assert [result["name"] for result in checker.failures()] == ["merged"]
    with pytest.raises(AssertionError, match="merged"):
        checker.assert_all()


def test_checker_ledger_and_recovery_helpers():
    checker = InvariantChecker()
    ledger = ResponseLedger()
    ledger.admit("r1")  # lost
    assert not checker.check_ledger(ledger)
    assert checker.check_recovered(5, 5, bound_s=10.0, elapsed_s=1.0)
    assert not checker.check_recovered(
        4, 5, bound_s=10.0, elapsed_s=1.0, name="partial"
    )
    assert not checker.check_recovered(
        5, 5, bound_s=1.0, elapsed_s=2.0, name="late"
    )


def test_checker_reaped_checks_disk(tmp_path):
    checker = InvariantChecker()
    gone = tmp_path / "qos-shard-1.json"
    assert checker.check_reaped([str(gone)])
    gone.write_text("{}")
    assert not checker.check_reaped([str(gone)], name="leftover")
    assert "qos-shard-1.json" in checker.failures()[0]["detail"]
