"""Chaos conformance for the alert engine (PR 9).

Degradation contract: **injected replica loss raises an alert while the
fault is live, and recovery resolves it** -- no flapping, no stuck-firing
alerts -- with the whole lifecycle written to the ring-file history so a
restarted process still sees what happened.

The fault is seeded (same reaper victims every run) and the health
ticker is synchronous, so the fire/resolve sequence is deterministic.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.chaos.actors import ProcessReaper
from repro.chaos.drive import ServingStack, drive_open_loop
from repro.chaos.invariants import InvariantChecker, ResponseLedger
from repro.eval.parallel import fork_available
from repro.telemetry.alerts import (
    ALERT_EVENT_TYPES,
    AlertEngine,
    AlertHistoryStore,
    AlertRule,
)
from repro.telemetry.bus import TelemetryBus

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    ),
]

SEED = 20260808


def _make_stack(tiny_harness, tiny_provider, **overrides):
    params = dict(
        fork_workers=2,
        threads=2,
        max_batch=8,
        max_wait_ms=2.0,
        max_pending=32,
        provider=tiny_provider,
        images=tiny_harness.eval_images,
    )
    params.update(overrides)
    return ServingStack(**params)


def test_replica_loss_fires_an_alert_and_recovery_resolves_it(
    tiny_harness, tiny_provider, tmp_path
):
    stack = _make_stack(tiny_harness, tiny_provider)
    reaper = ProcessReaper(random.Random(SEED))
    checker = InvariantChecker()
    ledger = ResponseLedger()

    bus = TelemetryBus(role="chaos")
    history = AlertHistoryStore(str(tmp_path))
    bus.subscribe(callback=history.record)
    rule = AlertRule(
        name="replica_loss",
        field="dead_workers",
        threshold=1.0,
        clear_threshold=0.5,
        for_s=0.0,       # one bad health tick is enough to fire
        clear_for_s=0.05,  # resolve needs a (briefly) sustained recovery
        cooldown_s=0.0,
        key_fields=("endpoint",),
        severity="critical",
    )
    engine = AlertEngine([rule], publish=bus.publish)
    bus.subscribe(callback=engine.consume)

    def tick():
        # `replica_pids()` only lists *live* worker processes, so the gap
        # to the slot count is the externally observable damage (the
        # pool's own `failed_replicas` stays 0 while respawns succeed).
        health = stack.replica_health()
        dead = max(0, health["replicas"] - len(stack.replica_pids()))
        bus.publish(
            "endpoint_health",
            endpoint=stack.spec.name,
            dead_workers=dead,
            failed_replicas=health["failed_replicas"],
            live_replicas=health["live_replicas"],
            pressure=stack.admission.pressure,
        )

    replica_set = stack.pool.replica_set(stack.spec.name)
    image = stack.images[:1]
    try:
        # -- healthy baseline --------------------------------------------
        warmup = drive_open_loop(
            stack, rate=40.0, duration=0.5, budget_s=10.0, ledger=ledger
        )
        checker.check("warmup_served", warmup["completed"] > 0,
                      f"warmup {warmup}")
        tick()
        checker.check("healthy_baseline_quiet", engine.active() == [],
                      f"active {engine.active()}")

        # -- fault: reap every worker ------------------------------------
        pids = stack.replica_pids()
        checker.check("had_workers", len(pids) >= 2, f"pids {pids}")
        for pid in pids:
            reaper.kill(pid)
        deadline = time.monotonic() + 30.0
        while not engine.active() and time.monotonic() < deadline:
            tick()
            time.sleep(0.01)
        checker.check(
            "alert_fired_during_fault",
            [(a["rule"], a["status"]) for a in engine.active()]
            == [("replica_loss", "firing")],
            f"active {engine.active()}, pids {stack.replica_pids()}",
        )

        # -- recovery: probes heal, the alert must resolve ---------------
        deadline = time.monotonic() + 60.0
        streak = 0
        while (streak < 5 or engine.active()) and \
                time.monotonic() < deadline:
            try:
                replica_set.infer(image)
            except RuntimeError:
                streak = 0
                tick()
                continue
            streak += 1
            tick()
        health = stack.replica_health()
        checker.check(
            "replicas_recovered",
            health["live_replicas"] == health["replicas"]
            and not health["degraded"],
            f"health {health}",
        )
        checker.check("alert_resolved_after_recovery",
                      engine.active() == [], f"active {engine.active()}")
        checker.check(
            "one_clean_cycle",
            engine.fired_total == 1 and engine.resolved_total == 1,
            f"fired {engine.fired_total} resolved {engine.resolved_total}",
        )

        # -- ring-file history survives a restart ------------------------
        history.close()
        replayed = AlertHistoryStore(str(tmp_path))
        events = replayed.load()
        lifecycle = [
            (e.data["rule"], e.data["status"])
            for e in events
            if e.type in ALERT_EVENT_TYPES
        ]
        checker.check(
            "history_has_the_full_lifecycle",
            lifecycle == [("replica_loss", "firing"),
                          ("replica_loss", "resolved")],
            f"lifecycle {lifecycle}",
        )
        checker.check(
            "history_kept_health_context",
            any(e.type == "endpoint_health" for e in events),
            f"types {[e.type for e in events]}",
        )
        replayed.close()
        checker.assert_all()
    finally:
        stack.close()
