"""Chaos conformance for tracing (PR 10): a trace survives a replica kill.

Degradation contract: **a traced request whose replica is reaped still
ends as one complete, well-formed trace** -- the failed attempt's spans
carry the error and the ``replica_respawn`` gap annotation, the retried
attempt (same trace id, as a client re-sending its ``X-Trace-Id`` would)
carries the full engine subtree, and no span is orphaned.

The fault is seeded (same victims every run) and the kill happens
before the submit, so the first batch deterministically hits a dead
worker.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.chaos.actors import ProcessReaper
from repro.chaos.invariants import InvariantChecker
from repro.eval.parallel import fork_available
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.tracing import SPAN_EVENT, Tracer, build_tree, group_spans

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.trace,
    pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    ),
]

SEED = 20260809


def _make_stack(tiny_harness, tiny_provider, **overrides):
    from repro.chaos.drive import ServingStack

    params = dict(
        fork_workers=2,
        threads=2,
        max_batch=8,
        max_wait_ms=2.0,
        max_pending=32,
        provider=tiny_provider,
        images=tiny_harness.eval_images,
    )
    params.update(overrides)
    return ServingStack(**params)


def test_traced_request_survives_replica_kill(tiny_harness, tiny_provider):
    stack = _make_stack(tiny_harness, tiny_provider)
    reaper = ProcessReaper(random.Random(SEED))
    checker = InvariantChecker()

    bus = TelemetryBus(role="chaos")
    spans: list[dict] = []
    bus.subscribe(
        callback=lambda event: spans.append(dict(event.data)),
        types={SPAN_EVENT},
    )
    tracer = Tracer(publish=bus.publish, sample_rate=1.0)
    stack.batcher.tracer = tracer

    image = stack.images[:1]
    try:
        # -- healthy baseline: the stack serves before the fault --------
        warm = stack.batcher.submit(image).result(timeout=120)
        checker.check("warm_served", warm is not None, "no baseline result")

        # -- fault: reap every worker, then send ONE traced request -----
        pids = stack.replica_pids()
        checker.check("had_workers", len(pids) >= 2, f"pids {pids}")
        for pid in pids:
            reaper.kill(pid)

        context = tracer.trace()
        root = tracer.start_span(
            context, "request", root=True, endpoint=stack.spec.name
        )
        attempts = 0
        deadline = time.monotonic() + 120.0
        result = None
        while time.monotonic() < deadline:
            attempts += 1
            try:
                result = stack.batcher.submit(image, trace=context).result(
                    timeout=120
                )
                break
            except RuntimeError:
                # A client retry re-sends the same X-Trace-Id: the retry
                # rides the same trace, so the final waterfall shows the
                # respawn gap it survived.
                continue
        root.finish()
        checker.check("request_survived", result is not None,
                      f"no result after {attempts} attempts")

        # -- one complete trace ------------------------------------------
        grouped = group_spans(spans)
        checker.check(
            "one_trace", list(grouped) == [context.trace_id],
            f"traces {list(grouped)}",
        )
        trace = grouped.get(context.trace_id, [])
        names = [s["name"] for s in trace]
        for required in ("request", "queue_wait", "batch", "engine_compute"):
            checker.check(f"has_{required}", required in names,
                          f"names {names}")
        checker.check(
            "has_layers", any(n.startswith("layer:") for n in names),
            f"names {names}",
        )

        # -- the respawn gap is annotated in-trace -----------------------
        respawns = [s for s in trace if s["name"] == "replica_respawn"]
        checker.check("respawn_annotated", len(respawns) >= 1,
                      f"names {names}, attempts {attempts}")
        if respawns:
            checker.check(
                "respawn_marked_error",
                all(s.get("status") == "error" for s in respawns),
                f"respawns {respawns}",
            )
            checker.check(
                "respawn_names_the_victim",
                all(s.get("pid") in pids or s.get("pid") is None
                    for s in respawns),
                f"respawns {respawns}, victims {pids}",
            )

        # -- failed attempts are visible, not vanished -------------------
        failed_batches = [
            s for s in trace
            if s["name"] == "batch" and s.get("status") == "error"
        ]
        checker.check(
            "failed_attempt_traced",
            attempts == 1 or len(failed_batches) >= 1,
            f"attempts {attempts}, batch statuses "
            f"{[s.get('status') for s in trace if s['name'] == 'batch']}",
        )

        # -- well-formed: single root, no orphans, no dangling parents ---
        by_id = {s["span_id"]: s for s in trace}
        roots = [s for s in trace if not s.get("parent_id")]
        checker.check("single_root", [r["name"] for r in roots] == ["request"],
                      f"roots {[r['name'] for r in roots]}")
        dangling = [
            s["name"] for s in trace
            if s.get("parent_id") and s["parent_id"] not in by_id
        ]
        checker.check("no_orphans", dangling == [], f"dangling {dangling}")
        tree = build_tree(trace)
        checker.check(
            "tree_has_one_root_node", len(tree) == 1,
            f"tree roots {[n['span']['name'] for n in tree]}",
        )

        # -- the successful attempt computed in a (respawned) worker -----
        engines = [s for s in trace if s["name"] == "engine_compute"]
        checker.check(
            "engine_ran_in_a_worker",
            any(s.get("pid") not in (None, os.getpid()) for s in engines),
            f"engine pids {[s.get('pid') for s in engines]}",
        )
        checker.assert_all()
    finally:
        stack.close()
