"""Experiment harness: accuracy pipeline, reordering, speedup model."""

import numpy as np
import pytest


def test_reference_accuracies(tiny_harness):
    assert 0.0 <= tiny_harness.int8_accuracy <= 1.0
    assert abs(tiny_harness.int8_accuracy - tiny_harness.fp32_accuracy) <= 0.1
    # Accuracies are memoized.
    assert tiny_harness.int8_accuracy == tiny_harness.int8_accuracy


def test_nbsmt_run_reports_stats_and_speedup(tiny_harness):
    result = tiny_harness.evaluate_nbsmt(threads=2, policy="S+A", reorder=False)
    assert 0.0 <= result.accuracy <= 1.0
    assert result.policy == "S+A"
    assert result.speedup == pytest.approx(2.0, abs=0.01)
    assert result.layer_stats
    for stats in result.layer_stats.values():
        assert stats.mac_total > 0
    assert result.mean_utilization_gain() >= 1.0


def test_nbsmt_accuracy_ordering(tiny_harness):
    """NB-SMT accuracy sits between the worst-case 'min' policy and INT8."""
    int8 = tiny_harness.int8_accuracy
    best = tiny_harness.evaluate_nbsmt(threads=2, policy="S+A", reorder=True,
                                       collect_stats=False)
    worst = tiny_harness.evaluate_nbsmt(threads=2, policy="min", reorder=False,
                                        collect_stats=False)
    assert best.accuracy >= worst.accuracy - 0.03
    assert best.accuracy <= int8 + 0.05


def test_four_threads_degrade_more_than_two(tiny_harness):
    two = tiny_harness.evaluate_nbsmt(threads=2, policy="S+A", collect_stats=False)
    four = tiny_harness.evaluate_nbsmt(threads=4, policy="S+A", collect_stats=False)
    assert four.accuracy <= two.accuracy + 0.05
    assert four.speedup == pytest.approx(4.0, abs=0.01)


def test_reorder_permutations_are_valid(tiny_harness):
    permutations = tiny_harness.reorder_permutations(threads=2)
    assert permutations
    for name, perm in permutations.items():
        stats = tiny_harness.calibration.column_stats[name]
        assert sorted(perm.tolist()) == list(range(stats.num_columns))
    # Cached on repeated calls.
    assert tiny_harness.reorder_permutations(threads=2) is permutations


def test_layer_mac_counts_positive_and_cached(tiny_harness):
    macs = tiny_harness.layer_mac_counts()
    assert macs
    assert all(count > 0 for count in macs.values())
    assert tiny_harness.layer_mac_counts() is macs


def test_speedup_for_mixed_assignment(tiny_harness):
    names = list(tiny_harness.qmodel.layer_names())
    assignment = {name: 2 for name in names}
    assignment[names[0]] = 1
    speedup = tiny_harness.speedup_for(assignment)
    assert 1.0 < speedup < 2.0


def test_per_layer_threads_respected(tiny_harness):
    names = tiny_harness.qmodel.layer_names()
    assignment = {name: 1 for name in names}
    result = tiny_harness.evaluate_nbsmt(threads=assignment, collect_stats=False)
    assert result.speedup == pytest.approx(1.0)
    assert result.accuracy == pytest.approx(tiny_harness.int8_accuracy, abs=0.02)
