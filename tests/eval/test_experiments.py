"""Experiment modules: registry, formatters and the lightweight experiments.

The heavyweight experiments (which train zoo models) are exercised by the
benchmark harness; here we cover the experiment registry, the hardware-only
experiment end to end, the result persistence helpers and every formatter on
synthetic result dictionaries.
"""

import pytest

from repro.eval.experiments import EXPERIMENTS
from repro.eval.experiments import (
    energy_savings,
    fig1_utilization,
    fig7_robustness,
    fig8_mse,
    fig9_utilization_gain,
    fig10_pruning,
    mlperf_quality,
    table1_models,
    table2_hardware,
    table3_policies,
    table4_ptq,
    table5_4threads,
)
from repro.eval.experiments.common import (
    SCALES,
    get_scale,
    load_result,
    save_result,
)


def test_registry_covers_every_evaluation_artifact():
    expected = {
        "fig1", "table1", "table2", "fig7", "table3", "fig8", "table4",
        "fig9", "table5", "fig10", "energy", "mlperf",
    }
    assert set(EXPERIMENTS) == expected
    for module in EXPERIMENTS.values():
        assert hasattr(module, "run")
        assert hasattr(module, "format_result")
        assert hasattr(module, "EXPERIMENT_ID")


def test_scales_and_unknown_scale():
    assert get_scale("fast").fast_models
    assert not get_scale("full").fast_models
    assert get_scale(SCALES["fast"]) is SCALES["fast"]
    with pytest.raises(KeyError):
        get_scale("mystery")


def test_save_and_load_result(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    payload = {"experiment": "unit", "values": {"a": 1.5}}
    path = save_result("unit", payload)
    assert path.exists()
    assert load_result("unit") == payload
    assert load_result("missing") is None


def test_table2_experiment_end_to_end(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    result = table2_hardware.run()
    assert result["configs"]["sysmt_2t"]["area_ratio"] == pytest.approx(1.44, abs=0.05)
    text = table2_hardware.format_result(result)
    assert "SySMT 2T" in text and "Area ratio" in text


def test_formatters_render_synthetic_results():
    fig1_text = fig1_utilization.format_result(
        {
            "per_model": {"resnet18": {"full": 0.2, "partial": 0.2, "idle": 0.6}},
            "average": {"full": 0.2, "partial": 0.2, "idle": 0.6},
        }
    )
    assert "ResNet-18" in fig1_text and "Idle" in fig1_text

    table1_text = table1_models.format_result(
        {
            "models": {
                "alexnet": {
                    "fp32_accuracy": 0.9,
                    "int8_accuracy": 0.89,
                    "conv_macs": 1_000_000,
                    "fc_macs": 1000,
                }
            }
        }
    )
    assert "AlexNet" in table1_text

    fig7_text = fig7_robustness.format_result(
        {"per_model": {"resnet18": {"A8W8": 0.9, "A4W8": 0.85, "A8W4": 0.6,
                                    "A4W4": 0.5}}}
    )
    assert "A4W4" in fig7_text

    table3_text = table3_policies.format_result(
        {"per_model": {"resnet18": {"A8W8": 0.9, "min": 0.7, "S+A": 0.88}}}
    )
    assert "S+A" in table3_text

    fig8_text = fig8_mse.format_result(
        {
            "model": "googlenet",
            "without_reorder": [
                {"layer": "l1", "sparsity": 0.5, "mse": 1.0, "relative_mse": 0.01}
            ],
            "with_reorder": [
                {"layer": "l1", "sparsity": 0.5, "mse": 0.5, "relative_mse": 0.005}
            ],
            "correlation_without": -0.5,
            "correlation_with": -0.6,
            "mean_relative_mse_without": 0.01,
            "mean_relative_mse_with": 0.005,
        }
    )
    assert "googlenet" in fig8_text and "correlation" in fig8_text

    fig9_text = fig9_utilization_gain.format_result(
        {
            "model": "googlenet",
            "series": {
                "without_reorder": [
                    {"layer": "l1", "sparsity": 0.5, "measured_gain": 1.5,
                     "analytic_gain": 1.5}
                ],
                "with_reorder": [
                    {"layer": "l1", "sparsity": 0.5, "measured_gain": 1.6,
                     "analytic_gain": 1.5}
                ],
            },
            "mean_abs_deviation_from_eq8": 0.02,
        }
    )
    assert "Eq. (8)" in fig9_text

    table4_text = table4_ptq.format_result(
        {
            "per_model": {
                "resnet18": {"a_bits": 4, "w_bits": 8, "sysmt": 0.9, "lbq": 0.88,
                             "aciq": 0.87, "fp32": 0.92}
            }
        }
    )
    assert "ACIQ" in table4_text

    table5_text = table5_4threads.format_result(
        {
            "per_model": {
                "resnet18": {
                    "A8W8": {"accuracy": 0.9, "speedup": 1.0},
                    "4T": {"accuracy": 0.8, "speedup": 4.0},
                    "1L@2T": {"accuracy": 0.85, "speedup": 3.7},
                }
            }
        }
    )
    assert "1L@2T" in table5_text

    fig10_text = fig10_pruning.format_result(
        {
            "model": "resnet18",
            "curves": {
                "40%": [
                    {"slowed_layers": 0, "accuracy": 0.8, "speedup": 4.0,
                     "int8_accuracy": 0.9}
                ]
            },
        }
    )
    assert "Pruning" in fig10_text

    energy_text = energy_savings.format_result(
        {
            "per_model": {
                "resnet18": {"baseline_mj_2t": 1.0, "saving_2t": 0.3, "saving_4t": 0.35}
            },
            "average_saving": {"2t": 0.3, "4t": 0.35},
        }
    )
    assert "saving" in energy_text.lower()

    mlperf_text = mlperf_quality.format_result(
        {
            "per_model": {
                "resnet50": {
                    "target_fraction": 0.99,
                    "reference_accuracy": 0.9,
                    "achieved_accuracy": 0.895,
                    "speedup": 1.97,
                    "slowed_layers": 2,
                    "meets_target": 1.0,
                }
            }
        }
    )
    assert "ResNet-50" in mlperf_text and "yes" in mlperf_text
