"""Sharded multi-process evaluation: equivalence with the serial path."""

import numpy as np
import pytest

from repro.eval.parallel import (
    count_correct,
    evaluate_sharded,
    fork_available,
    shard_bounds,
)


def test_shard_bounds_cover_range_exactly():
    for total in (1, 2, 7, 64, 97):
        for shards in (1, 2, 4, 9, 200):
            bounds = shard_bounds(total, shards)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == total
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start
            assert len(bounds) <= max(1, min(shards, total))
            sizes = [stop - start for start, stop in bounds]
            assert max(sizes) - min(sizes) <= 1


def test_count_correct_matches_evaluate_accuracy(tiny_harness):
    from repro.nn.train import evaluate_accuracy

    images = tiny_harness.eval_images
    labels = tiny_harness.eval_labels
    correct = count_correct(tiny_harness.qmodel.model, images, labels, batch_size=48)
    accuracy = evaluate_accuracy(
        tiny_harness.qmodel.model, images, labels, batch_size=48
    )
    assert correct / images.shape[0] == pytest.approx(accuracy)


def test_evaluate_sharded_serial_fallback(tiny_harness):
    accuracy_serial = tiny_harness.qmodel.evaluate(
        tiny_harness.eval_images, tiny_harness.eval_labels, batch_size=48
    )
    accuracy_fallback = evaluate_sharded(
        tiny_harness.qmodel,
        tiny_harness.eval_images,
        tiny_harness.eval_labels,
        batch_size=48,
        workers=1,
    )
    assert accuracy_fallback == pytest.approx(accuracy_serial)


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_parallel_nbsmt_run_matches_serial(tiny_harness):
    serial = tiny_harness.evaluate_nbsmt(threads=2, collect_stats=True)
    parallel = tiny_harness.evaluate_nbsmt(threads=2, collect_stats=True, workers=2)
    assert parallel.accuracy == pytest.approx(serial.accuracy)
    assert set(parallel.layer_stats) == set(serial.layer_stats)
    for name, stats in serial.layer_stats.items():
        assert parallel.layer_stats[name].as_dict() == pytest.approx(
            stats.as_dict()
        ), name


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_parallel_accuracy_eval_matches_serial(tiny_harness):
    qmodel = tiny_harness.qmodel
    serial = qmodel.evaluate(
        tiny_harness.eval_images, tiny_harness.eval_labels, batch_size=48
    )
    parallel = qmodel.evaluate(
        tiny_harness.eval_images, tiny_harness.eval_labels, batch_size=48, workers=2
    )
    assert parallel == pytest.approx(serial)


def test_empty_evaluation_set(tiny_harness):
    accuracy = evaluate_sharded(
        tiny_harness.qmodel,
        tiny_harness.eval_images[:0],
        tiny_harness.eval_labels[:0],
        workers=4,
    )
    assert accuracy == 0.0


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_worklist_worker_drains_on_sigterm(tmp_path):
    """A signaled worker finishes its in-flight thunk, skips the rest, and
    still runs the finalizer (graceful shutdown, no orphaned state)."""
    import os
    import signal

    from repro.eval.parallel import run_worklists

    def first_thunk():
        (tmp_path / "first.done").write_text("ok")
        os.kill(os.getpid(), signal.SIGTERM)  # arrives mid-worklist
        (tmp_path / "first.after-signal").write_text("ok")

    def second_thunk():
        (tmp_path / "second.done").write_text("ok")

    def finalizer():
        (tmp_path / "finalized").write_text("ok")

    ok = run_worklists([[first_thunk, second_thunk]], finalizer=finalizer)
    assert ok == [True]
    # The in-flight thunk completed past the signal (drain, not abort)...
    assert (tmp_path / "first.done").exists()
    assert (tmp_path / "first.after-signal").exists()
    # ...the remaining thunk was skipped, and cleanup still ran.
    assert not (tmp_path / "second.done").exists()
    assert (tmp_path / "finalized").exists()
