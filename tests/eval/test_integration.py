"""Cross-module integration tests.

These tests tie the layers of the stack together the same way the paper's
evaluation does: quantized model -> NB-SMT engine -> systolic array and
hardware models, checking the invariants that the experiments rely on.
"""

import numpy as np
import pytest

from repro.core.engine import NBSMTEngine
from repro.core.smt import NBSMTMatmul
from repro.quant.engine import ExactEngine, LayerContext
from repro.systolic.os_sa import OutputStationarySA
from repro.systolic.sysmt import SySMTArray
from repro.systolic.utilization import utilization_gain_analytic
from repro.utils.rng import new_rng
from tests.conftest import make_quantized_pair


def test_quantized_layer_through_array_equals_engine(tiny_harness):
    """The SySMT array and the NB-SMT engine produce identical accumulators."""
    name = tiny_harness.qmodel.layer_names()[0]
    layer = tiny_harness.qmodel.layers[name]
    scale = tiny_harness.calibration.scale_for(name)

    # Capture one real quantized operand pair from the wrapped model.
    captured = {}
    original_matmul = layer.module.matmul_fn

    def capture(cols, weight_2d):
        from repro.quant.quantizer import (
            quantize_activations,
            quantize_weights_per_channel,
        )

        captured["x"] = quantize_activations(cols, scale).values
        captured["w"] = quantize_weights_per_channel(weight_2d).values
        return original_matmul(cols, weight_2d)

    layer.module.matmul_fn = capture
    try:
        tiny_harness.qmodel.forward(tiny_harness.eval_images[:8])
    finally:
        layer.module.matmul_fn = original_matmul

    x_q, w_q = captured["x"], captured["w"]
    engine = NBSMTEngine("S+A")
    engine_out = engine.matmul(x_q, w_q, LayerContext(name=name, threads=2))
    array = SySMTArray(rows=8, cols=8, threads=2, policy="S+A")
    array_out, _ = array.matmul(x_q, w_q)
    assert np.array_equal(engine_out, array_out)


def test_real_activations_follow_eq8(tiny_harness):
    """Measured utilization gain of real layers stays near the 1+s line."""
    run = tiny_harness.evaluate_nbsmt(threads=2, reorder=False, collect_stats=True)
    for stats in run.layer_stats.values():
        if stats.mac_total == 0:
            continue
        predicted = utilization_gain_analytic(stats.activation_sparsity, 2)
        assert stats.utilization_gain == pytest.approx(predicted, abs=0.25)


def test_baseline_array_utilization_matches_executor_stats():
    """The OS-SA utilization counter equals the executor's baseline counter."""
    rng = new_rng(33)
    x, w = make_quantized_pair(rng, m=24, k=40, n=16)
    array = OutputStationarySA(rows=8, cols=8)
    _, report = array.matmul(x, w)
    executor = NBSMTMatmul(2, "S+A")
    executor.matmul(x, w)
    assert report.mac_cycles_active == executor.stats.mac_active
    assert report.utilization == pytest.approx(executor.stats.baseline_utilization)


def test_exact_engine_and_one_thread_nbsmt_agree_on_model(tiny_harness):
    """Running every layer with one thread reproduces the INT8 baseline."""
    names = tiny_harness.qmodel.layer_names()
    single = tiny_harness.evaluate_nbsmt(
        threads={name: 1 for name in names}, collect_stats=False
    )
    tiny_harness.qmodel.set_engine(ExactEngine())
    exact_accuracy = tiny_harness.qmodel.evaluate(
        tiny_harness.eval_images, tiny_harness.eval_labels,
        batch_size=tiny_harness.batch_size,
    )
    assert single.accuracy == pytest.approx(exact_accuracy, abs=1e-9)


def test_weight_family_policy_on_model(tiny_harness):
    """The ResNet-50-style weight-reduction family works end to end."""
    run = tiny_harness.evaluate_nbsmt(threads=2, policy="S+W", collect_stats=False)
    assert 0.0 <= run.accuracy <= 1.0
    assert run.policy == "S+W"


def test_thread_count_monotonicity_of_noise(tiny_harness):
    """More threads means more collisions and at least as much injected noise."""
    two = tiny_harness.evaluate_nbsmt(threads=2, reorder=False, collect_stats=True)
    four = tiny_harness.evaluate_nbsmt(threads=4, reorder=False, collect_stats=True)
    mse_two = np.mean([s.relative_mse for s in two.layer_stats.values()])
    mse_four = np.mean([s.relative_mse for s in four.layer_stats.values()])
    assert mse_four >= mse_two * 0.9
