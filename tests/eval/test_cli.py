"""Command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.eval.experiments import EXPERIMENTS


def test_list_command_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_rejects_unknown_experiment(capsys):
    assert main(["run", "not-an-experiment"]) == 2
    assert "unknown experiments" in capsys.readouterr().err


def test_run_table2(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["run", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "finished in" in out


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])
    args = parser.parse_args(["--scale", "full", "run", "table2"])
    assert args.scale == "full"
    assert args.experiments == ["table2"]
    assert args.workers == 1 and not args.resume


def test_parser_accepts_sweep_flags():
    parser = build_parser()
    args = parser.parse_args(["run", "--workers", "4", "--resume", "table2"])
    assert args.workers == 4
    assert args.resume


def test_run_with_workers_and_resume(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["run", "table2", "--workers", "2"]) == 0
    capsys.readouterr()
    # The persisted sweep point is picked up by a --resume run.
    assert main(["run", "table2", "--resume"]) == 0
    assert "Table II" in capsys.readouterr().out
    points = list((tmp_path / "results" / "points" / "fast").glob("*.json"))
    assert points, "sweep points must be persisted under the results cache"
