"""MAC breakdown, per-layer MSE, throttling, energy and MLPerf helpers."""

import numpy as np
import pytest

from repro.core.smt import SMTStatistics
from repro.eval.energy import energy_report
from repro.eval.macs import mac_utilization_breakdown, model_mac_counts
from repro.eval.mlperf import meets_quality_target, run_quality_target
from repro.eval.mse import mse_sparsity_correlation, per_layer_mse
from repro.eval.throttle import (
    plan_speedup,
    rank_layers_by_mse,
    throttle_layers,
    throttle_to_accuracy,
)


# -- Fig. 1 measurement ------------------------------------------------------------

def test_mac_breakdown_fractions(tiny_harness):
    breakdown = mac_utilization_breakdown(tiny_harness)
    fractions = breakdown.fractions
    assert fractions["idle"] + fractions["partial"] + fractions["full"] == pytest.approx(1.0)
    # ReLU-driven sparsity makes a large share of MACs idle.
    assert fractions["idle"] > 0.2


def test_model_mac_counts(tiny_trained_entry):
    counts = model_mac_counts(
        tiny_trained_entry.model,
        image_size=tiny_trained_entry.dataset.config.image_size,
    )
    assert counts["total"] == counts["conv"] + counts["fc"]
    assert counts["conv"] > counts["fc"] > 0


# -- Fig. 8 measurement --------------------------------------------------------------

def test_per_layer_mse_points(tiny_harness):
    points = per_layer_mse(tiny_harness, threads=2, reorder=False)
    assert points
    for point in points:
        assert 0.0 <= point.sparsity <= 1.0
        assert point.mse >= 0.0
    correlation = mse_sparsity_correlation(points)
    assert -1.0 <= correlation <= 1.0


def test_reordering_does_not_increase_mean_mse(tiny_harness):
    without = per_layer_mse(tiny_harness, threads=2, reorder=False)
    with_reorder = per_layer_mse(tiny_harness, threads=2, reorder=True)
    mean_without = np.mean([p.relative_mse for p in without])
    mean_with = np.mean([p.relative_mse for p in with_reorder])
    assert mean_with <= mean_without * 1.05


# -- throttling ------------------------------------------------------------------------

def test_rank_layers_by_mse_orders_descending():
    stats = {
        "a": SMTStatistics(sum_sq_error=10.0, sum_sq_exact=100.0, outputs=1, mac_total=1),
        "b": SMTStatistics(sum_sq_error=50.0, sum_sq_exact=100.0, outputs=1, mac_total=1),
        "c": SMTStatistics(sum_sq_error=50.0, sum_sq_exact=100.0, outputs=1, mac_total=1),
    }
    ranked = rank_layers_by_mse(stats, ["a", "b", "c"])
    assert ranked[0] == "b"  # ties broken towards earlier layers
    assert ranked[1] == "c"
    assert ranked[-1] == "a"


def test_throttle_layers_improves_accuracy_and_reduces_speedup(tiny_harness):
    baseline = tiny_harness.evaluate_nbsmt(threads=4, reorder=True)
    ranked = rank_layers_by_mse(baseline.layer_stats, tiny_harness.qmodel.layer_names())
    throttled, assignment = throttle_layers(
        tiny_harness, base_threads=4, slow_layers=ranked[:1], slow_threads=2,
        reorder=True,
    )
    assert assignment[ranked[0]] == 2
    assert throttled.speedup < 4.0
    assert throttled.accuracy >= baseline.accuracy - 0.05
    assert plan_speedup(tiny_harness, assignment) == pytest.approx(throttled.speedup)


def test_throttle_to_accuracy_stops_at_target(tiny_harness):
    plans = throttle_to_accuracy(
        tiny_harness,
        target_accuracy=0.0,
        base_threads=4,
        slow_threads=2,
    )
    assert len(plans) == 1  # target already met by the all-4T plan
    plans = throttle_to_accuracy(
        tiny_harness,
        target_accuracy=1.01,  # unreachable: slows every layer
        base_threads=4,
        slow_threads=2,
        max_slowed=2,
    )
    assert len(plans) == 3
    assert plans[-1].num_slowed == 2
    assert plans[-1].speedup <= plans[0].speedup


# -- energy ---------------------------------------------------------------------------

def test_energy_report_savings(tiny_harness):
    run = tiny_harness.evaluate_nbsmt(threads=2, reorder=True)
    report = energy_report(tiny_harness, run, threads=2)
    assert report.baseline_mj > 0
    assert report.sysmt_mj > 0
    assert 0.0 < report.saving < 0.6


# -- MLPerf ----------------------------------------------------------------------------

def test_meets_quality_target():
    assert meets_quality_target(0.99, 1.0, 0.99)
    assert not meets_quality_target(0.98, 1.0, 0.99)


def test_run_quality_target(tiny_harness):
    outcome = run_quality_target(tiny_harness, target_fraction=0.5, threads=2)
    assert outcome.meets_target
    assert outcome.speedup > 1.0
    assert outcome.achieved_accuracy >= 0.5 * outcome.reference_accuracy
