"""Refcounted harness LRU: eviction/clear defer close under live leases."""

import pytest

from repro.eval.experiments import common


class FakeHarness:
    """Stands in for a SysmtHarness in the cache (only close() is touched)."""

    def __init__(self, name: str):
        self.name = name
        self.closed = 0

    def close(self) -> None:
        self.closed += 1


@pytest.fixture
def pristine_cache():
    """Run against an empty cache; restore whatever was there afterwards."""
    with common._CACHE_LOCK:
        saved_harnesses = dict(common._HARNESS_CACHE)
        saved_models = dict(common._MODEL_CACHE)
        saved_leases = dict(common._HARNESS_LEASES)
        saved_deferred = set(common._DEFERRED_CLOSE)
        common._HARNESS_CACHE.clear()
        common._MODEL_CACHE.clear()
        common._HARNESS_LEASES.clear()
        common._DEFERRED_CLOSE.clear()
    yield
    with common._CACHE_LOCK:
        common._HARNESS_CACHE.clear()
        common._HARNESS_CACHE.update(saved_harnesses)
        common._MODEL_CACHE.clear()
        common._MODEL_CACHE.update(saved_models)
        common._HARNESS_LEASES.clear()
        common._HARNESS_LEASES.update(saved_leases)
        common._DEFERRED_CLOSE.clear()
        common._DEFERRED_CLOSE.update(saved_deferred)


def seed_cache(*names: str) -> dict[str, FakeHarness]:
    harnesses = {}
    for name in names:
        harness = FakeHarness(name)
        common._HARNESS_CACHE[(name, "fast")] = harness
        harnesses[name] = harness
    return harnesses


def test_clear_defers_close_for_leased_harness(pristine_cache):
    harnesses = seed_cache("a", "b")
    leased = common.acquire_harness("a", "fast")  # cache hit, no build
    assert leased is harnesses["a"]
    common.clear_harness_cache()
    # The un-leased harness closes immediately; the leased one is deferred.
    assert harnesses["b"].closed == 1
    assert harnesses["a"].closed == 0
    common.release_harness(leased)
    assert harnesses["a"].closed == 1


def test_eviction_defers_close_until_release(pristine_cache, monkeypatch):
    monkeypatch.setenv("REPRO_HARNESS_CACHE_LIMIT", "1")
    harnesses = seed_cache("a")
    leased = common.acquire_harness("a", "fast")
    seed_cache("b")
    # Touching "b" trims the LRU to one entry, evicting the leased "a".
    assert common.acquire_harness("b", "fast") is not leased
    assert ("a", "fast") not in common._HARNESS_CACHE
    assert harnesses["a"].closed == 0  # still leased: close deferred
    common.release_harness(leased)
    assert harnesses["a"].closed == 1
    common.release_harness(common._HARNESS_CACHE[("b", "fast")])


def test_nested_leases_close_only_after_last_release(pristine_cache):
    harnesses = seed_cache("a")
    first = common.acquire_harness("a", "fast")
    second = common.acquire_harness("a", "fast")
    assert first is second
    common.clear_harness_cache()
    common.release_harness(first)
    assert harnesses["a"].closed == 0  # one lease still out
    common.release_harness(second)
    assert harnesses["a"].closed == 1


def test_release_of_cached_harness_does_not_close(pristine_cache):
    harnesses = seed_cache("a")
    leased = common.acquire_harness("a", "fast")
    common.release_harness(leased)
    # Still cached: nothing was deferred, so nothing closes.
    assert harnesses["a"].closed == 0
    assert ("a", "fast") in common._HARNESS_CACHE


def test_discard_inherited_state_drops_leases_without_closing(pristine_cache):
    harnesses = seed_cache("a")
    common.acquire_harness("a", "fast")
    common.discard_inherited_state()
    assert harnesses["a"].closed == 0
    assert not common._HARNESS_LEASES
    assert not common._DEFERRED_CLOSE
