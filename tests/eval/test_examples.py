"""Example scripts: importable, documented and wired to the public API.

The examples are exercised as modules (their ``main`` functions are heavy, so
only the cheapest one is executed end to end here; the benchmark harness
covers the expensive paths).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"examples_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_at_least_four_examples_exist():
    assert len(EXAMPLE_FILES) >= 4
    names = {path.stem for path in EXAMPLE_FILES}
    assert "quickstart" in names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_examples_import_and_are_documented(path):
    module = _load(path)
    assert module.__doc__ and len(module.__doc__) > 40
    assert hasattr(module, "main")


def test_systolic_array_demo_runs(capsys):
    module = _load(EXAMPLES_DIR / "systolic_array_demo.py")
    module.main()
    out = capsys.readouterr().out
    assert "SySMT 2T" in out
    assert "Eq. (8)" in out
