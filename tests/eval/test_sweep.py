"""Sweep orchestration: scheduler, store, affinity, resume and degradation."""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np
import pytest

from repro.eval import parallel
from repro.eval.experiments import common
from repro.eval.sweep import (
    PointStore,
    SweepPoint,
    SweepSession,
    ensure_session,
    point_runner,
    run_sweep,
)


# ---------------------------------------------------------------------------
# Test-only point kinds
# ---------------------------------------------------------------------------


@point_runner("t_square")
def _run_t_square(ctx, point):
    value = point.param("value")
    return {"square": value * value, "vector": list(np.arange(3) * value)}


@point_runner("t_pid")
def _run_t_pid(ctx, point):
    return {"pid": os.getpid(), "tag": point.param("tag")}


@point_runner("t_crash")
def _run_t_crash(ctx, point):
    if parallel.IN_POOL_WORKER:
        raise RuntimeError("synthetic worker failure")
    return {"value": point.param("value")}


@point_runner("t_nested")
def _run_t_nested(ctx, point):
    inner = ctx.evaluate(SweepPoint.make("t_square", model=point.model, value=3))
    return {"twice": 2 * inner["square"]}


def _session(tmp_path, **kwargs) -> SweepSession:
    return SweepSession(scale="fast", store_root=tmp_path, **kwargs)


# ---------------------------------------------------------------------------
# Pure planning helpers
# ---------------------------------------------------------------------------


def test_plan_worker_allocation_never_oversubscribes():
    for workers in (1, 2, 4, 8, 64):
        for groups in (1, 2, 5, 13):
            for cpus in (1, 2, 4, 96):
                pool, inner = parallel.plan_worker_allocation(workers, groups, cpus)
                assert pool >= 1 and inner >= 1
                assert pool * inner <= max(workers, 1) or pool * inner == 1
                assert pool * inner <= cpus or pool * inner == 1
                assert pool <= max(groups, 1)
    # Single CPU degrades to fully serial regardless of the budget.
    assert parallel.plan_worker_allocation(8, 5, cpus=1) == (1, 1)
    # Two-level split: 4 workers over 2 groups on 4 CPUs -> 2 x 2.
    assert parallel.plan_worker_allocation(4, 2, cpus=4) == (2, 2)


def test_partition_worklists_balances_and_preserves_order():
    weights = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0]
    worklists = parallel.partition_worklists(weights, 2)
    assert sorted(index for wl in worklists for index in wl) == list(range(6))
    loads = [sum(weights[i] for i in wl) for wl in worklists]
    assert max(loads) == 5.0  # the heavy task sits alone
    for worklist in worklists:
        assert worklist == sorted(worklist)
    assert parallel.partition_worklists([1.0], 4) == [[0]]


def test_group_points_preserves_declaration_order():
    from repro.eval.sweep import group_points

    points = [
        SweepPoint.make("t_square", model="a", value=1),
        SweepPoint.make("t_square", model="b", value=2),
        SweepPoint.make("t_square", model="a", value=3),
        SweepPoint.make("t_square", value=4),
    ]
    groups = group_points(points)
    assert [[p.param("value") for p in group] for group in groups] == [
        [1, 3], [2], [4]
    ]


# ---------------------------------------------------------------------------
# Store behavior
# ---------------------------------------------------------------------------


def test_point_identity_and_store_roundtrip(tmp_path):
    point = SweepPoint.make("t_square", model="m", value=7, flag=True)
    same = SweepPoint.make("t_square", model="m", flag=True, value=7)
    other = SweepPoint.make("t_square", model="m", value=8, flag=True)
    assert point == same and point.key == same.key
    assert point.key != other.key

    store = PointStore("fast", tmp_path)
    saved = store.save(point, {"square": np.int64(49)}, session_id="s1")
    assert saved == {"square": 49}
    payload, session_id = store.load(point)
    assert payload == {"square": 49} and session_id == "s1"
    store.discard(point)
    assert store.load(point) is None


def test_fresh_session_ignores_stale_artifacts(tmp_path):
    point = SweepPoint.make("t_square", model="m", value=4)
    stale_session = _session(tmp_path)
    stale_session.store.save(point, {"square": -1, "vector": []}, "old-run")

    fresh = run_sweep([point], _session(tmp_path))
    assert fresh[0]["square"] == 16  # recomputed, stale ignored

    resumed = run_sweep([point], _session(tmp_path, resume=True))
    assert resumed[0]["square"] == 16  # latest artifact accepted as-is


def test_resume_skips_completed_points(tmp_path):
    point = SweepPoint.make("t_square", model="m", value=4)
    session = _session(tmp_path, resume=True)
    # Simulate a completed point from an interrupted earlier suite: resume
    # must pick it up verbatim instead of recomputing.
    session.store.save(point, {"square": "sentinel"}, "earlier-run")
    assert run_sweep([point], session)[0]["square"] == "sentinel"


def test_ensure_session_validates_scale(tmp_path):
    session = _session(tmp_path)
    assert ensure_session(session, "fast") is session
    assert ensure_session(session, common.SCALES["fast"]) is session
    with pytest.raises(ValueError):
        ensure_session(session, "full")
    created = ensure_session(None, "full", workers=3, resume=True)
    assert created.scale == "full" and created.workers == 3 and created.resume


# ---------------------------------------------------------------------------
# Scheduler: serial/parallel equivalence, affinity, degradation
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not parallel.fork_available(), reason="fork unavailable")
def test_parallel_results_bit_identical_to_serial(tmp_path):
    points = [
        SweepPoint.make("t_square", model=model, value=value)
        for model in ("a", "b", "c")
        for value in (2, 5)
    ] + [SweepPoint.make("t_nested", model="a")]
    serial = run_sweep(points, _session(tmp_path / "serial", workers=1))
    parallel_payloads = run_sweep(
        points, _session(tmp_path / "parallel", workers=3, cpu_count=3)
    )
    assert serial == parallel_payloads


@pytest.mark.skipif(not parallel.fork_available(), reason="fork unavailable")
def test_model_affinity_groups_share_a_worker(tmp_path):
    points = [
        SweepPoint.make("t_pid", model=model, tag=f"{model}{index}")
        for model in ("a", "b", "c", "d")
        for index in range(3)
    ]
    payloads = run_sweep(points, _session(tmp_path, workers=4, cpu_count=4))
    pid_by_model: dict[str, set[int]] = {}
    for point, payload in zip(points, payloads):
        pid_by_model.setdefault(point.model, set()).add(payload["pid"])
    parent = os.getpid()
    for model, pids in pid_by_model.items():
        assert len(pids) == 1, f"model {model} computed by several workers"
        assert parent not in pids, "points ran in the parent, not the pool"


@pytest.mark.skipif(not parallel.fork_available(), reason="fork unavailable")
def test_worker_crash_degrades_to_serial(tmp_path, capsys):
    points = [
        SweepPoint.make("t_crash", model=model, value=value)
        for model, value in (("a", 1), ("b", 2))
    ]
    payloads = run_sweep(points, _session(tmp_path, workers=2, cpu_count=2))
    assert [p["value"] for p in payloads] == [1, 2]
    assert "recomputing" in capsys.readouterr().err


def test_single_cpu_budget_runs_serially(tmp_path, monkeypatch):
    # With one usable CPU the scheduler must not fork a pool at all.
    def no_fork(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("pool must not be used on a single CPU")

    monkeypatch.setattr(parallel, "run_worklists", no_fork)
    points = [SweepPoint.make("t_square", model="a", value=3)]
    payloads = run_sweep(points, _session(tmp_path, workers=8, cpu_count=1))
    assert payloads[0]["square"] == 9


# ---------------------------------------------------------------------------
# Harness-backed sweeps (tiny model injected into the experiment caches)
# ---------------------------------------------------------------------------


@pytest.fixture
def tiny_zoo(monkeypatch, tiny_harness, tiny_trained_entry):
    """Expose the session-scoped tiny harness as zoo model ``tinynet``."""
    harness_cache = OrderedDict({("tinynet", "fast"): tiny_harness})
    model_cache = OrderedDict({("tinynet", "fast"): tiny_trained_entry})
    monkeypatch.setattr(common, "_HARNESS_CACHE", harness_cache)
    monkeypatch.setattr(common, "_MODEL_CACHE", model_cache)
    # Workers must keep the injected caches (there is no real zoo entry to
    # rebuild from); the production reset is covered by its own test.
    monkeypatch.setattr(common, "discard_inherited_state", lambda: None)
    return tiny_harness


def _tiny_points():
    return [
        common.baseline_point("tinynet"),
        common.nbsmt_point("tinynet", threads=2, reorder=False,
                           collect_stats=True),
        common.throttle_curve_point("tinynet", base_threads=2, slow_threads=1,
                                    max_slowed=1),
    ]


def test_harness_sweep_serial_matches_direct_evaluation(tmp_path, tiny_zoo):
    payloads = run_sweep(_tiny_points(), _session(tmp_path))
    direct = tiny_zoo.evaluate_nbsmt(threads=2, reorder=False, collect_stats=True)
    assert payloads[0]["int8"] == tiny_zoo.int8_accuracy
    assert payloads[1]["accuracy"] == direct.accuracy
    for name, stats in direct.layer_stats.items():
        from repro.core.smt import SMTStatistics

        rebuilt = SMTStatistics.from_payload(payloads[1]["layer_stats"][name])
        assert rebuilt.as_dict() == stats.as_dict()
    assert payloads[2]["baseline"]["accuracy"] == pytest.approx(
        tiny_zoo.evaluate_nbsmt(threads=2, reorder=True).accuracy
    )
    assert len(payloads[2]["steps"]) == 1


@pytest.mark.skipif(not parallel.fork_available(), reason="fork unavailable")
def test_harness_sweep_parallel_bit_identical(tmp_path, tiny_zoo):
    points = _tiny_points()
    serial = run_sweep(points, _session(tmp_path / "serial", workers=1))
    pooled = run_sweep(
        points, _session(tmp_path / "pool", workers=2, cpu_count=2)
    )
    assert serial == pooled


# ---------------------------------------------------------------------------
# Harness-cache lifecycle
# ---------------------------------------------------------------------------


class _FakeHarness:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


def test_harness_cache_bounded_eviction_closes(monkeypatch):
    cache = OrderedDict()
    fakes = {name: _FakeHarness() for name in "abc"}
    for name, fake in fakes.items():
        cache[(name, "fast")] = fake
    monkeypatch.setattr(common, "_HARNESS_CACHE", cache)
    monkeypatch.setattr(common, "_MODEL_CACHE", OrderedDict())
    monkeypatch.setenv("REPRO_HARNESS_CACHE_LIMIT", "2")

    # A cache hit refreshes recency and evicts down to the limit.
    harness = common.get_harness("b", "fast")
    assert harness is fakes["b"]
    assert fakes["a"].closed and not fakes["b"].closed and not fakes["c"].closed
    assert list(cache) == [("c", "fast"), ("b", "fast")]

    common.clear_harness_cache()
    assert all(fake.closed for fake in fakes.values())
    assert not cache


def test_discard_inherited_state_drops_without_closing(monkeypatch):
    fake = _FakeHarness()
    monkeypatch.setattr(
        common, "_HARNESS_CACHE", OrderedDict({("a", "fast"): fake})
    )
    monkeypatch.setattr(common, "_MODEL_CACHE", OrderedDict({("a", "fast"): 1}))
    common.discard_inherited_state()
    assert not common._HARNESS_CACHE and not common._MODEL_CACHE
    assert not fake.closed  # parent's hook state must stay untouched


def test_closed_harness_reinstalls_hooks_on_next_use(tiny_harness):
    before = tiny_harness.evaluate_nbsmt(threads=2, collect_stats=False)
    tiny_harness.close()  # e.g. evicted or cleared mid-sweep
    after = tiny_harness.evaluate_nbsmt(threads=2, collect_stats=False)
    assert after.accuracy == before.accuracy


# ---------------------------------------------------------------------------
# End-to-end sweep smoke test (trains a real zoo model; slow tier)
# ---------------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.skipif(not parallel.fork_available(), reason="fork unavailable")
def test_experiment_suite_smoke_parallel_matches_serial(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.eval.experiments import table3_policies

    serial = table3_policies.run(
        "fast", models=("alexnet",), policies=("min", "S+A"),
        session=SweepSession(scale="fast", workers=1, store_root=tmp_path),
    )
    common.clear_harness_cache()
    pooled = table3_policies.run(
        "fast", models=("alexnet",), policies=("min", "S+A"),
        session=SweepSession(scale="fast", workers=2, cpu_count=2,
                             store_root=tmp_path),
    )
    assert serial == pooled
