"""Property tests: operating-ladder monotonicity and assignment determinism.

The serving QoS controller assumes the ladder is *ordered*: walking from
the top (most throttled) rung towards the fastest rung must never decrease
the modeled speedup and never decrease the expected noise -- otherwise a
"degrade" transition could lose throughput or a "recover" transition could
lose accuracy.  These properties must hold for arbitrary models (including
depthwise layers pinned to a single thread, where naive "slowing" to two
threads would *speed the layer up* and break the ordering), so they are
checked over generated layer tables rather than one fixture model.
"""

from types import SimpleNamespace

from hypothesis import given
from hypothesis import strategies as st

from repro.eval.throttle import ladder_from_ranking, throttle_assignment
from tests.strategies import QUICK_SETTINGS

LAYER_NAMES = [f"layer{i}" for i in range(8)]


@st.composite
def layer_tables(draw):
    """A fake model: per-layer MACs, MSE, and grouping (depthwise) flags."""
    count = draw(st.integers(min_value=1, max_value=len(LAYER_NAMES)))
    names = LAYER_NAMES[:count]
    layers = {}
    for name in names:
        layers[name] = {
            "macs": draw(st.integers(min_value=1, max_value=10**6)),
            "mse": draw(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
            ),
            "groups": draw(st.sampled_from([1, 1, 1, 8])),
        }
    depthwise_single = draw(st.booleans())
    return layers, depthwise_single


def fake_qmodel(layers: dict, depthwise_single: bool):
    return SimpleNamespace(
        layers={
            name: SimpleNamespace(module=SimpleNamespace(groups=spec["groups"]))
            for name, spec in layers.items()
        },
        config=SimpleNamespace(depthwise_single_thread=depthwise_single),
    )


def mac_model_speedup(layers: dict):
    """The harness performance model over the fake layer table."""

    def speedup_for(assignment: dict) -> float:
        baseline = sum(spec["macs"] for spec in layers.values())
        smt = sum(
            spec["macs"] / max(1, assignment.get(name, 1))
            for name, spec in layers.items()
        )
        return baseline / smt if smt else 1.0

    return speedup_for


def ranking_by_mse(layers: dict) -> list[str]:
    return sorted(layers, key=lambda name: -layers[name]["mse"])


@QUICK_SETTINGS
@given(
    table=layer_tables(),
    base_threads=st.sampled_from([2, 4, 8]),
    slow_threads=st.sampled_from([1, 2]),
)
def test_ladder_walk_is_monotone(table, base_threads, slow_threads):
    """Un-throttling rung by rung: speedup and expected MSE non-decreasing.

    Equivalently (read from the fast end towards the top): as throttling
    increases, the MAC reduction and the expected noise both shrink.
    """
    layers, depthwise_single = table
    if slow_threads >= base_threads:
        slow_threads = base_threads // 2
    qmodel = fake_qmodel(layers, depthwise_single)
    ladder = ladder_from_ranking(
        ranking_by_mse(layers),
        {name: spec["mse"] for name, spec in layers.items()},
        qmodel,
        base_threads,
        slow_threads,
        mac_model_speedup(layers),
    )
    assert [point.level for point in ladder.points] == list(range(len(ladder)))
    assert ladder.fastest.slowed_layers == ()
    for earlier, later in zip(ladder.points, ladder.points[1:]):
        assert later.expected_speedup >= earlier.expected_speedup
        assert later.expected_mse >= earlier.expected_mse
        # Slowed sets are nested: each rung un-throttles, never re-shuffles.
        assert set(later.slowed_layers) <= set(earlier.slowed_layers)


@QUICK_SETTINGS
@given(
    table=layer_tables(),
    base_threads=st.sampled_from([2, 4, 8]),
    slow_threads=st.sampled_from([1, 2]),
)
def test_ladder_never_speeds_up_a_pinned_layer(table, base_threads, slow_threads):
    """"Slowing" never raises any layer's thread count above its default.

    Depthwise layers pinned to one thread must be excluded from the
    slowable ranking -- assigning them ``slow_threads`` would increase
    their threads and invert the rung ordering.
    """
    layers, depthwise_single = table
    if slow_threads >= base_threads:
        slow_threads = base_threads // 2
    qmodel = fake_qmodel(layers, depthwise_single)
    defaults = throttle_assignment(qmodel, base_threads, [], slow_threads)
    ladder = ladder_from_ranking(
        ranking_by_mse(layers),
        {name: spec["mse"] for name, spec in layers.items()},
        qmodel,
        base_threads,
        slow_threads,
        mac_model_speedup(layers),
    )
    for point in ladder.points:
        for name, threads in point.threads.items():
            assert threads <= defaults[name]
            if name in point.slowed_layers:
                assert threads == slow_threads


@QUICK_SETTINGS
@given(
    table=layer_tables(),
    base_threads=st.sampled_from([2, 4, 8]),
    slowed_count=st.integers(min_value=0, max_value=len(LAYER_NAMES)),
)
def test_throttle_assignment_is_deterministic(table, base_threads, slowed_count):
    """Repeated calls with the same inputs produce identical assignments."""
    layers, depthwise_single = table
    qmodel = fake_qmodel(layers, depthwise_single)
    slowed = ranking_by_mse(layers)[:slowed_count]
    first = throttle_assignment(qmodel, base_threads, slowed, 2)
    second = throttle_assignment(qmodel, base_threads, slowed, 2)
    assert first == second
    assert list(first) == list(qmodel.layers)  # every layer, model order
    ladder_args = (
        ranking_by_mse(layers),
        {name: spec["mse"] for name, spec in layers.items()},
        qmodel,
        base_threads,
        2 if base_threads > 2 else 1,
        mac_model_speedup(layers),
    )
    assert ladder_from_ranking(*ladder_args) == ladder_from_ranking(*ladder_args)
