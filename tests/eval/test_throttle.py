"""Layer throttling: MSE ranking, assignments, and the operating-point walk."""

from types import SimpleNamespace

import pytest

from repro.core.smt import SMTStatistics
from repro.eval.throttle import (
    operating_ladder,
    plan_speedup,
    rank_layers_by_mse,
    throttle_assignment,
    throttle_to_accuracy,
)


def stats_with_mse(relative_mse: float) -> SMTStatistics:
    return SMTStatistics(sum_sq_error=relative_mse, sum_sq_exact=1.0)


def test_rank_layers_by_mse_orders_descending_with_position_ties():
    order = ["a", "b", "c", "d"]
    layer_stats = {
        "a": stats_with_mse(0.10),
        "b": stats_with_mse(0.30),
        "c": stats_with_mse(0.10),  # ties with "a": earlier layer first
        "d": stats_with_mse(0.20),
    }
    assert rank_layers_by_mse(layer_stats, order) == ["b", "d", "a", "c"]


def test_rank_layers_ignores_layers_missing_from_the_order():
    layer_stats = {"a": stats_with_mse(0.5), "ghost": stats_with_mse(0.9)}
    assert rank_layers_by_mse(layer_stats, ["a"]) == ["a"]


def fake_qmodel(groups_by_layer: dict[str, int], depthwise_single=True):
    layers = {
        name: SimpleNamespace(module=SimpleNamespace(groups=groups))
        for name, groups in groups_by_layer.items()
    }
    config = SimpleNamespace(depthwise_single_thread=depthwise_single)
    return SimpleNamespace(layers=layers, config=config)


def test_throttle_assignment_slows_selected_layers_only():
    qmodel = fake_qmodel({"c1": 1, "c2": 1, "c3": 1})
    assignment = throttle_assignment(qmodel, 4, ["c2"], 2)
    assert assignment == {"c1": 4, "c2": 2, "c3": 4}


def test_throttle_assignment_pins_depthwise_layers():
    qmodel = fake_qmodel({"c1": 1, "dw": 8})
    assignment = throttle_assignment(qmodel, 4, [], 2)
    assert assignment == {"c1": 4, "dw": 1}
    # An explicitly slowed depthwise layer follows the request.
    assert throttle_assignment(qmodel, 4, ["dw"], 2)["dw"] == 2
    # Without the config pin, depthwise layers run at base threads.
    loose = fake_qmodel({"dw": 8}, depthwise_single=False)
    assert throttle_assignment(loose, 4, [], 2) == {"dw": 4}


def test_plan_speedup_matches_harness_model(tiny_harness):
    assignment = {name: 2 for name in tiny_harness.qmodel.layer_names()}
    assert plan_speedup(tiny_harness, assignment) == pytest.approx(
        tiny_harness.speedup_for(assignment)
    )


def test_throttle_to_accuracy_walks_highest_mse_layers(tiny_harness):
    plans = throttle_to_accuracy(
        tiny_harness,
        target_accuracy=1.01,  # unreachable: walk to max_slowed
        base_threads=4,
        slow_threads=2,
        max_slowed=1,
    )
    assert len(plans) == 2
    baseline, slowed = plans
    assert baseline.num_slowed == 0
    assert baseline.speedup == pytest.approx(4.0, abs=0.05)
    assert slowed.num_slowed == 1
    # The slowed layer is the highest-MSE layer of the baseline run.
    baseline_result = tiny_harness.evaluate_nbsmt(threads=4, collect_stats=True)
    ranked = rank_layers_by_mse(
        baseline_result.layer_stats, tiny_harness.qmodel.layer_names()
    )
    assert slowed.slowed_layers == ranked[:1]
    assert slowed.threads[ranked[0]] == 2
    assert slowed.speedup < baseline.speedup


def test_throttle_to_accuracy_stops_at_reached_target(tiny_harness):
    plans = throttle_to_accuracy(tiny_harness, target_accuracy=0.0,
                                 base_threads=4)
    assert len(plans) == 1
    assert plans[0].num_slowed == 0


def test_operating_ladder_is_ordered_and_deterministic(tiny_harness):
    ladder = operating_ladder(
        tiny_harness, base_threads=4, slow_threads=2, rungs=3, policy="S+A"
    )
    assert len(ladder) == 3
    assert ladder.top.level == 0
    # Rung 0 slows the two highest-MSE layers, the last rung slows none.
    baseline = tiny_harness.evaluate_nbsmt(
        threads=4, policy="S+A", collect_stats=True
    )
    ranked = rank_layers_by_mse(
        baseline.layer_stats, tiny_harness.qmodel.layer_names()
    )
    assert list(ladder.top.slowed_layers) == ranked[:2]
    assert ladder.fastest.slowed_layers == ()
    for earlier, later in zip(ladder.points, ladder.points[1:]):
        assert later.expected_speedup >= earlier.expected_speedup
        assert later.expected_mse >= earlier.expected_mse
    # Each rung's assignment is exactly the throttle_assignment of its set.
    for point in ladder.points:
        assert point.threads == throttle_assignment(
            tiny_harness.qmodel, 4, list(point.slowed_layers), 2
        )
        assert point.expected_speedup == pytest.approx(
            tiny_harness.speedup_for(point.threads)
        )
    # Deterministic across repeated builds (same baseline, same ladder).
    again = operating_ladder(
        tiny_harness, base_threads=4, slow_threads=2, rungs=3, policy="S+A"
    )
    assert again == ladder


def test_operating_ladder_measured_accuracy_matches_harness(tiny_harness):
    ladder = operating_ladder(
        tiny_harness, base_threads=4, slow_threads=2, rungs=2, policy="S+A",
        measure_accuracy=True,
    )
    for point in ladder.points:
        result = tiny_harness.evaluate_nbsmt(
            threads=dict(point.threads), policy="S+A", collect_stats=False
        )
        assert point.expected_accuracy == result.accuracy


def test_operating_ladder_respects_explicit_slow_layers(tiny_harness):
    names = tiny_harness.qmodel.layer_names()
    ladder = operating_ladder(
        tiny_harness, base_threads=4, slow_threads=2, policy="S+A",
        slow_layers=[names[1], names[0]],
    )
    assert len(ladder) == 3
    assert list(ladder.top.slowed_layers) == [names[1], names[0]]
    assert list(ladder[1].slowed_layers) == [names[1]]
    assert ladder.fastest.slowed_layers == ()


def test_operating_ladder_rungs_bounds_explicit_slow_layers(tiny_harness):
    """A configured rung count and the built ladder never disagree."""
    names = tiny_harness.qmodel.layer_names()
    ladder = operating_ladder(
        tiny_harness, base_threads=4, slow_threads=2, rungs=2, policy="S+A",
        slow_layers=[names[1], names[0]],
    )
    assert len(ladder) == 2
    # Best-first truncation: the highest-ranked explicit layer survives.
    assert list(ladder.top.slowed_layers) == [names[1]]
