"""Utility modules: RNG determinism, artifact cache, table rendering."""

import numpy as np
import pytest

from repro.utils.cache import ArtifactCache, default_cache
from repro.utils.rng import DEFAULT_SEED, derive_seed, new_rng, seed_everything
from repro.utils.tables import format_mapping, format_table


# -- rng ---------------------------------------------------------------------------

def test_new_rng_is_deterministic():
    assert new_rng(3).integers(0, 1000, 5).tolist() == new_rng(3).integers(0, 1000, 5).tolist()


def test_new_rng_default_seed_is_stable():
    assert np.array_equal(new_rng().random(4), new_rng(DEFAULT_SEED).random(4))


def test_derive_seed_distinguishes_tags():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a", 0) == derive_seed(1, "a", 0)
    assert 0 <= derive_seed(5, "x") < 2**31 - 1


def test_seed_everything_controls_global_state():
    seed_everything(99)
    first = np.random.random(3)
    seed_everything(99)
    np.testing.assert_array_equal(first, np.random.random(3))


# -- cache --------------------------------------------------------------------------

def test_cache_save_load_roundtrip(tmp_path):
    cache = ArtifactCache(tmp_path)
    config = {"model": "resnet18", "epochs": 3}
    arrays = {"weights": np.arange(6).reshape(2, 3).astype(np.float32)}
    assert not cache.has("test", config)
    path = cache.save("test", config, arrays)
    assert path.exists()
    assert cache.has("test", config)
    loaded = cache.load("test", config)
    np.testing.assert_array_equal(loaded["weights"], arrays["weights"])


def test_cache_distinguishes_configs(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.save("test", {"a": 1}, {"x": np.zeros(1)})
    assert cache.load("test", {"a": 2}) is None


def test_cache_handles_corrupt_files(tmp_path):
    cache = ArtifactCache(tmp_path)
    config = {"a": 1}
    path = cache.save("test", config, {"x": np.zeros(1)})
    path.write_bytes(b"not-a-npz")
    assert cache.load("test", config) is None


def test_default_cache_is_singleton():
    assert default_cache() is default_cache()


# -- tables ---------------------------------------------------------------------------

def test_format_table_alignment_and_title():
    text = format_table(
        ["Name", "Value"],
        [("alpha", 1.234), ("b", 10.0)],
        float_fmt=".2f",
        title="My table",
    )
    lines = text.splitlines()
    assert lines[0] == "My table"
    assert "Name" in lines[1] and "Value" in lines[1]
    assert "1.23" in text and "10.00" in text
    # All data rows have equal width.
    assert len(set(len(line) for line in lines[2:])) == 1


def test_format_table_handles_mixed_types():
    text = format_table(["a", "b"], [[1, "x"], [2.5, None]])
    assert "None" in text and "2.50" in text


def test_format_mapping():
    text = format_mapping({"accuracy": 0.98765, "name": "resnet"}, float_fmt=".2f")
    assert "accuracy: 0.99" in text
    assert "name: resnet" in text
