"""DiskBudget: per-directory quotas with count-and-degrade accounting."""

from __future__ import annotations

import errno

from repro.utils.diskbudget import DiskBudget, directory_bytes, is_enospc


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


def test_directory_bytes_sums_flat_files_and_tolerates_absence(tmp_path):
    assert directory_bytes(str(tmp_path / "missing")) == 0
    (tmp_path / "a.bin").write_bytes(b"x" * 10)
    (tmp_path / "b.bin").write_bytes(b"y" * 5)
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "nested.bin").write_bytes(b"z" * 100)
    # Flat by contract: nested files are not this directory's spool.
    assert directory_bytes(str(tmp_path)) == 15


def test_is_enospc_matches_the_disk_full_family():
    assert is_enospc(OSError(errno.ENOSPC, "no space"))
    if hasattr(errno, "EDQUOT"):
        assert is_enospc(OSError(errno.EDQUOT, "quota"))
    assert not is_enospc(OSError(errno.EACCES, "denied"))


def test_unlimited_budget_admits_everything_but_tracks_usage(tmp_path):
    budget = DiskBudget(str(tmp_path), 0, name="free")
    assert not budget.limited
    assert budget.admit(10**9)
    assert budget.denied_writes == 0
    assert budget.usage_bytes() >= 10**9


def test_quota_denies_with_counters(tmp_path):
    budget = DiskBudget(str(tmp_path), 100, name="tight")
    assert budget.admit(60)
    assert budget.admit(40)
    assert not budget.admit(1)
    assert not budget.admit(50)
    snapshot = budget.snapshot()
    assert snapshot["denied_writes"] == 2
    assert snapshot["denied_bytes"] == 51
    assert snapshot["degraded"] is True
    assert budget.degraded


def test_release_credits_reclaimed_bytes(tmp_path):
    budget = DiskBudget(str(tmp_path), 100, name="rotating")
    assert budget.admit(100)
    assert not budget.admit(1)
    budget.release(50)  # a rotated generation was deleted
    assert budget.admit(50)
    budget.release(10**9)  # over-credit clamps at zero, never negative
    assert budget.usage_bytes() == 0
    assert budget.admit(100)


def test_rescan_regrounds_against_the_real_directory(tmp_path):
    clock = FakeClock()
    budget = DiskBudget(
        str(tmp_path), 100, name="scan", rescan_interval_s=5.0, clock=clock
    )
    assert budget.admit(90)  # incremental estimate: 90 used, nothing on disk
    assert not budget.admit(20)
    clock.advance(4.0)
    assert not budget.admit(20)  # within the interval: estimate stands
    clock.advance(2.0)
    # Past the interval: the rescan sees the empty directory and the
    # phantom charge evaporates.
    assert budget.admit(20)
    (tmp_path / "foreign.bin").write_bytes(b"x" * 95)
    assert budget.usage_bytes(refresh=True) == 95
    assert not budget.admit(20)


def test_squeeze_and_enospc_accounting(tmp_path):
    budget = DiskBudget(str(tmp_path), 1000, name="squeezable")
    assert budget.admit(10)
    budget.set_max_bytes(1)  # the DiskFiller's injection point
    assert budget.max_bytes == 1
    assert not budget.admit(1)
    budget.note_enospc()
    snapshot = budget.snapshot()
    assert snapshot["enospc_errors"] == 1
    assert snapshot["degraded"] is True
    budget.set_max_bytes(1000)
    assert budget.admit(1)
