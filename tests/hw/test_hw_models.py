"""Area, power and energy models calibrated to the paper's Table II."""

import pytest

from repro.hw.area import AreaModel, TABLE_II_AREA
from repro.hw.energy import EnergyModel, LayerEnergyInput
from repro.hw.power import PowerModel, TABLE_II_POWER_POINTS


# -- area ---------------------------------------------------------------------------

def test_area_matches_table_ii_at_reference_size():
    for threads, key in ((1, "sa"), (2, "sysmt_2t"), (4, "sysmt_4t")):
        model = AreaModel(16, 16, threads)
        assert model.total_area_mm2 == pytest.approx(
            TABLE_II_AREA[key]["total_mm2"], rel=0.02
        )
        assert model.pe_area_um2 == TABLE_II_AREA[key]["pe_um2"]
        assert model.mac_area_um2 == TABLE_II_AREA[key]["mac_um2"]


def test_area_ratios_match_paper_claims():
    assert AreaModel(16, 16, 2).area_ratio_to_baseline() == pytest.approx(1.44, abs=0.05)
    assert AreaModel(16, 16, 4).area_ratio_to_baseline() == pytest.approx(2.48, abs=0.08)


def test_area_scales_with_array_size():
    small = AreaModel(8, 8, 2).total_area_mm2
    large = AreaModel(32, 32, 2).total_area_mm2
    assert large > 3.5 * small


def test_area_invalid_threads():
    with pytest.raises(ValueError):
        AreaModel(16, 16, 3).total_area_mm2


# -- power ----------------------------------------------------------------------------

def test_power_matches_published_points():
    sa = PowerModel(16, 16, 1)
    assert sa.power_mw(0.4) == pytest.approx(277, rel=0.01)
    assert sa.power_mw(0.8) == pytest.approx(320, rel=0.01)
    assert PowerModel(16, 16, 2).power_mw(0.8) == pytest.approx(429, rel=0.01)
    assert PowerModel(16, 16, 4).power_mw(0.8) == pytest.approx(723, rel=0.01)


def test_power_monotonic_in_utilization_and_threads():
    for threads in (1, 2, 4):
        model = PowerModel(16, 16, threads)
        assert model.power_mw(0.9) > model.power_mw(0.1)
    assert PowerModel(16, 16, 4).power_mw(0.5) > PowerModel(16, 16, 2).power_mw(0.5)


def test_power_rejects_bad_utilization():
    with pytest.raises(ValueError):
        PowerModel().power_mw(1.5)


def test_throughput_table_ii():
    assert PowerModel(16, 16, 1).throughput_gmacs == pytest.approx(256)
    assert PowerModel(16, 16, 2).throughput_gmacs == pytest.approx(512)
    assert PowerModel(16, 16, 4).throughput_gmacs == pytest.approx(1024)


def test_power_point_data_is_consistent():
    assert set(TABLE_II_POWER_POINTS) == {"sa", "sysmt_2t", "sysmt_4t"}


# -- energy ------------------------------------------------------------------------------

def test_layer_energy_eq6():
    model = EnergyModel(16, 16)
    layer = LayerEnergyInput("conv1", macs=1_000_000_000, utilization=0.8, threads=1)
    power = PowerModel(16, 16, 1)
    expected_seconds = 1e9 / (power.throughput_gmacs * 1e9)
    expected_mj = power.power_mw(0.8) * 1e-3 * expected_seconds * 1e3
    assert model.layer_energy_mj(layer) == pytest.approx(expected_mj)


def test_sysmt_saves_energy_versus_baseline():
    """The paper's headline: 2x faster at <2x power means energy goes down."""
    model = EnergyModel(16, 16)
    baseline = [LayerEnergyInput("l", macs=10**9, utilization=0.4, threads=1)]
    sysmt_2t = [LayerEnergyInput("l", macs=10**9, utilization=0.8, threads=2)]
    saving = model.energy_saving(baseline, sysmt_2t)
    assert 0.1 < saving < 0.6


def test_energy_saving_empty_baseline():
    model = EnergyModel()
    assert model.energy_saving([], []) == 0.0


def test_model_energy_sums_layers():
    model = EnergyModel()
    layers = [
        LayerEnergyInput("a", macs=10**8, utilization=0.5, threads=1),
        LayerEnergyInput("b", macs=2 * 10**8, utilization=0.5, threads=1),
    ]
    total = model.model_energy_mj(layers)
    assert total == pytest.approx(sum(model.layer_energy_mj(l) for l in layers))
