"""Module system: registration, traversal, state dicts."""

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.module import Module, Parameter


def test_parameter_basics():
    param = Parameter(np.ones((2, 3)))
    assert param.shape == (2, 3)
    assert param.size == 6
    param.grad += 1.0
    param.zero_grad()
    assert np.all(param.grad == 0)


def test_child_and_parameter_registration():
    model = Sequential(Linear(4, 3, seed=0), ReLU(), Linear(3, 2, seed=1))
    names = [name for name, _ in model.named_modules()]
    assert "" in names and "0" in names and "2" in names
    param_names = [name for name, _ in model.named_parameters()]
    assert "0.weight" in param_names and "2.bias" in param_names
    assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2


def test_train_eval_propagates():
    model = Sequential(Linear(4, 3, seed=0), ReLU())
    model.eval()
    assert all(not module.training for module in model.modules())
    model.train()
    assert all(module.training for module in model.modules())


def test_zero_grad():
    model = Sequential(Linear(4, 3, seed=0))
    for param in model.parameters():
        param.grad += 5.0
    model.zero_grad()
    assert all(np.all(param.grad == 0) for param in model.parameters())


def test_state_dict_roundtrip_includes_buffers():
    model = Sequential(Linear(4, 4, seed=0), BatchNorm2d(4))
    bn = model[1]
    bn._buffers["running_mean"] = np.full(4, 2.5, dtype=np.float32)
    state = model.state_dict()
    assert "1.running_mean" in state

    clone = Sequential(Linear(4, 4, seed=99), BatchNorm2d(4))
    clone.load_state_dict(state)
    np.testing.assert_array_equal(clone[0].weight.value, model[0].weight.value)
    np.testing.assert_array_equal(clone[1].running_mean, np.full(4, 2.5))


def test_load_state_dict_validates():
    model = Sequential(Linear(4, 3, seed=0))
    with pytest.raises(KeyError):
        model.load_state_dict({"not-a-key": np.zeros(3)})
    with pytest.raises(ValueError):
        model.load_state_dict({"0.weight": np.zeros((1, 1))})


def test_sequential_indexing_and_append():
    model = Sequential(Linear(4, 3, seed=0))
    model.append(ReLU())
    assert len(model) == 2
    assert isinstance(model[1], ReLU)


def test_base_module_forward_not_implemented():
    with pytest.raises(NotImplementedError):
        Module().forward(np.zeros(1))
