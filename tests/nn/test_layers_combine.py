"""Composite blocks: residual, inception (concat) and dense connectivity."""

import numpy as np
import pytest

from repro.nn import (
    Concat,
    Conv2d,
    DenseBlock,
    Identity,
    ReLU,
    ResidualBlock,
    Sequential,
)
from repro.nn.layers.combine import conv_bn_relu
from repro.utils.rng import new_rng
from tests.nn.gradcheck import numerical_gradient_check


def test_concat_forward_splits_channels():
    branch_a = Conv2d(2, 3, 1, bias=False, seed=0)
    branch_b = Conv2d(2, 5, 1, bias=False, seed=1)
    block = Concat(branch_a, branch_b)
    x = new_rng(0).normal(size=(2, 2, 4, 4)).astype(np.float32)
    out = block(x)
    assert out.shape == (2, 8, 4, 4)
    np.testing.assert_allclose(out[:, :3], branch_a(x), rtol=1e-5)
    np.testing.assert_allclose(out[:, 3:], branch_b(x), rtol=1e-5)


def test_concat_backward_before_forward_raises():
    block = Concat(Identity())
    with pytest.raises(RuntimeError):
        block.backward(np.zeros((1, 1, 1, 1), dtype=np.float32))


def test_concat_gradients():
    block = Concat(Conv2d(2, 2, 1, bias=False, seed=2), Conv2d(2, 3, 3, padding=1,
                                                               bias=False, seed=3))
    x = new_rng(1).normal(size=(2, 2, 4, 4)).astype(np.float32)
    numerical_gradient_check(block, x)


def test_residual_identity_shortcut():
    body = Conv2d(3, 3, 3, padding=1, bias=False, seed=4)
    block = ResidualBlock(body)
    x = new_rng(2).normal(size=(1, 3, 4, 4)).astype(np.float32)
    expected = np.maximum(body(x) + x, 0)
    np.testing.assert_allclose(block(x), expected, rtol=1e-5)


def test_residual_projection_shortcut():
    body = Conv2d(3, 6, 3, stride=2, padding=1, bias=False, seed=5)
    shortcut = Conv2d(3, 6, 1, stride=2, bias=False, seed=6)
    block = ResidualBlock(body, shortcut)
    x = new_rng(3).normal(size=(1, 3, 8, 8)).astype(np.float32)
    assert block(x).shape == (1, 6, 4, 4)


def test_residual_shape_mismatch_raises():
    block = ResidualBlock(Conv2d(3, 5, 3, padding=1, bias=False, seed=7))
    with pytest.raises(ValueError):
        block(np.zeros((1, 3, 4, 4), dtype=np.float32))


def test_residual_gradients():
    block = ResidualBlock(
        Sequential(Conv2d(2, 2, 3, padding=1, bias=False, seed=8), ReLU(),
                   Conv2d(2, 2, 3, padding=1, bias=False, seed=9)),
    )
    x = new_rng(4).normal(size=(2, 2, 4, 4)).astype(np.float32)
    numerical_gradient_check(block, x)


def test_dense_block_channel_growth():
    layers = [Conv2d(4 + 2 * i, 2, 3, padding=1, bias=False, seed=10 + i)
              for i in range(3)]
    block = DenseBlock(layers)
    x = new_rng(5).normal(size=(1, 4, 4, 4)).astype(np.float32)
    out = block(x)
    assert out.shape == (1, 4 + 3 * 2, 4, 4)
    # The input is passed through unchanged as the first channels.
    np.testing.assert_allclose(out[:, :4], x)


def test_dense_block_backward_before_forward_raises():
    block = DenseBlock([Conv2d(2, 1, 1, bias=False, seed=20)])
    with pytest.raises(RuntimeError):
        block.backward(np.zeros((1, 3, 2, 2), dtype=np.float32))


def test_dense_block_gradients():
    layers = [Conv2d(2 + i, 1, 3, padding=1, bias=False, seed=30 + i) for i in range(2)]
    block = DenseBlock(layers)
    x = new_rng(6).normal(size=(1, 2, 4, 4)).astype(np.float32)
    numerical_gradient_check(block, x)


def test_conv_bn_relu_builder():
    block = conv_bn_relu(3, 8, 3, stride=2, seed=40)
    x = new_rng(7).normal(size=(2, 3, 8, 8)).astype(np.float32)
    out = block(x)
    assert out.shape == (2, 8, 4, 4)
    assert np.all(out >= 0)
