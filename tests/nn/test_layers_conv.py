"""Conv2d: forward correctness, gradient checks, grouping and the matmul hook."""

import numpy as np
import pytest

from repro.nn.layers.conv import Conv2d
from repro.utils.rng import new_rng
from tests.nn.gradcheck import numerical_gradient_check


def test_forward_matches_manual_small_case():
    conv = Conv2d(1, 1, 2, stride=1, padding=0, bias=False, seed=0)
    conv.weight.value[...] = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
    x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
    out = conv(x)
    # Output (0,0): 0*1 + 1*2 + 3*3 + 4*4 = 27
    assert out.shape == (1, 1, 2, 2)
    assert out[0, 0, 0, 0] == pytest.approx(27.0)
    assert out[0, 0, 1, 1] == pytest.approx(4 + 10 + 21 + 32)


def test_forward_shape_with_stride_and_padding():
    conv = Conv2d(3, 8, 3, stride=2, padding=1, seed=1)
    x = new_rng(0).normal(size=(2, 3, 16, 16)).astype(np.float32)
    assert conv(x).shape == (2, 8, 8, 8)
    assert conv.output_spatial(16, 16) == (8, 8)


def test_bias_is_added_per_channel():
    conv = Conv2d(1, 2, 1, bias=True, seed=2)
    conv.weight.value[...] = 0.0
    conv.bias.value[...] = np.array([1.5, -2.0], dtype=np.float32)
    out = conv(np.zeros((1, 1, 4, 4), dtype=np.float32))
    assert np.allclose(out[0, 0], 1.5)
    assert np.allclose(out[0, 1], -2.0)


def test_depthwise_groups_forward():
    conv = Conv2d(4, 4, 3, padding=1, groups=4, bias=False, seed=3)
    x = new_rng(1).normal(size=(2, 4, 6, 6)).astype(np.float32)
    out = conv(x)
    assert out.shape == (2, 4, 6, 6)
    # Each output channel depends only on its own input channel.
    x2 = x.copy()
    x2[:, 0] = 0
    out2 = conv(x2)
    assert not np.allclose(out[:, 0], out2[:, 0])
    np.testing.assert_allclose(out[:, 1:], out2[:, 1:])


def test_invalid_group_configuration():
    with pytest.raises(ValueError):
        Conv2d(4, 6, 3, groups=4)
    conv = Conv2d(3, 4, 3)
    with pytest.raises(ValueError):
        conv(np.zeros((1, 2, 8, 8), dtype=np.float32))


def test_macs_per_image():
    conv = Conv2d(3, 8, 3, stride=1, padding=1)
    assert conv.macs_per_image(16, 16) == 16 * 16 * 3 * 9 * 8
    depthwise = Conv2d(8, 8, 3, padding=1, groups=8)
    assert depthwise.macs_per_image(16, 16) == 16 * 16 * 9 * 8


def test_matmul_hook_is_used():
    conv = Conv2d(1, 1, 1, bias=False, seed=4)
    conv.weight.value[...] = 1.0
    calls = []

    def hook(cols, weight_2d):
        calls.append(cols.shape)
        return np.zeros((cols.shape[0], weight_2d.shape[1]), dtype=np.float32)

    conv.matmul_fn = hook
    out = conv(np.ones((1, 1, 2, 2), dtype=np.float32))
    assert calls and calls[0] == (4, 1)
    assert np.all(out == 0)


def test_gradients_numerically():
    conv = Conv2d(2, 3, 3, stride=1, padding=1, bias=True, seed=5)
    x = new_rng(2).normal(size=(2, 2, 5, 5)).astype(np.float32)
    numerical_gradient_check(conv, x)


def test_gradients_numerically_strided_depthwise():
    conv = Conv2d(2, 2, 3, stride=2, padding=1, bias=False, groups=2, seed=6)
    x = new_rng(3).normal(size=(1, 2, 6, 6)).astype(np.float32)
    numerical_gradient_check(conv, x)
