"""im2col / col2im lowering and numeric helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.utils.rng import new_rng


def naive_conv2d(x, weight, stride, padding):
    """Direct convolution used as the ground truth for the lowering."""
    batch, in_ch, height, width = x.shape
    out_ch, _, kernel, _ = weight.shape
    out_h = F.conv_output_size(height, kernel, stride, padding)
    out_w = F.conv_output_size(width, kernel, stride, padding)
    x_padded = F.pad_nchw(x, padding)
    out = np.zeros((batch, out_ch, out_h, out_w), dtype=np.float64)
    for b in range(batch):
        for oc in range(out_ch):
            for oh in range(out_h):
                for ow in range(out_w):
                    patch = x_padded[
                        b, :, oh * stride : oh * stride + kernel,
                        ow * stride : ow * stride + kernel,
                    ]
                    out[b, oc, oh, ow] = (patch * weight[oc]).sum()
    return out


@pytest.mark.parametrize("stride,padding,kernel", [(1, 0, 3), (1, 1, 3), (2, 1, 3),
                                                   (2, 0, 2), (1, 2, 5)])
def test_im2col_matmul_equals_naive_convolution(stride, padding, kernel):
    rng = new_rng(0)
    x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
    weight = rng.normal(size=(4, 3, kernel, kernel)).astype(np.float32)
    cols, (out_h, out_w) = F.im2col(x, kernel, stride, padding)
    out_cols = cols @ weight.reshape(4, -1).T
    lowered = F.cols_to_feature_map(out_cols, 2, out_h, out_w)
    naive = naive_conv2d(x, weight, stride, padding)
    assert lowered.shape == naive.shape
    np.testing.assert_allclose(lowered, naive, rtol=1e-4, atol=1e-4)


def test_conv_output_size():
    assert F.conv_output_size(32, 3, 1, 1) == 32
    assert F.conv_output_size(32, 3, 2, 1) == 16
    assert F.conv_output_size(8, 2, 2, 0) == 4


def test_col2im_is_adjoint_of_im2col():
    """<im2col(x), y> == <x, col2im(y)> -- required for correct gradients."""
    rng = new_rng(1)
    x = rng.normal(size=(2, 3, 6, 6)).astype(np.float64)
    cols, _ = F.im2col(x, 3, 2, 1)
    y = rng.normal(size=cols.shape).astype(np.float64)
    lhs = float((cols * y).sum())
    rhs = float((x * F.col2im(y, x.shape, 3, 2, 1)).sum())
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_pad_nchw_zero_padding():
    x = np.ones((1, 1, 2, 2), dtype=np.float32)
    padded = F.pad_nchw(x, 1)
    assert padded.shape == (1, 1, 4, 4)
    assert padded.sum() == 4
    assert F.pad_nchw(x, 0) is x


def test_feature_map_cols_roundtrip():
    rng = new_rng(2)
    fmap = rng.normal(size=(2, 5, 3, 4)).astype(np.float32)
    cols = F.feature_map_to_cols(fmap)
    assert cols.shape == (2 * 3 * 4, 5)
    back = F.cols_to_feature_map(cols, 2, 3, 4)
    np.testing.assert_array_equal(back, fmap)


def test_softmax_rows_sum_to_one():
    rng = new_rng(3)
    logits = rng.normal(size=(7, 10)).astype(np.float32) * 20
    probs = F.softmax(logits)
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(7), rtol=1e-5)
    assert np.all(probs >= 0)


@given(st.integers(min_value=1, max_value=20))
@settings(deadline=None)
def test_one_hot(num_classes):
    labels = np.arange(num_classes) % num_classes
    encoded = F.one_hot(labels, num_classes)
    assert encoded.shape == (num_classes, num_classes)
    assert np.array_equal(encoded.argmax(axis=1), labels)
    assert np.all(encoded.sum(axis=1) == 1)
