"""Loss, optimizer, data pipeline and the training loop."""

import numpy as np
import pytest

from repro.nn import (
    CrossEntropyLoss,
    DataLoader,
    Flatten,
    Linear,
    ReLU,
    SGD,
    Sequential,
    SyntheticImageDataset,
    TrainConfig,
    Trainer,
    evaluate_accuracy,
)
from repro.nn.data import DatasetConfig
from repro.utils.rng import new_rng


# -- loss --------------------------------------------------------------------------

def test_cross_entropy_matches_manual():
    loss_fn = CrossEntropyLoss()
    logits = np.array([[2.0, 0.0, -2.0]], dtype=np.float32)
    labels = np.array([0])
    loss = loss_fn(logits, labels)
    probs = np.exp(logits[0]) / np.exp(logits[0]).sum()
    assert loss == pytest.approx(-np.log(probs[0]), rel=1e-5)


def test_cross_entropy_gradient_matches_numerical():
    loss_fn = CrossEntropyLoss()
    rng = new_rng(0)
    logits = rng.normal(size=(4, 5)).astype(np.float32)
    labels = rng.integers(0, 5, size=4)
    loss_fn(logits, labels)
    grad = loss_fn.backward()
    epsilon = 1e-3
    for i in range(4):
        for j in range(5):
            perturbed = logits.astype(np.float64)
            perturbed[i, j] += epsilon
            upper = loss_fn(perturbed, labels)
            perturbed[i, j] -= 2 * epsilon
            lower = loss_fn(perturbed, labels)
            expected = (upper - lower) / (2 * epsilon)
            assert grad[i, j] == pytest.approx(expected, abs=2e-3)


def test_cross_entropy_label_smoothing():
    plain = CrossEntropyLoss()
    smoothed = CrossEntropyLoss(label_smoothing=0.2)
    logits = np.array([[10.0, -10.0]], dtype=np.float32)
    labels = np.array([0])
    assert smoothed(logits, labels) > plain(logits, labels)
    with pytest.raises(ValueError):
        CrossEntropyLoss(label_smoothing=1.5)


# -- optimizer -----------------------------------------------------------------------

def test_sgd_step_moves_against_gradient():
    layer = Linear(2, 2, bias=False, seed=0)
    optimizer = SGD(list(layer.parameters()), lr=0.1, momentum=0.0)
    layer.weight.grad[...] = 1.0
    before = layer.weight.value.copy()
    optimizer.step()
    np.testing.assert_allclose(layer.weight.value, before - 0.1, rtol=1e-6)


def test_sgd_momentum_accumulates():
    layer = Linear(1, 1, bias=False, seed=0)
    optimizer = SGD(list(layer.parameters()), lr=1.0, momentum=0.5)
    layer.weight.grad[...] = 1.0
    optimizer.step()
    first_step = layer.weight.value.copy()
    layer.weight.grad[...] = 1.0
    optimizer.step()
    # Second update is 1 + 0.5 = 1.5 in magnitude.
    assert (first_step - layer.weight.value)[0, 0] == pytest.approx(1.5)


def test_sgd_weight_decay_shrinks_weights():
    layer = Linear(1, 1, bias=False, seed=0)
    layer.weight.value[...] = 10.0
    optimizer = SGD(list(layer.parameters()), lr=0.1, momentum=0.0, weight_decay=0.1)
    layer.weight.grad[...] = 0.0
    optimizer.step()
    assert layer.weight.value[0, 0] < 10.0


def test_sgd_requires_parameters():
    with pytest.raises(ValueError):
        SGD([])


# -- data ----------------------------------------------------------------------------

def test_dataset_is_deterministic():
    config = DatasetConfig(train_size=64, val_size=16, image_size=16, seed=5)
    first = SyntheticImageDataset(config)
    second = SyntheticImageDataset(config)
    np.testing.assert_array_equal(first.train_images, second.train_images)
    np.testing.assert_array_equal(first.val_labels, second.val_labels)


def test_dataset_shapes_and_labels():
    dataset = SyntheticImageDataset(
        DatasetConfig(train_size=32, val_size=8, image_size=16, num_classes=4)
    )
    assert dataset.train_images.shape == (32, 3, 16, 16)
    assert dataset.val_images.shape == (8, 3, 16, 16)
    assert set(np.unique(dataset.train_labels)) <= set(range(4))
    assert dataset.calibration_batch(10).shape[0] == 10
    assert dataset.num_classes == 4


def test_dataloader_batches_cover_dataset():
    images = np.arange(10 * 3).reshape(10, 3).astype(np.float32)
    labels = np.arange(10)
    loader = DataLoader(images, labels, batch_size=4, shuffle=True, seed=0)
    assert len(loader) == 3
    seen = []
    for batch_images, batch_labels in loader:
        assert batch_images.shape[0] == batch_labels.shape[0]
        seen.extend(batch_labels.tolist())
    assert sorted(seen) == list(range(10))


def test_dataloader_validates_lengths():
    with pytest.raises(ValueError):
        DataLoader(np.zeros((3, 1)), np.zeros(2))


# -- trainer ----------------------------------------------------------------------------

def test_training_reduces_loss_and_learns(tiny_dataset):
    model = Sequential(
        Flatten(),
        Linear(3 * 16 * 16, 32, seed=0),
        ReLU(),
        Linear(32, tiny_dataset.num_classes, seed=1),
    )
    trainer = Trainer(model, TrainConfig(epochs=4, batch_size=32, lr=0.05, seed=0))
    result = trainer.fit(
        tiny_dataset.train_images,
        tiny_dataset.train_labels,
        tiny_dataset.val_images,
        tiny_dataset.val_labels,
    )
    assert result.losses[-1] < result.losses[0]
    chance = 1.0 / tiny_dataset.num_classes
    assert result.final_val_accuracy > chance * 1.5


def test_evaluate_accuracy_bounds(tiny_dataset, tiny_trained_model):
    accuracy = evaluate_accuracy(
        tiny_trained_model, tiny_dataset.val_images, tiny_dataset.val_labels
    )
    assert 0.0 <= accuracy <= 1.0
    assert accuracy > 1.0 / tiny_dataset.num_classes
