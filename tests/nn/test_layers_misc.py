"""Linear, ReLU, pooling, batch-norm and reshape layers."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.layers.norm import BatchNorm2d
from repro.utils.rng import new_rng
from tests.nn.gradcheck import numerical_gradient_check


# -- Linear -------------------------------------------------------------------

def test_linear_forward_matches_matmul():
    layer = Linear(4, 3, seed=0)
    x = new_rng(0).normal(size=(5, 4)).astype(np.float32)
    expected = x @ layer.weight.value.T + layer.bias.value
    np.testing.assert_allclose(layer(x), expected, rtol=1e-5)
    assert layer.macs_per_image() == 12


def test_linear_rejects_non_2d_input():
    with pytest.raises(ValueError):
        Linear(4, 3)(np.zeros((2, 4, 1), dtype=np.float32))


def test_linear_gradients():
    layer = Linear(6, 4, seed=1)
    x = new_rng(1).normal(size=(3, 6)).astype(np.float32)
    numerical_gradient_check(layer, x)


# -- ReLU ----------------------------------------------------------------------

def test_relu_forward_and_backward():
    layer = ReLU()
    x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
    out = layer(x)
    np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])
    grad = layer.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad, [[0.0, 0.0, 1.0]])


def test_relu_backward_before_forward_raises():
    with pytest.raises(RuntimeError):
        ReLU().backward(np.ones((1, 1)))


# -- pooling ---------------------------------------------------------------------

def test_maxpool_forward_values():
    layer = MaxPool2d(2)
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    out = layer(x)
    np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_maxpool_gradient_routes_to_argmax():
    layer = MaxPool2d(2)
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    layer(x)
    grad = layer.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
    assert grad.sum() == 4
    assert grad[0, 0, 1, 1] == 1  # position of value 5


def test_avgpool_forward_and_gradient():
    layer = AvgPool2d(2)
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    out = layer(x)
    assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)
    grad = layer.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
    np.testing.assert_allclose(grad, 0.25)


def test_global_avgpool():
    layer = GlobalAvgPool2d()
    x = new_rng(2).normal(size=(2, 3, 4, 4)).astype(np.float32)
    out = layer(x)
    np.testing.assert_allclose(out, x.mean(axis=(2, 3)), rtol=1e-6)
    grad = layer.backward(np.ones((2, 3), dtype=np.float32))
    np.testing.assert_allclose(grad, 1.0 / 16)


def test_pooling_gradients_numerically():
    x = new_rng(3).normal(size=(2, 2, 6, 6)).astype(np.float32)
    numerical_gradient_check(AvgPool2d(2), x)
    numerical_gradient_check(GlobalAvgPool2d(), x)


# -- batch norm --------------------------------------------------------------------

def test_batchnorm_normalizes_in_training():
    layer = BatchNorm2d(3)
    x = new_rng(4).normal(loc=5.0, scale=3.0, size=(8, 3, 4, 4)).astype(np.float32)
    out = layer(x)
    assert abs(out.mean()) < 1e-4
    assert out.std() == pytest.approx(1.0, abs=1e-2)


def test_batchnorm_running_stats_used_in_eval():
    layer = BatchNorm2d(2)
    x = new_rng(5).normal(loc=2.0, size=(16, 2, 4, 4)).astype(np.float32)
    for _ in range(60):
        layer(x)
    layer.eval()
    out = layer(x)
    # Running stats converge towards the batch statistics (momentum 0.1), so
    # the eval-mode output is approximately normalized.
    assert abs(out.mean()) < 0.1
    assert abs(layer.running_mean.mean() - 2.0) < 0.1


def test_batchnorm_fold_into_affine():
    layer = BatchNorm2d(2)
    layer.eval()
    x = new_rng(6).normal(size=(4, 2, 3, 3)).astype(np.float32)
    scale, shift = layer.fold_into_affine()
    expected = x * scale[None, :, None, None] + shift[None, :, None, None]
    np.testing.assert_allclose(layer(x), expected, rtol=1e-5)


def test_batchnorm_reset_running_stats():
    layer = BatchNorm2d(2)
    layer(np.full((4, 2, 2, 2), 7.0, dtype=np.float32))
    assert not np.allclose(layer.running_mean, 0)
    layer.reset_running_stats()
    np.testing.assert_array_equal(layer.running_mean, 0)
    np.testing.assert_array_equal(layer.running_var, 1)


def test_batchnorm_gradients_numerically():
    layer = BatchNorm2d(2)
    x = new_rng(7).normal(size=(4, 2, 3, 3)).astype(np.float32)
    numerical_gradient_check(layer, x, rtol=2e-2, atol=2e-3)


# -- reshape ----------------------------------------------------------------------

def test_flatten_roundtrip():
    layer = Flatten()
    x = new_rng(8).normal(size=(3, 2, 4, 4)).astype(np.float32)
    out = layer(x)
    assert out.shape == (3, 32)
    grad = layer.backward(out)
    assert grad.shape == x.shape


def test_identity_passthrough():
    layer = Identity()
    x = np.ones((2, 2), dtype=np.float32)
    assert layer(x) is x
    assert layer.backward(x) is x
