"""Numerical gradient checking utility shared by the layer tests."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import new_rng


def numerical_gradient_check(
    module: Module,
    x: np.ndarray,
    epsilon: float = 1e-3,
    rtol: float = 1e-2,
    atol: float = 1e-3,
    seed: int = 0,
    samples: int = 12,
) -> None:
    """Compare analytic gradients against central finite differences.

    The scalar objective is ``sum(output * projection)`` for a fixed random
    projection, so its gradient with respect to the output is the projection
    itself.  A random subset of input and parameter coordinates is checked to
    keep the test fast.
    """
    rng = new_rng(seed)
    module.train()
    output = module(x.astype(np.float64).astype(np.float32))
    projection = rng.normal(size=output.shape).astype(np.float32)

    module.zero_grad()
    module(x)
    grad_input = module.backward(projection)

    def objective(x_value: np.ndarray) -> float:
        return float((module(x_value) * projection).sum())

    def is_smooth(coarse: float, fine: float) -> bool:
        """Reject coordinates where the finite difference itself is unstable.

        ReLU kinks make central differences biased when a perturbation flips
        an activation sign; comparing two step sizes detects those points so
        they can be skipped instead of producing false failures.
        """
        return abs(coarse - fine) <= max(atol, rtol * abs(fine))

    # Check a random subset of input coordinates.
    flat_index = rng.choice(x.size, size=min(samples, x.size), replace=False)
    for index in flat_index:
        position = np.unravel_index(index, x.shape)
        estimates = []
        for step in (epsilon, epsilon / 2):
            x_plus = x.copy()
            x_plus[position] += step
            x_minus = x.copy()
            x_minus[position] -= step
            estimates.append((objective(x_plus) - objective(x_minus)) / (2 * step))
        if not is_smooth(estimates[0], estimates[1]):
            continue
        actual = float(grad_input[position])
        np.testing.assert_allclose(actual, estimates[1], rtol=rtol, atol=atol)

    # Check a random subset of each parameter's coordinates.
    module.zero_grad()
    module(x)
    module.backward(projection)
    for _, param in module.named_parameters():
        indices = rng.choice(param.size, size=min(4, param.size), replace=False)
        for index in indices:
            position = np.unravel_index(index, param.value.shape)
            original = float(param.value[position])
            estimates = []
            for step in (epsilon, epsilon / 2):
                param.value[position] = original + step
                upper = objective(x)
                param.value[position] = original - step
                lower = objective(x)
                param.value[position] = original
                estimates.append((upper - lower) / (2 * step))
            if not is_smooth(estimates[0], estimates[1]):
                continue
            actual = float(param.grad[position])
            np.testing.assert_allclose(actual, estimates[1], rtol=rtol, atol=atol)
