"""SocketTransport against an in-process ClusterAgent.

One agent thread per test, loopback sockets: the full wire path
(framing, dispatch, document spaces, spool appends, leases, membership)
without any child processes.
"""

import json
import os
import time

import pytest

from repro.cluster.agent import ClusterAgent
from repro.cluster.documents import DocumentStore
from repro.cluster.spool import Event, SpoolFollower
from repro.cluster.transport import (
    CallFailed,
    RemoteSpoolWriter,
    SocketTransport,
    TransportError,
)
from repro.serve.client import RetryPolicy
from repro.serve.sharding import ShardMetricsExchange
from repro.telemetry.coordinator import (
    QoSCoordinator,
    ShardStateChannel,
    recommend_level,
)


@pytest.fixture
def agent(tmp_path):
    spaces = {
        name: str(tmp_path / name)
        for name in ("exchange", "qos", "telemetry")
    }
    agent = ClusterAgent(spaces, node="hub", stale_after_s=5.0)
    agent.start_in_thread()
    yield agent
    agent.stop()


def _transport(agent, **kwargs):
    kwargs.setdefault("node", "t1")
    return SocketTransport(agent.address, **kwargs)


def test_ping_and_hello_meta(agent):
    agent.meta = {"session": "sweep-1", "scale": 2}
    transport = _transport(agent)
    try:
        assert transport.ping()["node"] == "hub"
        hello = transport.hello(info={"slots": 2})
        assert hello["meta"] == {"session": "sweep-1", "scale": 2}
        assert hello["spaces"] == ["exchange", "qos", "telemetry"]
    finally:
        transport.close()


def test_membership_over_the_wire(agent):
    transport = _transport(agent, node="w1", role="worker")
    try:
        transport.hello()
        transport.heartbeat()
        (member,) = transport.members()
        assert member["node"] == "w1"
        assert member["role"] == "worker"
        assert member["pid"] == os.getpid()
        assert agent.roster.is_live("w1")
    finally:
        transport.close()


def test_document_store_over_socket(agent, tmp_path):
    transport = _transport(agent)
    store = DocumentStore(transport, "exchange")
    try:
        assert store.put("shard-0.json", {"x": 1})
        assert store.get("shard-0.json") == {"x": 1}
        assert store.get("missing.json") is None
        assert store.list() == ["shard-0.json"]
        assert store.size("shard-0.json") > 0
        # The space is a plain directory at the agent: bit-compatible.
        with open(tmp_path / "exchange" / "shard-0.json") as handle:
            assert json.load(handle) == {"x": 1}
        store.delete("shard-0.json")
        assert store.list() == []
    finally:
        transport.close()


def test_corrupt_document_counted_across_the_wire(agent, tmp_path):
    (tmp_path / "exchange" / "torn.json").write_text('{"half": ')
    transport = _transport(agent)
    store = DocumentStore(transport, "exchange")
    try:
        assert store.get("torn.json") is None
        assert store.corrupt_documents == 1
    finally:
        transport.close()


def test_agent_refuses_bad_requests_without_dying(agent):
    transport = _transport(agent)
    try:
        with pytest.raises(CallFailed):
            transport.call("no-such-op")
        with pytest.raises(CallFailed):
            transport.doc_put("no-such-space", "a.json", {})
        with pytest.raises(CallFailed):
            transport.doc_put("exchange", "../escape.json", {})
        with pytest.raises(CallFailed):
            transport.spool_append("telemetry", "w.jsonl", ["not json"])
        # The connection (and the agent) survive every refusal.
        assert transport.ping()["node"] == "hub"
        assert agent.errors == 4
    finally:
        transport.close()


def test_remote_spool_writer_feeds_hub_follower(agent, tmp_path):
    transport = _transport(agent)
    writer = RemoteSpoolWriter(transport, "telemetry", role="worker")
    try:
        for n in range(3):
            writer.append(
                Event(type="tick", at=100.0 + n,
                      source={"pid": os.getpid(), "role": "worker"},
                      seq=n, data={"n": n})
            )
        events = SpoolFollower(str(tmp_path / "telemetry")).poll()
        assert [event.data["n"] for event in events] == [0, 1, 2]
        # wseq is stamped client-side and crosses the wire intact.
        assert [event.wseq for event in events] == [1, 2, 3]
        assert str(os.getpid()) in writer.writer_name
    finally:
        transport.close()


def test_lease_flow_over_socket(agent):
    agent.ledger.offer([{"spec": 1}])
    agent.ledger.offer([{"spec": 2}])
    transport = _transport(agent, node="w1", role="worker")
    try:
        transport.hello()
        first = transport.lease_next()["lease"]
        assert first["items"] == [{"spec": 1}]
        assert transport.lease_done(first["lease"], ["k1"])["accepted"]
        second = transport.lease_next()["lease"]
        assert not transport.lease_fail(second["lease"] + 99)["accepted"]
        assert transport.lease_fail(second["lease"])["accepted"]
        assert transport.lease_next()["lease"] is None
        assert agent.ledger.completed_groups == 1
        assert agent.ledger.failed_groups == 1
    finally:
        transport.close()


def test_transport_fails_fast_against_a_dead_port(agent):
    agent.stop()
    transport = SocketTransport(
        agent.address, node="t1",
        retry=RetryPolicy(max_retries=1, base_backoff_ms=1.0,
                          max_backoff_ms=2.0),
        connect_timeout_s=0.5,
    )
    try:
        started = time.monotonic()
        with pytest.raises(TransportError):
            transport.ping()
        assert time.monotonic() - started < 5.0
        assert transport.retries == 1
    finally:
        transport.close()


def test_federated_metrics_exchange(agent):
    """Two 'machines' merge /v1/metrics through one hub agent."""
    transports = [
        _transport(agent, node=f"serve-{index}") for index in range(2)
    ]
    try:
        exchanges = [
            ShardMetricsExchange(
                None, index, 2,
                store=DocumentStore(transports[index], "exchange"),
            )
            for index in range(2)
        ]
        exchanges[0].publish({"requests": 3})
        exchanges[1].publish({"requests": 4})
        payloads, sources = exchanges[0].gather_peers()
        assert payloads == [{"requests": 4}]
        assert sources == [
            {"shard": 1, "age_s": pytest.approx(0.0, abs=2.0),
             "stale": False, "reaped": False}
        ]
    finally:
        for transport in transports:
            transport.close()


def test_federated_exchange_reaps_stale_remote_peer(agent):
    transport = _transport(agent, node="serve-0")
    try:
        store = DocumentStore(transport, "exchange")
        exchange = ShardMetricsExchange(None, 0, 2, store=store)
        # A peer from another machine that stopped publishing: its pid is
        # unprobeable here, so staleness alone must reap it.
        store.put("shard-1.json", {
            "shard": 1, "pid": 12345, "host": "machine-b",
            "published_at": time.time() - 3600.0,
            "payload": {"requests": 9},
        })
        payloads, sources = exchange.gather_peers()
        assert payloads == []
        assert sources[0]["reaped"] is True
        assert store.list() == []
    finally:
        transport.close()


def test_federated_qos_quorum_max_desire(agent):
    transports = [
        _transport(agent, node=f"serve-{index}") for index in range(2)
    ]
    try:
        channels = [
            ShardStateChannel(
                None, index, 2,
                store=DocumentStore(transports[index], "qos"),
            )
            for index in range(2)
        ]
        channels[0].publish({"model": {"desired": 1, "held": False}})
        channels[1].publish({"model": {"desired": 3, "held": False}})
        states = channels[0].gather()
        level, desired = recommend_level(states, "model", num_levels=4)
        assert level == 3  # max-desire across machines
        assert desired == {0: 1, 1: 3}
    finally:
        for transport in transports:
            transport.close()


def test_federated_qos_coordinator_end_to_end(agent):
    transport = _transport(agent, node="serve-0")
    try:
        channel = ShardStateChannel(
            None, 0, 2, store=DocumentStore(transport, "qos")
        )
        coordinator = QoSCoordinator(
            channel, min_publish_s=0.0, gather_cache_s=0.0
        )
        coordinator.update("model", desired=1, applied=1)
        coordinator.flush()
        # The remote shard wants more degradation.
        DocumentStore(transport, "qos").put("qos-shard-1.json", {
            "shard": 1, "pid": 12345, "host": "machine-b",
            "published_at": time.time(),
            "endpoints": {"model": {"desired": 3, "held": False}},
        })
        assert coordinator.recommendation("model", num_levels=4) == 3
    finally:
        transport.close()
