"""Membership roster: heartbeat upserts and the generalized liveness rule."""

import os

from repro.cluster.membership import ClusterMember, MembershipRoster, node_id


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def test_node_id_is_unique_per_process():
    assert str(os.getpid()) in node_id("worker")


def test_beat_upserts_and_member_documents_roundtrip():
    clock = FakeClock()
    roster = MembershipRoster(stale_after_s=5.0, clock=clock, host="here")
    member = roster.beat("n1", host="here", pid=os.getpid(), role="worker",
                         info={"slots": 2})
    assert member.beat_at == 1000.0
    clock.now = 1001.0
    roster.beat("n1", info={"busy": True})
    member = roster.get("n1")
    assert member.beat_at == 1001.0
    assert member.info == {"slots": 2, "busy": True}
    restored = ClusterMember.from_document(member.document())
    assert restored.node == "n1" and restored.pid == os.getpid()


def test_local_member_dies_with_its_pid_immediately():
    clock = FakeClock()
    roster = MembershipRoster(stale_after_s=5.0, clock=clock, host="here")
    roster.beat("live", host="here", pid=os.getpid())
    roster.beat("dead", host="here", pid=2**22 + 12345)
    # Both heartbeats are fresh, but a dead local pid evicts instantly --
    # no need to wait out the staleness horizon.
    assert roster.is_live("live")
    assert not roster.is_live("dead")


def test_remote_member_lives_on_freshness_alone():
    clock = FakeClock()
    roster = MembershipRoster(stale_after_s=5.0, clock=clock, host="here")
    # The pid is meaningless on this machine: a remote member with a
    # locally-dead pid number is still live while its heartbeat is fresh.
    roster.beat("far", host="elsewhere", pid=2**22 + 12345)
    assert roster.is_live("far")
    clock.now += 6.0
    assert not roster.is_live("far")


def test_evict_removes_and_returns_the_dead():
    clock = FakeClock()
    roster = MembershipRoster(stale_after_s=5.0, clock=clock, host="here")
    roster.beat("a", host="here", pid=os.getpid())
    roster.beat("b", host="elsewhere", pid=1)
    clock.now += 6.0
    roster.beat("a", host="here", pid=os.getpid())  # refresh a only
    evicted = roster.evict()
    assert [member.node for member in evicted] == ["b"]
    assert [member.node for member in roster.members()] == ["a"]
    assert [member.node for member in roster.live()] == ["a"]


def test_snapshot_reports_liveness_and_age():
    clock = FakeClock()
    roster = MembershipRoster(stale_after_s=5.0, clock=clock, host="here")
    roster.beat("a", host="here", pid=os.getpid())
    clock.now += 2.0
    snapshot = roster.snapshot()
    (entry,) = snapshot["members"]
    assert entry["node"] == "a"
    assert entry["live"] is True
    assert entry["age_s"] == 2.0
