"""Spool wseq: per-writer monotonic sequence numbers beat clock skew."""

import json
import os

from repro.cluster.spool import Event, SpoolFollower, SpoolWriter


def _event(at: float, n: int, pid: int = 0) -> Event:
    return Event(
        type="tick",
        at=at,
        source={"pid": pid or os.getpid(), "role": "test"},
        seq=n,
        data={"n": n},
    )


def test_appends_stamp_monotonic_wseq(tmp_path):
    writer = SpoolWriter(str(tmp_path), role="w")
    for n in range(5):
        writer.append(_event(100.0 + n, n))
    writer.close()
    with open(writer.path, encoding="utf-8") as handle:
        wseqs = [json.loads(line)["wseq"] for line in handle]
    assert wseqs == [1, 2, 3, 4, 5]


def test_reopened_writer_resumes_wseq(tmp_path):
    writer = SpoolWriter(str(tmp_path), role="w")
    for n in range(3):
        writer.append(_event(100.0 + n, n))
    writer.close()
    # A fresh writer instance for the same file (restart reusing a pid)
    # must keep the sequence monotone, never restart at 1.
    writer = SpoolWriter(str(tmp_path), role="w")
    writer.append(_event(200.0, 3))
    writer.close()
    with open(writer.path, encoding="utf-8") as handle:
        wseqs = [json.loads(line)["wseq"] for line in handle]
    assert wseqs == [1, 2, 3, 4]


def test_wseq_survives_rotation(tmp_path):
    writer = SpoolWriter(str(tmp_path), role="w", rotate_bytes=1)
    for n in range(3):
        writer.append(_event(100.0 + n, n))  # every append rotates
    writer.close()
    # The main file is empty post-rotation; the counter lives in .old.
    writer = SpoolWriter(str(tmp_path), role="w", rotate_bytes=1)
    writer.append(_event(200.0, 3))
    writer.close()
    follower = SpoolFollower(str(tmp_path))
    events = follower.poll()
    # Aggressive rotation keeps only the last generation, but the counter
    # was recovered from the .old tail: the new record is 4, not 1.
    assert [event.wseq for event in events] == [4]


def test_follower_clamps_backwards_clock_within_one_writer(tmp_path):
    """A stepped clock cannot reorder or mask one writer's events."""
    writer = SpoolWriter(str(tmp_path), role="w")
    # Wall clock jumps backwards mid-stream (NTP step, chaos perturber).
    for n, at in enumerate([100.0, 200.0, 50.0, 60.0, 300.0]):
        writer.append(_event(at, n))
    writer.close()
    events = SpoolFollower(str(tmp_path)).poll()
    assert [event.data["n"] for event in events] == [0, 1, 2, 3, 4]


def test_follower_merges_across_writers_by_time(tmp_path):
    a = SpoolWriter(str(tmp_path), role="a")
    b = SpoolWriter(str(tmp_path), role="b")
    a.append(_event(100.0, 0))
    b.append(_event(50.0, 10))
    a.append(_event(200.0, 1))
    b.append(_event(150.0, 11))
    a.close()
    b.close()
    events = SpoolFollower(str(tmp_path)).poll()
    assert [event.data["n"] for event in events] == [10, 0, 11, 1]


def test_follower_clamp_state_spans_polls(tmp_path):
    writer = SpoolWriter(str(tmp_path), role="w")
    follower = SpoolFollower(str(tmp_path))
    writer.append(_event(500.0, 0))
    assert [event.data["n"] for event in follower.poll()] == [0]
    # Next poll delivers an event stamped before the previous one: it is
    # clamped to the writer's last effective time, so a consumer sorting
    # cumulative polls never sees it jump the queue.
    writer.append(_event(100.0, 1))
    events = follower.poll()
    assert [event.data["n"] for event in events] == [1]
    assert follower._order_at["w-%d.jsonl" % os.getpid()] == 500.0
    writer.close()


def test_old_format_records_fall_back_to_file_order(tmp_path):
    # Hand-written spool lines without wseq (a pre-cluster producer).
    path = tmp_path / "legacy-123.jsonl"
    lines = [
        {"type": "tick", "at": 100.0, "source": {"pid": 123}, "seq": 1,
         "data": {"n": 0}},
        {"type": "tick", "at": 40.0, "source": {"pid": 123}, "seq": 2,
         "data": {"n": 1}},
        {"type": "tick", "at": 60.0, "source": {"pid": 123}, "seq": 3,
         "data": {"n": 2}},
    ]
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))
    events = SpoolFollower(str(tmp_path)).poll()
    assert [event.data["n"] for event in events] == [0, 1, 2]
    assert all(event.wseq is None for event in events)


def test_budget_drop_leaves_wseq_gap_not_reuse(tmp_path):
    class OneShotBudget:
        def __init__(self):
            self.calls = 0

        def admit(self, size):
            self.calls += 1
            return self.calls != 2  # refuse exactly the second append

    writer = SpoolWriter(str(tmp_path), role="w", budget=OneShotBudget())
    for n in range(3):
        writer.append(_event(100.0 + n, n))
    writer.close()
    assert writer.dropped_events == 1
    with open(writer.path, encoding="utf-8") as handle:
        wseqs = [json.loads(line)["wseq"] for line in handle]
    # Monotone, not dense: the dropped event's number is simply skipped.
    assert wseqs == [1, 3]
