"""LocalDirTransport: space mapping, name hygiene, pre-cluster bit-compat."""

import json
import os

import pytest

from repro.cluster.documents import DocumentStore
from repro.cluster.spool import Event, SpoolFollower
from repro.cluster.transport import LocalDirTransport, safe_name


def test_requires_root_or_spaces():
    with pytest.raises(ValueError):
        LocalDirTransport()


def test_space_mapping_root_and_named(tmp_path):
    named = tmp_path / "elsewhere"
    transport = LocalDirTransport(
        root=str(tmp_path), spaces={"qos": str(named)}
    )
    assert transport.space_dir("") == str(tmp_path)
    assert transport.space_dir("exchange") == str(tmp_path / "exchange")
    assert transport.space_dir("qos") == str(named)  # explicit map wins


def test_spaces_only_rejects_unknown(tmp_path):
    transport = LocalDirTransport(spaces={"qos": str(tmp_path)})
    with pytest.raises(KeyError):
        transport.space_dir("exchange")


@pytest.mark.parametrize(
    "name",
    ["", "../escape.json", "a/b.json", "a\\b.json", ".hidden.json", "a..json"],
)
def test_safe_name_rejects_traversal_and_hidden(name):
    with pytest.raises(ValueError):
        safe_name(name)


def test_safe_name_enforces_suffix():
    assert safe_name("events.jsonl", suffix=".jsonl") == "events.jsonl"
    with pytest.raises(ValueError):
        safe_name("events.json", suffix=".jsonl")


def test_documents_are_plain_json_files(tmp_path):
    """Bit-compat: the store's documents ARE the pre-cluster file layout."""
    transport = LocalDirTransport(root=str(tmp_path))
    transport.doc_put("exchange", "shard-0.json", {"shard": 0})
    path = tmp_path / "exchange" / "shard-0.json"
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == {"shard": 0}
    # And the reverse: a file written by any pre-cluster producer reads
    # back through the transport unchanged.
    (tmp_path / "exchange" / "shard-1.json").write_text('{"shard": 1}')
    assert transport.doc_get("exchange", "shard-1.json") == {"shard": 1}
    assert transport.doc_list("exchange") == ["shard-0.json", "shard-1.json"]
    assert transport.doc_size("exchange", "shard-0.json") == os.path.getsize(
        path
    )
    transport.doc_delete("exchange", "shard-0.json")
    assert transport.doc_list("exchange") == ["shard-1.json"]
    transport.doc_delete("exchange", "shard-0.json")  # idempotent


def test_doc_list_skips_non_json_and_missing_space(tmp_path):
    transport = LocalDirTransport(root=str(tmp_path))
    transport.doc_put("s", "a.json", {})
    (tmp_path / "s" / "spool.jsonl").write_text("")
    (tmp_path / "s" / ".tmp-a.json").write_text("")
    assert transport.doc_list("s") == ["a.json"]
    assert transport.doc_list("never-created") == []


def test_spool_append_feeds_an_ordinary_follower(tmp_path):
    """Bit-compat: transported lines are exactly SpoolWriter's format."""
    transport = LocalDirTransport(root=str(tmp_path))
    events = [
        Event(type="tick", at=100.0 + n, source={"pid": 1}, seq=n,
              data={"n": n}, wseq=n + 1)
        for n in range(3)
    ]
    transport.spool_append(
        "telemetry", "worker-far-1.jsonl", [event.to_json() for event in events]
    )
    seen = SpoolFollower(str(tmp_path / "telemetry")).poll()
    assert [event.data["n"] for event in seen] == [0, 1, 2]
    assert [event.wseq for event in seen] == [1, 2, 3]


def test_spool_append_rejects_embedded_newlines(tmp_path):
    transport = LocalDirTransport(root=str(tmp_path))
    with pytest.raises(ValueError):
        transport.spool_append("telemetry", "w.jsonl", ['{"a": 1}\n{"b": 2}'])


def test_document_store_for_directory_uses_local_transport(tmp_path):
    store = DocumentStore.for_directory(str(tmp_path / "exchange"))
    assert store.put("shard-0.json", {"shard": 0})
    assert isinstance(store.transport, LocalDirTransport)
    assert (tmp_path / "exchange" / "shard-0.json").exists()
