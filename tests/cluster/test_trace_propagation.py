"""Trace propagation across the cluster boundary (in-process agent).

The wire contract mirrors ``X-Trace-Id`` on HTTP: a transport carries
its trace id on every frame, the hub hands the trace to workers through
the hello meta, and a worker adopts it -- the same trace id on both
sides of the machine gap, with the hub's ``sweep_hub`` root span and
the workers' ``remote_lease`` children folding into one waterfall.
"""

from __future__ import annotations

import pytest

from repro.cluster.agent import ClusterAgent
from repro.cluster.transport import SocketTransport
from repro.cluster.worker import RemoteWorker, SweepHub
from repro.telemetry import bus as telemetry_bus
from repro.telemetry.tracing import new_span_id, new_trace_id

pytestmark = pytest.mark.trace


@pytest.fixture
def agent(tmp_path):
    spaces = {
        name: str(tmp_path / name)
        for name in ("exchange", "telemetry", "points")
    }
    agent = ClusterAgent(spaces, node="hub", stale_after_s=5.0)
    agent.start_in_thread()
    yield agent
    agent.stop()


def _capture_requests(agent) -> list[dict]:
    captured: list[dict] = []
    original = agent.handle

    def handle(request):
        captured.append(dict(request))
        return original(request)

    agent.handle = handle
    return captured


def test_transport_stamps_every_frame_with_its_trace_id(agent):
    captured = _capture_requests(agent)
    transport = SocketTransport(agent.address, node="w1")
    try:
        transport.ping()
        assert "trace_id" not in captured[-1]  # untraced by default

        transport.trace_id = "feedfacecafef00d"
        transport.ping()
        transport.hello()
        transport.doc_put("exchange", "x.json", {"x": 1})
        stamped = [r for r in captured if r.get("trace_id")]
        assert len(stamped) == 3
        assert all(r["trace_id"] == "feedfacecafef00d" for r in stamped)

        # An explicit per-call trace id wins over the transport's.
        transport.call("ping", trace_id="0123456789abcdef")
        assert captured[-1]["trace_id"] == "0123456789abcdef"
    finally:
        transport.close()


def test_worker_adopts_the_hub_trace_from_hello_meta(agent):
    trace_id = new_trace_id()
    agent.meta = {
        "kind": "sweep",
        "session": "s1",
        "scale": "fast",
        "resume": False,
        "telemetry": False,
        "trace_id": trace_id,
        "span_id": new_span_id(),
    }
    captured = _capture_requests(agent)
    worker = RemoteWorker(
        agent.address, node="w1", max_idle_s=0.3, idle_poll_s=0.05
    )
    worker.run()  # no offered points: connects, idles out, exits

    # The worker adopted the hub's trace and stamped its lease polls.
    assert worker.transport.trace_id == trace_id
    leases = [r for r in captured if r.get("op") == "lease_next"]
    assert leases, "worker never polled for work"
    assert all(r.get("trace_id") == trace_id for r in leases)


def test_sweep_hub_mints_a_trace_and_publishes_its_root_span(tmp_path):
    from repro.eval.sweep import SweepSession

    session = SweepSession(
        scale="fast", workers=1, store_root=str(tmp_path / "store")
    )
    spans: list[dict] = []
    bus = telemetry_bus.get_bus()
    callback = bus.subscribe(
        callback=lambda event: spans.append(dict(event.data)),
        types={"span"},
    )
    try:
        hub = SweepHub.create(session, listen="127.0.0.1:0")
        assert hub.trace_id and hub.root_span_id

        # The meta a connecting worker sees names the same trace.
        transport = SocketTransport(hub.address, node="probe")
        try:
            meta = transport.hello()["meta"]
        finally:
            transport.close()
        assert meta["trace_id"] == hub.trace_id
        assert meta["span_id"] == hub.root_span_id

        hub.close()
        roots = [s for s in spans if s.get("name") == "sweep_hub"]
        assert len(roots) == 1
        assert roots[0]["trace_id"] == hub.trace_id
        assert roots[0]["span_id"] == hub.root_span_id
        assert roots[0]["parent_id"] is None
        assert roots[0]["duration_ms"] >= 0.0
    finally:
        bus.unsubscribe(callback)
