"""WorkLedger lifecycle: lease ownership, terminal failure, dead recycling."""

from repro.cluster.agent import WorkLedger


def test_offer_lease_complete_lifecycle():
    ledger = WorkLedger()
    ledger.offer([{"spec": 1}])
    ledger.offer([{"spec": 2}])
    assert ledger.queued() == 2

    first = ledger.lease("w1")
    assert first["items"] == [{"spec": 1}]
    assert ledger.queued() == 1 and ledger.leased() == 1

    assert ledger.complete(first["lease"], "w1")
    assert ledger.completed_groups == 1
    assert ledger.leased() == 0

    second = ledger.lease("w1")
    assert second["items"] == [{"spec": 2}]
    assert ledger.lease("w1") is None  # queue drained


def test_complete_is_owner_only():
    ledger = WorkLedger()
    ledger.offer([{"spec": 1}])
    lease = ledger.lease("w1")
    assert not ledger.complete(lease["lease"], "imposter")
    assert ledger.leased() == 1  # still outstanding
    assert ledger.complete(lease["lease"], "w1")
    # Double-complete (late ack after recycling) is refused, not fatal.
    assert not ledger.complete(lease["lease"], "w1")


def test_fail_is_terminal_not_requeued():
    ledger = WorkLedger()
    ledger.offer([{"spec": 1}])
    lease = ledger.lease("w1")
    assert ledger.fail(lease["lease"], "w1")
    assert ledger.failed_groups == 1
    assert ledger.queued() == 0 and ledger.leased() == 0
    assert not ledger.outstanding()  # parent recomputes; no ping-pong


def test_requeue_dead_reinserts_at_queue_head():
    ledger = WorkLedger()
    ledger.offer([{"spec": 1}])
    ledger.offer([{"spec": 2}])
    dead = ledger.lease("dead-node")
    assert dead["items"] == [{"spec": 1}]

    recycled = ledger.requeue_dead(lambda node: node != "dead-node")
    assert recycled == 1
    assert ledger.recycled_leases == 1
    # The orphaned group comes back at the head, ahead of later offers.
    retry = ledger.lease("w2")
    assert retry["items"] == [{"spec": 1}]
    # The dead node's stale lease id no longer completes anything.
    assert not ledger.complete(dead["lease"], "dead-node")
    assert ledger.complete(retry["lease"], "w2")


def test_snapshot_counts():
    ledger = WorkLedger()
    ledger.offer([{"spec": 1}])
    lease = ledger.lease("w1")
    ledger.complete(lease["lease"], "w1")
    assert ledger.snapshot() == {
        "queued": 0,
        "leased": 0,
        "completed": 1,
        "failed": 0,
        "recycled": 0,
    }
