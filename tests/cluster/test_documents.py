"""Document substrate: atomic writes, liveness rules, the store contract."""

import json
import os

from repro.cluster.documents import (
    DocumentStore,
    atomic_write_json,
    local_host,
    pid_alive,
    publisher_alive,
    publisher_process_alive,
)


def test_atomic_write_json_roundtrip_and_no_temp_litter(tmp_path):
    atomic_write_json(str(tmp_path), "doc.json", {"a": 1})
    atomic_write_json(str(tmp_path), "doc.json", {"a": 2})
    with open(tmp_path / "doc.json", encoding="utf-8") as handle:
        assert json.load(handle) == {"a": 2}
    assert sorted(os.listdir(tmp_path)) == ["doc.json"]


def test_pid_alive_self_and_nonsense():
    assert pid_alive(os.getpid())
    assert not pid_alive(0)
    assert not pid_alive(-1)


def _doc(**fields) -> dict:
    document = {"pid": os.getpid(), "host": local_host(), "published_at": 0.0}
    document.update(fields)
    return document


def test_publisher_process_alive_local_remote_and_unknown():
    # Local publisher: the pid probe answers definitively.
    assert publisher_process_alive(_doc()) is True
    assert publisher_process_alive(_doc(pid=2**22 + 12345)) is False
    # Remote publisher: unknowable here.
    assert publisher_process_alive(_doc(host="some-other-machine")) is None
    # Pre-cluster documents (no host) are local; pid 0 predates pids.
    assert publisher_process_alive({"pid": os.getpid()}) is True
    assert publisher_process_alive({"pid": 0}) is None


def test_publisher_alive_generalized_rule():
    now = 1000.0
    # Fresh + local live pid.
    assert publisher_alive(_doc(published_at=999.0), 5.0, now=now)
    # Fresh but the local process is gone: evicted immediately.
    assert not publisher_alive(
        _doc(published_at=999.0, pid=2**22 + 12345), 5.0, now=now
    )
    # Stale always evicts, live pid or not.
    assert not publisher_alive(_doc(published_at=100.0), 5.0, now=now)
    # Remote: freshness is the only signal, either way.
    remote = _doc(host="some-other-machine", published_at=999.0)
    assert publisher_alive(remote, 5.0, now=now)
    remote["published_at"] = 100.0
    assert not publisher_alive(remote, 5.0, now=now)


def test_document_store_roundtrip_list_delete(tmp_path):
    store = DocumentStore.for_directory(str(tmp_path))
    assert store.put("a.json", {"x": 1})
    assert store.put("b.json", {"x": 2})
    assert store.get("a.json") == {"x": 1}
    assert store.get("missing.json") is None
    assert store.list() == ["a.json", "b.json"]
    assert store.get_all() == {"a.json": {"x": 1}, "b.json": {"x": 2}}
    store.delete("a.json")
    assert store.list() == ["b.json"]
    assert store.size("b.json") > 0


def test_document_store_counts_corrupt_and_drops(tmp_path):
    store = DocumentStore.for_directory(str(tmp_path))
    (tmp_path / "torn.json").write_text('{"half": ')
    (tmp_path / "notdict.json").write_text("[1, 2, 3]")
    assert store.get("torn.json") is None
    assert store.get("notdict.json") is None
    assert store.corrupt_documents == 2
    store.note_corrupt()
    assert store.corrupt_documents == 3
    # A corrupt document never hides healthy siblings.
    store.put("ok.json", {"x": 1})
    assert store.get_all() == {"ok.json": {"x": 1}}


def test_document_store_budget_refuses_and_counts(tmp_path):
    from repro.utils.diskbudget import DiskBudget

    budget = DiskBudget(str(tmp_path), 64, name="docs")
    store = DocumentStore.for_directory(str(tmp_path), budget=budget)
    assert store.put("small.json", {"a": 1})
    big = {"payload": "x" * 256}
    assert not store.put("big.json", big)
    assert store.dropped_puts == 1
    # A refused put never creates (or tears) the document.
    assert store.get("big.json") is None
    assert not (tmp_path / "big.json").exists()
    # Replacing an existing document charges only the net growth, so a
    # same-size overwrite is always admitted.
    assert store.put("small.json", {"a": 2})
    assert store.get("small.json") == {"a": 2}
