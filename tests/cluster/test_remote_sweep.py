"""The two-process demo: a real `repro.cli worker` over localhost sockets.

The parent runs a sweep with a hub attached; the worker is a genuine
child process connecting through the CLI, leasing points, evaluating
them and streaming results + telemetry back.  The reduction must be
bit-identical to a serial run.
"""

import importlib
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.cluster.spool import SpoolFollower
from repro.cluster.worker import SweepHub
from repro.eval.sweep import SweepPoint, SweepSession, run_sweep

pytestmark = pytest.mark.cluster

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

CHEAP_MODULE = """\
from repro.eval.sweep import point_runner


@point_runner("cheap-square")
def cheap_square(ctx, point):
    x = point.param("x")
    return {"x": x, "square": x * x, "halves": [x / 2.0, x / 4.0]}
"""


def _install_cheap_kinds(tmp_path):
    (tmp_path / "cheap_kinds_pr8.py").write_text(CHEAP_MODULE)
    sys.path.insert(0, str(tmp_path))
    try:
        importlib.import_module("cheap_kinds_pr8")
    finally:
        sys.path.remove(str(tmp_path))


def _points():
    return [
        SweepPoint.make("cheap-square", None, x=n, cost=1.0) for n in range(6)
    ]


def test_remote_worker_computes_bit_identical_sweep(tmp_path):
    _install_cheap_kinds(tmp_path)
    telemetry_dir = tmp_path / "telemetry"
    telemetry_dir.mkdir()
    session = SweepSession(
        scale="fast", workers=1, store_root=str(tmp_path / "store")
    )
    hub = SweepHub.create(
        session,
        listen="127.0.0.1:0",
        telemetry_dir=str(telemetry_dir),
        connect_grace_s=60.0,
    )
    session.hub = hub
    host, port = hub.address

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + str(tmp_path)
    worker = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--connect", f"{host}:{port}",
            "--import", "cheap_kinds_pr8",
            "--max-idle-s", "1.0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        payloads = run_sweep(_points(), session=session)
    finally:
        hub.close()
        try:
            output = worker.communicate(timeout=30.0)[0]
        except subprocess.TimeoutExpired:
            worker.kill()
            output = worker.communicate()[0]
            pytest.fail(f"worker did not exit:\n{output}")

    # The remote worker did the work: every group completed over the
    # wire, nothing abandoned for the parent to recompute.
    assert hub.agent.ledger.completed_groups >= 1, output
    assert hub.agent.ledger.snapshot()["queued"] == 0

    # Bit-identical reduction versus a plain serial session.
    serial = SweepSession(
        scale="fast", workers=1, store_root=str(tmp_path / "serial-store")
    )
    assert payloads == run_sweep(_points(), session=serial)

    # The store entries are ordinary content-addressed files stamped with
    # the parent's session id.
    entries = sorted(session.store.dir.glob("*.json"))
    assert len(entries) == 6
    reloaded = [session.store.load(point) for point in _points()]
    assert [payload for payload, _ in reloaded] == payloads
    assert {session_id for _, session_id in reloaded} == {session.id}

    # The worker's telemetry streamed into the parent's spool.
    events = SpoolFollower(str(telemetry_dir)).poll()
    remote = [
        event for event in events
        if event.source.get("role") == "remote-worker"
    ]
    assert sum(
        1 for event in remote
        if event.type == "point_finished" and not event.data.get("reused")
    ) == 6
    # Remote events carry client-side wseq: ordering survived the wire.
    assert [event.wseq for event in remote] == sorted(
        event.wseq for event in remote
    )


def test_parent_recomputes_when_no_worker_ever_connects(tmp_path):
    _install_cheap_kinds(tmp_path)
    session = SweepSession(
        scale="fast", workers=1, store_root=str(tmp_path / "store")
    )
    hub = SweepHub.create(
        session, listen="127.0.0.1:0", connect_grace_s=0.2
    )
    session.hub = hub
    started = time.monotonic()
    try:
        payloads = run_sweep(_points(), session=session)
    finally:
        hub.close()
    assert time.monotonic() - started < 30.0
    serial = SweepSession(
        scale="fast", workers=1, store_root=str(tmp_path / "serial-store")
    )
    assert payloads == run_sweep(_points(), session=serial)
    assert hub.agent.ledger.snapshot()["completed"] == 0
