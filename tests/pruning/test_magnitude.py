"""Magnitude pruning: masks, sparsity targets and retraining behaviour."""

import numpy as np
import pytest

from repro.nn import Conv2d, GlobalAvgPool2d, Linear, MaxPool2d, Sequential
from repro.nn.layers.combine import conv_bn_relu
from repro.pruning import (
    PruningSchedule,
    apply_masks,
    iterative_magnitude_prune,
    magnitude_masks,
    sparsity_of,
)
from repro.utils.rng import new_rng


@pytest.fixture
def small_cnn():
    return Sequential(
        conv_bn_relu(3, 8, 3, seed=0),
        MaxPool2d(2),
        conv_bn_relu(8, 8, 3, seed=1),
        GlobalAvgPool2d(),
        Linear(8, 6, seed=2),
    )


def test_masks_hit_target_sparsity(small_cnn):
    masks = magnitude_masks(small_cnn, 0.5)
    apply_masks(small_cnn, masks)
    assert sparsity_of(small_cnn) == pytest.approx(0.5, abs=0.05)


def test_masks_keep_largest_magnitudes(small_cnn):
    conv = next(m for m in small_cnn.modules() if isinstance(m, Conv2d))
    masks = magnitude_masks(small_cnn, 0.5)
    conv_mask = next(iter(masks.values()))
    kept = np.abs(conv.weight.value[conv_mask])
    pruned = np.abs(conv.weight.value[~conv_mask])
    assert kept.min() >= pruned.max() - 1e-9


def test_zero_sparsity_keeps_everything(small_cnn):
    masks = magnitude_masks(small_cnn, 0.0)
    apply_masks(small_cnn, masks)
    assert sparsity_of(small_cnn) < 0.05


def test_linear_and_bias_are_not_pruned(small_cnn):
    masks = magnitude_masks(small_cnn, 0.9)
    assert all(".weight" in name for name in masks)
    assert not any("bias" in name for name in masks)
    linear = small_cnn[-1]
    apply_masks(small_cnn, masks)
    assert np.count_nonzero(linear.weight.value) == linear.weight.value.size


def test_schedule_validation():
    with pytest.raises(ValueError):
        PruningSchedule(target_sparsity=1.0)
    with pytest.raises(ValueError):
        PruningSchedule(target_sparsity=0.5, steps=0)


def test_iterative_pruning_reaches_target_and_keeps_masks(small_cnn, tiny_dataset):
    schedule = PruningSchedule(target_sparsity=0.4, steps=2, retrain_epochs=1, lr=0.01)
    masks = iterative_magnitude_prune(
        small_cnn,
        tiny_dataset.train_images[:128],
        tiny_dataset.train_labels[:128],
        schedule,
    )
    # Retraining must not resurrect pruned weights.
    assert sparsity_of(small_cnn) >= 0.4 - 0.05
    for name, module in small_cnn.named_modules():
        key = f"{name}.weight"
        if key in masks:
            assert np.all(module.weight.value[~masks[key]] == 0)


def test_pruned_model_accuracy_degrades_gracefully(tiny_trained_entry):
    """Moderate pruning plus retraining keeps the model useful (Fig. 10 premise)."""
    import copy

    from repro.nn.train import evaluate_accuracy

    entry = tiny_trained_entry
    model = copy.deepcopy(entry.model)
    dataset = entry.dataset
    baseline = evaluate_accuracy(model, dataset.val_images, dataset.val_labels)
    schedule = PruningSchedule(target_sparsity=0.3, steps=1, retrain_epochs=1, lr=0.01)
    iterative_magnitude_prune(
        model, dataset.train_images, dataset.train_labels, schedule
    )
    pruned_accuracy = evaluate_accuracy(model, dataset.val_images, dataset.val_labels)
    assert pruned_accuracy >= baseline - 0.25
