"""NBSMTEngine adapter: per-layer statistics and thread handling."""

import numpy as np
import pytest

from repro.core.engine import NBSMTEngine
from repro.quant.engine import ExactEngine, LayerContext
from repro.utils.rng import new_rng
from tests.conftest import make_quantized_pair


@pytest.fixture
def pair():
    return make_quantized_pair(new_rng(11), m=32, k=48, n=16)


def test_single_thread_context_is_exact(pair):
    x, w = pair
    engine = NBSMTEngine("S+A")
    ctx = LayerContext(name="layer0", threads=1)
    out = engine.matmul(x, w, ctx)
    assert np.array_equal(out, x @ w)
    assert ctx.stats["macs"] == x.shape[0] * x.shape[1] * w.shape[1]


def test_two_thread_context_matches_executor(pair):
    from repro.core.smt import NBSMTMatmul

    x, w = pair
    engine = NBSMTEngine("S+A")
    ctx = LayerContext(name="layer0", threads=2)
    out = engine.matmul(x, w, ctx)
    expected = NBSMTMatmul(2, "S+A").matmul(x, w)
    assert np.array_equal(out, expected)
    assert "layer0" in engine.layer_stats
    assert engine.layer_stats["layer0"].mac_total > 0


def test_engine_accumulates_stats_across_calls(pair):
    x, w = pair
    engine = NBSMTEngine("S+A")
    ctx = LayerContext(name="layer0", threads=2)
    engine.matmul(x, w, ctx)
    first_total = engine.layer_stats["layer0"].mac_total
    engine.matmul(x, w, ctx)
    assert engine.layer_stats["layer0"].mac_total == 2 * first_total
    engine.reset_stats()
    assert engine.layer_stats == {}


def test_engine_respects_permutation(pair):
    x, w = pair
    engine = NBSMTEngine("S+A")
    perm = new_rng(2).permutation(x.shape[1])
    ctx = LayerContext(name="layer0", threads=2, permutation=perm)
    out = engine.matmul(x, w, ctx)
    assert out.shape == (x.shape[0], w.shape[1])


def test_collect_stats_false_still_produces_output(pair):
    x, w = pair
    engine = NBSMTEngine("S+A", collect_stats=False)
    ctx = LayerContext(name="layer0", threads=2)
    out = engine.matmul(x, w, ctx)
    assert out.shape == (x.shape[0], w.shape[1])
    assert engine.layer_stats == {}


def test_exact_engine_reference(pair):
    x, w = pair
    engine = ExactEngine()
    ctx = LayerContext(name="ref")
    assert np.array_equal(engine.matmul(x, w, ctx), x @ w)
