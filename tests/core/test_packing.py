"""Effective-operand computation under the packing policies."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core import packing
from repro.core.policies import get_policy
from repro.core.precision import reduce_act_to_4bit_msb, reduce_wgt_to_4bit_msb


def test_thread_active_with_and_without_sparsity():
    x = np.array([0, 5, 7, 0])
    w = np.array([3, 0, 2, 0])
    with_sparsity = packing.thread_active(x, w, True)
    assert list(with_sparsity) == [False, False, True, False]
    without = packing.thread_active(x, w, False)
    assert list(without) == [True, True, True, True]


def test_colliding_act_keeps_narrow_values_with_width_check():
    policy = get_policy("S+A")
    x = np.array([3, 15, 16, 200])
    w = np.array([5, 5, 5, 5])
    effective = packing.colliding_act(x, w, policy)
    assert list(effective[:2]) == [3, 15]
    assert effective[2] == int(reduce_act_to_4bit_msb(16))
    assert effective[3] == int(reduce_act_to_4bit_msb(200))


def test_colliding_act_without_width_check_always_reduces():
    policy = get_policy("S")
    x = np.array([3, 15, 200])
    w = np.array([5, 5, 5])
    effective = packing.colliding_act(x, w, policy)
    assert np.array_equal(effective, reduce_act_to_4bit_msb(x))


def test_colliding_act_swap_keeps_exact_when_weight_is_narrow():
    policy = get_policy("S+Aw")
    x = np.array([200, 200])
    w = np.array([5, 100])  # first weight fits 4 bits -> swap, no error
    effective = packing.colliding_act(x, w, policy)
    assert effective[0] == 200
    assert effective[1] == int(reduce_act_to_4bit_msb(200))


def test_colliding_wgt_mirror_behaviour():
    policy = get_policy("S+W")
    x = np.array([200, 200])
    w = np.array([5, 100])
    effective = packing.colliding_wgt(x, w, policy)
    assert effective[0] == 5
    assert effective[1] == int(reduce_wgt_to_4bit_msb(100))


def test_colliding_product_4t_reduces_both_operands():
    policy = get_policy("S+A")
    product = packing.colliding_product_4t(np.array([46]), np.array([100]), policy)
    assert int(product[0]) == int(reduce_act_to_4bit_msb(46)) * int(
        reduce_wgt_to_4bit_msb(100)
    )
    narrow = packing.colliding_product_4t(np.array([7]), np.array([-3]), policy)
    assert int(narrow[0]) == 7 * -3


@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=-127, max_value=127),
)
def test_act_reduction_delta_zero_iff_no_error(x, w):
    policy = get_policy("S+A")
    delta = packing.act_reduction_delta(np.array([x]), policy)
    if x <= 15:
        assert int(delta[0]) == 0
    else:
        assert int(delta[0]) == int(reduce_act_to_4bit_msb(x)) - x


@given(st.integers(min_value=-127, max_value=127))
def test_wgt_reduction_delta_matches_reduction(w):
    policy = get_policy("S+W")
    delta = packing.wgt_reduction_delta(np.array([w]), policy)
    if -8 <= w <= 7:
        assert int(delta[0]) == 0
    else:
        assert int(delta[0]) == int(reduce_wgt_to_4bit_msb(w)) - w


def test_colliding_product_2t_error_bounded():
    policy = get_policy("S+A")
    x = np.arange(256)
    w = np.full(256, 100)
    products = packing.colliding_product_2t(x, w, policy)
    errors = np.abs(products - x * 100)
    # Worst case error per product: reduction error (<=8, or 15 when clipped)
    # times the weight magnitude.
    assert errors.max() <= 15 * 100
