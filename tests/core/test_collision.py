"""MAC classification (Fig. 1 measurement)."""

import numpy as np
import pytest

from repro.core.collision import MacBreakdown, classify_macs
from repro.core.precision import act_fits_4bit, wgt_fits_4bit
from repro.utils.rng import new_rng
from tests.conftest import make_quantized_pair


def brute_force_breakdown(x, w):
    idle = partial = full = 0
    for m in range(x.shape[0]):
        for k in range(x.shape[1]):
            for n in range(w.shape[1]):
                xv, wv = x[m, k], w[k, n]
                if xv == 0 or wv == 0:
                    idle += 1
                elif act_fits_4bit(xv) or wgt_fits_4bit(wv):
                    partial += 1
                else:
                    full += 1
    return idle, partial, full


def test_classify_matches_brute_force():
    rng = new_rng(5)
    x, w = make_quantized_pair(rng, m=6, k=8, n=5)
    breakdown = classify_macs(x, w)
    idle, partial, full = brute_force_breakdown(x, w)
    assert breakdown.idle == idle
    assert breakdown.partial == partial
    assert breakdown.full == full
    assert breakdown.total == 6 * 8 * 5


def test_all_zero_inputs_are_idle():
    breakdown = classify_macs(np.zeros((3, 4), dtype=int), np.ones((4, 2), dtype=int))
    assert breakdown.idle == breakdown.total == 3 * 4 * 2
    assert breakdown.full == 0


def test_all_wide_inputs_are_full():
    x = np.full((3, 4), 200)
    w = np.full((4, 2), 100)
    breakdown = classify_macs(x, w)
    assert breakdown.full == breakdown.total


def test_narrow_inputs_are_partial():
    x = np.full((3, 4), 7)
    w = np.full((4, 2), 100)
    breakdown = classify_macs(x, w)
    assert breakdown.partial == breakdown.total


def test_fractions_sum_to_one(quantized_pair):
    x, w = quantized_pair
    fractions = classify_macs(x, w).fractions
    assert fractions["idle"] + fractions["partial"] + fractions["full"] == pytest.approx(1.0)


def test_merge_accumulates():
    a = MacBreakdown(idle=1, partial=2, full=3)
    b = MacBreakdown(idle=10, partial=20, full=30)
    a.merge(b)
    assert (a.idle, a.partial, a.full) == (11, 22, 33)
    assert a.as_row() == pytest.approx((33 / 66, 22 / 66, 11 / 66))


def test_shape_mismatch_raises():
    with pytest.raises(ValueError):
        classify_macs(np.zeros((2, 3)), np.zeros((4, 2)))
