"""Flexible-multiplier decompositions must be exact for every 8-bit operand."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.fmul import (
    FlexibleMultiplier,
    fmul_2x4b8b,
    fmul_4x4b4b,
    mul_8b8b_via_four_4b,
    mul_8b8b_via_two_5b8b,
)


def test_eq4_decomposition_exhaustive():
    x = np.arange(256)
    w = np.arange(-128, 128)
    grid_x, grid_w = np.meshgrid(x, w)
    expected = grid_x.astype(np.int64) * grid_w.astype(np.int64)
    assert np.array_equal(mul_8b8b_via_two_5b8b(grid_x, grid_w), expected)


def test_eq5_decomposition_exhaustive():
    x = np.arange(256)
    w = np.arange(-128, 128)
    grid_x, grid_w = np.meshgrid(x, w)
    expected = grid_x.astype(np.int64) * grid_w.astype(np.int64)
    assert np.array_equal(mul_8b8b_via_four_4b(grid_x, grid_w), expected)


@given(
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=-128, max_value=127),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=-128, max_value=127),
    st.booleans(),
    st.booleans(),
)
def test_two_independent_4b8b_products(x1, w1, x2, w2, shift1, shift2):
    p1, p2 = fmul_2x4b8b(x1, w1, int(shift1), x2, w2, int(shift2))
    assert int(p1) == x1 * w1 * (16 if shift1 else 1)
    assert int(p2) == x2 * w2 * (16 if shift2 else 1)


def test_paper_fig2e_example():
    """Fig. 2e: 1110b (MSB path) * 00010111b and 0010b * 11110010b."""
    msb_nibble = 0b1110
    w1 = 0b00010111
    lsb_nibble = 0b0010
    w2 = 0b11110010 - 256  # two's complement interpretation: -14
    p1, p2 = fmul_2x4b8b(msb_nibble, w1, 1, lsb_nibble, w2, 0)
    assert int(p1) == 322 * 16  # 5152
    # The paper's example treats the weights as unsigned bit patterns for the
    # arithmetic illustration; with the signed weight the product is -28.
    assert int(p2) == lsb_nibble * w2


def test_fmul_4x4b4b_products():
    acts = np.array([1, 2, 3, 4])
    wgts = np.array([-2, 3, -4, 5])
    act_shifts = np.array([0, 1, 0, 1])
    wgt_shifts = np.array([1, 0, 0, 1])
    products = fmul_4x4b4b(acts, wgts, act_shifts, wgt_shifts)
    expected = acts * wgts * np.where(act_shifts, 16, 1) * np.where(wgt_shifts, 16, 1)
    assert np.array_equal(products, expected)


def test_fmul_4x4b4b_validates_ranges():
    with pytest.raises(ValueError):
        fmul_4x4b4b(np.array([16, 0, 0, 0]), np.zeros(4), np.zeros(4), np.zeros(4))
    with pytest.raises(ValueError):
        fmul_4x4b4b(np.zeros(4), np.array([8, 0, 0, 0]), np.zeros(4), np.zeros(4))
    with pytest.raises(ValueError):
        fmul_4x4b4b(np.zeros(3), np.zeros(3), np.zeros(3), np.zeros(3))


def test_fmul_2x4b8b_validates_nibbles():
    with pytest.raises(ValueError):
        fmul_2x4b8b(16, 1, 0, 0, 0, 0)


def test_flexible_multiplier_modes():
    fmul2 = FlexibleMultiplier(2)
    fmul4 = FlexibleMultiplier(4)
    assert int(fmul2.one_8b8b(200, -100)) == -20000
    assert int(fmul4.one_8b8b(200, -100)) == -20000
    with pytest.raises(ValueError):
        fmul2.four_4b4b(np.zeros(4), np.zeros(4), np.zeros(4), np.zeros(4))
    with pytest.raises(ValueError):
        FlexibleMultiplier(3)


@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=-128, max_value=127),
)
def test_both_decompositions_agree(x, w):
    assert int(mul_8b8b_via_two_5b8b(x, w)) == int(mul_8b8b_via_four_4b(x, w)) == x * w
