"""Bit-splitting helpers: exhaustive and property-based checks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bitops import (
    combine_signed,
    combine_unsigned,
    split_signed,
    split_unsigned,
)


def test_split_unsigned_roundtrip_exhaustive():
    values = np.arange(256)
    msb, lsb = split_unsigned(values)
    assert np.all((msb >= 0) & (msb <= 15))
    assert np.all((lsb >= 0) & (lsb <= 15))
    assert np.array_equal(combine_unsigned(msb, lsb), values)


def test_split_signed_roundtrip_exhaustive():
    values = np.arange(-128, 128)
    msb, lsb = split_signed(values)
    assert np.all((msb >= -8) & (msb <= 7))
    assert np.all((lsb >= 0) & (lsb <= 15))
    assert np.array_equal(combine_signed(msb, lsb), values)


@given(st.integers(min_value=0, max_value=255))
def test_split_unsigned_scalar(value):
    msb, lsb = split_unsigned(value)
    assert int(msb) * 16 + int(lsb) == value


@given(st.integers(min_value=-128, max_value=127))
def test_split_signed_scalar(value):
    msb, lsb = split_signed(value)
    assert int(msb) * 16 + int(lsb) == value


def test_split_unsigned_rejects_out_of_range():
    with pytest.raises(ValueError):
        split_unsigned(np.array([256]))
    with pytest.raises(ValueError):
        split_unsigned(np.array([-1]))


def test_split_signed_rejects_out_of_range():
    with pytest.raises(ValueError):
        split_signed(np.array([128]))
    with pytest.raises(ValueError):
        split_signed(np.array([-129]))


def test_split_signed_examples_from_paper():
    # -14 (0b11110010) has LSB nibble 2 and signed MSB nibble -1.
    msb, lsb = split_signed(-14)
    assert int(lsb) == 2
    assert int(msb) == -1
