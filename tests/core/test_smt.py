"""Functional NB-SMT executor: fast paths vs reference, invariants, stats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import POLICY_NAMES, get_policy
from repro.core.smt import NBSMTMatmul, SMTStatistics, split_into_threads
from tests.conftest import make_quantized_pair
from repro.utils.rng import new_rng

ALL_POLICIES = ("min", "S", "A", "Aw", "S+A", "S+Aw", "W", "aW", "S+W", "S+aW")


# -- thread splitting -------------------------------------------------------------

def test_split_into_threads_shapes_and_padding():
    x = np.arange(2 * 7).reshape(2, 7)
    w = np.arange(7 * 3).reshape(7, 3)
    x_t, w_t = split_into_threads(x, w, 2)
    assert x_t.shape == (2, 2, 4)
    assert w_t.shape == (2, 4, 3)
    # Padded positions are zero.
    assert np.all(x_t[1, :, -1] == 0)
    assert np.all(w_t[1, -1, :] == 0)


def test_split_into_threads_reconstructs_matmul():
    rng = new_rng(0)
    x, w = make_quantized_pair(rng, m=10, k=13, n=5)
    x_t, w_t = split_into_threads(x, w, 4)
    total = sum(x_t[t] @ w_t[t] for t in range(4))
    assert np.array_equal(total, x @ w)


def test_split_requires_matching_inner_dims():
    with pytest.raises(ValueError):
        split_into_threads(np.zeros((2, 3)), np.zeros((4, 2)), 2)


# -- basic executor invariants --------------------------------------------------------

def test_single_thread_is_exact(quantized_pair):
    x, w = quantized_pair
    executor = NBSMTMatmul(1, "S+A")
    assert np.array_equal(executor.matmul(x, w), x @ w)
    assert executor.stats.mac_total == x.shape[0] * x.shape[1] * w.shape[1]


def test_invalid_thread_count():
    with pytest.raises(ValueError):
        NBSMTMatmul(3, "S+A")


def test_no_collisions_means_no_error(rng):
    """If thread 2's activations are all zero, S policies are exact."""
    x, w = make_quantized_pair(rng, m=24, k=32, n=12, act_sparsity=0.3)
    x[:, 16:] = 0  # the second thread never demands the MAC
    for policy in ("S", "S+A", "S+Aw"):
        executor = NBSMTMatmul(2, policy)
        assert np.array_equal(executor.matmul(x, w), x @ w), policy


def test_narrow_activations_are_error_free_with_width_policy(rng):
    x, w = make_quantized_pair(rng, m=24, k=32, n=12)
    x = np.clip(x, 0, 15)
    for policy in ("A", "S+A", "Aw", "S+Aw"):
        executor = NBSMTMatmul(2, policy)
        assert np.array_equal(executor.matmul(x, w), x @ w), policy


def test_narrow_weights_are_error_free_with_weight_policy(rng):
    x, w = make_quantized_pair(rng, m=24, k=32, n=12)
    w = np.clip(w, -8, 7)
    for policy in ("W", "S+W", "aW", "S+aW"):
        executor = NBSMTMatmul(2, policy)
        assert np.array_equal(executor.matmul(x, w), x @ w), policy


def test_min_policy_equals_whole_model_reduction(rng):
    """The 'min' policy reduces every activation, like the A4W8 sweep."""
    from repro.core.precision import act_fits_4bit, reduce_act_to_4bit_msb

    x, w = make_quantized_pair(rng, m=16, k=24, n=8)
    executor = NBSMTMatmul(2, "min")
    out = executor.matmul(x, w)
    x_reduced = reduce_act_to_4bit_msb(x)
    assert np.array_equal(out, x_reduced @ w)


def test_permutation_leaves_exact_result_unchanged(rng):
    x, w = make_quantized_pair(rng, m=16, k=24, n=8)
    executor = NBSMTMatmul(1, "S+A")
    perm = new_rng(3).permutation(24)
    assert np.array_equal(executor.matmul(x, w, permutation=perm), x @ w)


def test_permutation_changes_collisions_but_not_shape(rng):
    x, w = make_quantized_pair(rng, m=32, k=40, n=16)
    perm = new_rng(4).permutation(40)
    executor = NBSMTMatmul(2, "S+A")
    out = executor.matmul(x, w, permutation=perm)
    assert out.shape == (32, 16)


# -- fast vs reference equivalence ---------------------------------------------------

@pytest.mark.parametrize("policy", ALL_POLICIES)
@pytest.mark.parametrize("threads", [2, 4])
def test_fast_path_matches_reference(rng, policy, threads):
    x, w = make_quantized_pair(rng, m=40, k=48, n=20)
    fast = NBSMTMatmul(threads, policy)
    reference = NBSMTMatmul(threads, policy, force_reference=True, chunk_rows=16)
    out_fast = fast.matmul(x, w)
    out_reference = reference.matmul(x, w)
    assert np.array_equal(out_fast, out_reference)
    assert fast.stats.mac_total == reference.stats.mac_total
    assert fast.stats.slots_total == reference.stats.slots_total
    assert fast.stats.slots_active == reference.stats.slots_active
    assert fast.stats.mac_active == reference.stats.mac_active
    assert fast.stats.sum_sq_error == pytest.approx(reference.stats.sum_sq_error)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    act_sparsity=st.floats(min_value=0.0, max_value=0.9),
    threads=st.sampled_from([2, 4]),
    policy=st.sampled_from(["min", "S", "S+A", "S+Aw", "S+W"]),
)
def test_fast_path_matches_reference_property(seed, act_sparsity, threads, policy):
    rng = new_rng(seed)
    x, w = make_quantized_pair(rng, m=12, k=16, n=6, act_sparsity=act_sparsity)
    fast = NBSMTMatmul(threads, policy, collect_stats=False)
    reference = NBSMTMatmul(threads, policy, collect_stats=False,
                            force_reference=True, chunk_rows=5)
    assert np.array_equal(fast.matmul(x, w), reference.matmul(x, w))


def test_2t_reduced_count_matches_reference(rng):
    x, w = make_quantized_pair(rng, m=24, k=32, n=12)
    for policy in ("min", "S", "S+A", "S+Aw", "S+W"):
        fast = NBSMTMatmul(2, policy)
        reference = NBSMTMatmul(2, policy, force_reference=True)
        fast.matmul(x, w)
        reference.matmul(x, w)
        assert fast.stats.mac_reduced == reference.stats.mac_reduced, policy


# -- statistics ------------------------------------------------------------------------

def test_statistics_merge_and_derived_quantities():
    a = SMTStatistics(mac_total=100, mac_active=40, slots_total=50, slots_active=35,
                      act_values=100, act_nonzero=40, sum_sq_error=10.0,
                      sum_sq_exact=100.0, outputs=10)
    b = SMTStatistics(mac_total=100, mac_active=60, slots_total=50, slots_active=45,
                      act_values=100, act_nonzero=60, sum_sq_error=0.0,
                      sum_sq_exact=100.0, outputs=10)
    a.merge(b)
    assert a.mac_total == 200
    assert a.baseline_utilization == pytest.approx(0.5)
    assert a.smt_utilization == pytest.approx(0.8)
    assert a.utilization_gain == pytest.approx(1.6)
    assert a.activation_sparsity == pytest.approx(0.5)
    assert a.relative_mse == pytest.approx(0.05)
    assert a.mse == pytest.approx(0.5)
    assert set(a.as_dict()) >= {"mac_total", "utilization_gain", "relative_mse"}


def test_empty_statistics_are_safe():
    stats = SMTStatistics()
    assert stats.baseline_utilization == 0.0
    assert stats.utilization_gain == 1.0
    assert stats.relative_mse == 0.0
    assert stats.mse == 0.0
    assert stats.activation_sparsity == 0.0


def test_mse_increases_with_threads(rng):
    x, w = make_quantized_pair(rng, m=48, k=64, n=24)
    mse = {}
    for threads in (2, 4):
        executor = NBSMTMatmul(threads, "S+A")
        executor.matmul(x, w)
        mse[threads] = executor.stats.relative_mse
    assert mse[4] >= mse[2]


def test_policy_ordering_of_error(rng):
    """Combining sparsity and width must not be worse than either alone."""
    x, w = make_quantized_pair(rng, m=64, k=96, n=32)
    errors = {}
    for policy in ("min", "S", "A", "S+A"):
        executor = NBSMTMatmul(2, policy)
        executor.matmul(x, w)
        errors[policy] = executor.stats.sum_sq_error
    assert errors["S+A"] <= errors["S"]
    assert errors["S+A"] <= errors["A"]
    assert errors["S"] <= errors["min"]
    assert errors["A"] <= errors["min"]


def test_utilization_gain_close_to_eq8(rng):
    """With independent random threads, the measured gain tracks 1 + s."""
    x, w = make_quantized_pair(rng, m=96, k=128, n=32, act_sparsity=0.6,
                               wgt_sparsity=0.0)
    executor = NBSMTMatmul(2, "S+A")
    executor.matmul(x, w)
    sparsity = executor.stats.activation_sparsity
    assert executor.stats.utilization_gain == pytest.approx(1 + sparsity, abs=0.08)


def test_reset_stats(quantized_pair):
    x, w = quantized_pair
    executor = NBSMTMatmul(2, "S+A")
    executor.matmul(x, w)
    assert executor.stats.mac_total > 0
    executor.reset_stats()
    assert executor.stats.mac_total == 0


def test_collect_stats_false_skips_counters(quantized_pair):
    x, w = quantized_pair
    executor = NBSMTMatmul(2, "S+A", collect_stats=False)
    executor.matmul(x, w)
    assert executor.stats.mac_total == 0


# -- sparsity-adaptive block pruning (4T stacked path) ----------------------------

def _pruning_triplet(x, w, policy):
    pruned = NBSMTMatmul(4, policy, collect_stats=True, prune_blocks=True)
    unpruned = NBSMTMatmul(4, policy, collect_stats=True, prune_blocks=False)
    reference = NBSMTMatmul(4, policy, collect_stats=True, force_reference=True)
    return (
        (pruned, pruned.matmul(x, w)),
        (unpruned, unpruned.matmul(x, w)),
        (reference, reference.matmul(x, w)),
    )


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_block_pruning_bit_exact(rng, policy):
    x, w = make_quantized_pair(rng, m=40, k=48, n=16, act_sparsity=0.6,
                               wgt_sparsity=0.5)
    (p, out_p), (u, out_u), (r, out_r) = _pruning_triplet(x, w, policy)
    assert np.array_equal(out_p, out_u)
    assert np.array_equal(out_p, out_r)
    assert p.stats.as_dict() == u.stats.as_dict() == r.stats.as_dict()


def test_block_pruning_with_empty_delta_blocks(rng):
    # All activations fit 4 bits -> every activation reduction delta is zero
    # and the dx-based blocks are skipped entirely; outputs must not change.
    x, w = make_quantized_pair(rng, m=48, k=64, n=24, act_sparsity=0.5)
    x = x % 16
    (p, out_p), (u, out_u), (r, out_r) = _pruning_triplet(x, w, "S+A")
    assert np.array_equal(out_p, out_u)
    assert np.array_equal(out_p, out_r)
    assert p.stats.as_dict() == u.stats.as_dict()


def test_block_pruning_stats_off_path(rng):
    x, w = make_quantized_pair(rng, m=32, k=32, n=8, act_sparsity=0.7,
                               wgt_sparsity=0.6)
    pruned = NBSMTMatmul(4, "S+A", collect_stats=False, prune_blocks=True)
    unpruned = NBSMTMatmul(4, "S+A", collect_stats=False, prune_blocks=False)
    assert np.array_equal(pruned.matmul(x, w), unpruned.matmul(x, w))


def test_statistics_payload_roundtrip(rng):
    import json

    x, w = make_quantized_pair(rng, m=24, k=32, n=8)
    executor = NBSMTMatmul(4, "S+A", collect_stats=True)
    executor.matmul(x, w)
    payload = json.loads(json.dumps(executor.stats.to_payload()))
    rebuilt = SMTStatistics.from_payload(payload)
    assert rebuilt.as_dict() == executor.stats.as_dict()
