"""Property tests cross-checking the NB-SMT execution paths.

Hypothesis drives random operand matrices (with the boundary values the
collision logic cares about: 4-bit fits, multiples of 16, zeros) through

* the factorized fast paths (2- and 4-thread, optimized and legacy),
* the chunked reference executor, and
* the explicit SySMT simulators (vectorized lane-level and per-PE objects),

and asserts bit-exact agreement of outputs and of every statistics counter.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st

from repro.core.policies import POLICY_NAMES
from repro.core.smt import NBSMTMatmul, SMTStatistics
from repro.systolic.sysmt import SySMTArray
from tests.strategies import SLOW_SETTINGS, STANDARD_SETTINGS

#: Values that exercise every branch of the collision logic: zeros
#: (sparsity), 4-bit fits, multiples of 16 (zero reduction delta), rounding
#: boundaries, and range extremes.
_ACT_SPECIALS = [0, 1, 7, 8, 15, 16, 17, 24, 40, 128, 239, 240, 248, 255]
_WGT_SPECIALS = [0, 1, -1, 7, -8, 8, -9, 15, 16, -16, 24, 120, -120, 127, -127]

_STATS_FIELDS = [
    "mac_total", "mac_active", "mac_collided", "mac_reduced",
    "slots_total", "slots_active", "act_values", "act_nonzero",
    "sum_sq_error", "sum_sq_exact", "outputs",
]


@st.composite
def nbsmt_case(draw, max_m: int = 24, max_k: int = 40, max_n: int = 12):
    """A random quantized operand pair plus execution configuration."""
    m = draw(st.integers(1, max_m))
    k = draw(st.integers(1, max_k))
    n = draw(st.integers(1, max_n))
    seed = draw(st.integers(0, 2**32 - 1))
    act_sparsity = draw(st.sampled_from([0.0, 0.3, 0.6, 0.9]))
    wgt_sparsity = draw(st.sampled_from([0.0, 0.2, 0.5]))
    special_fraction = draw(st.sampled_from([0.0, 0.3, 1.0]))
    threads = draw(st.sampled_from([2, 4]))
    policy = draw(st.sampled_from(POLICY_NAMES))

    rng = np.random.default_rng(seed)
    x = rng.integers(0, 256, size=(m, k), dtype=np.int64)
    w = rng.integers(-127, 128, size=(k, n), dtype=np.int64)
    if special_fraction > 0.0:
        x_special = rng.choice(_ACT_SPECIALS, size=(m, k))
        w_special = rng.choice(_WGT_SPECIALS, size=(k, n))
        x = np.where(rng.random((m, k)) < special_fraction, x_special, x)
        w = np.where(rng.random((k, n)) < special_fraction, w_special, w)
    x[rng.random((m, k)) < act_sparsity] = 0
    w[rng.random((k, n)) < wgt_sparsity] = 0
    return x, w, threads, policy


def _assert_stats_equal(actual: SMTStatistics, expected: SMTStatistics, label: str):
    for field in _STATS_FIELDS:
        assert getattr(actual, field) == getattr(expected, field), (
            f"{label}: stats field {field!r} differs: "
            f"{getattr(actual, field)} != {getattr(expected, field)}"
        )


@STANDARD_SETTINGS
@given(case=nbsmt_case())
def test_factorized_matches_reference_bit_exactly(case):
    """Fast-path outputs and *all* statistics equal the reference executor."""
    x, w, threads, policy = case
    fast = NBSMTMatmul(threads, policy, collect_stats=True)
    reference = NBSMTMatmul(threads, policy, collect_stats=True, force_reference=True)
    out_fast = fast.matmul(x, w)
    out_reference = reference.matmul(x, w)
    np.testing.assert_array_equal(out_fast, out_reference)
    _assert_stats_equal(fast.stats, reference.stats, f"{policy}/T{threads}")


@STANDARD_SETTINGS
@given(case=nbsmt_case())
def test_optimized_4t_matches_legacy_4t(case):
    """The stacked-GEMM 4-thread path reproduces the seed implementation."""
    x, w, _, policy = case
    optimized = NBSMTMatmul(4, policy, collect_stats=False)
    legacy = NBSMTMatmul(4, policy, collect_stats=False, fast4t_impl="legacy")
    np.testing.assert_array_equal(optimized.matmul(x, w), legacy.matmul(x, w))


@STANDARD_SETTINGS
@given(case=nbsmt_case(max_m=20))
def test_stats_merge_equals_whole_run(case):
    """Row-sharded executions merge into exactly the whole-run statistics.

    This is the invariant the sharded parallel evaluation layer relies on
    when reducing per-worker statistics with :meth:`SMTStatistics.merge`.
    """
    x, w, threads, policy = case
    whole = NBSMTMatmul(threads, policy, collect_stats=True)
    whole.matmul(x, w)

    sharded = NBSMTMatmul(threads, policy, collect_stats=True)
    split = max(1, x.shape[0] // 2)
    sharded.matmul(x[:split], w)
    if split < x.shape[0]:
        sharded.matmul(x[split:], w)
    _assert_stats_equal(sharded.stats, whole.stats, f"merge {policy}/T{threads}")


@STANDARD_SETTINGS
@given(case=nbsmt_case(max_m=16, max_k=24, max_n=8))
def test_vectorized_explicit_matches_functional(case):
    """The lane-level explicit array simulation equals the functional model."""
    x, w, threads, policy = case
    array = SySMTArray(rows=4, cols=4, threads=threads, policy=policy)
    out_explicit, _ = array.matmul_explicit(x, w)
    expected = NBSMTMatmul(threads, policy, collect_stats=False).matmul(x, w)
    np.testing.assert_array_equal(out_explicit, expected)


@pytest.mark.slow
@SLOW_SETTINGS
@given(case=nbsmt_case(max_m=8, max_k=20, max_n=6))
def test_explicit_vectorized_matches_per_pe_objects(case):
    """Lane-level numpy execution equals the per-PE object simulation.

    The per-PE path steps Algorithm 1 one operand pair at a time through the
    fMUL nibble/shift interface, so this is the strongest (and slowest)
    equivalence in the suite -- marked ``slow`` and excluded from the default
    profile.
    """
    x, w, threads, policy = case
    array = SySMTArray(rows=4, cols=4, threads=threads, policy=policy)
    out_vec, report_vec = array.matmul_explicit(x, w)
    out_pe, report_pe = array.matmul_per_pe(x, w)
    np.testing.assert_array_equal(out_vec, out_pe)
    assert report_vec.mac_cycles_active == report_pe.mac_cycles_active
    assert report_vec.mac_cycles_total == report_pe.mac_cycles_total
    assert report_vec.cycles == report_pe.cycles


@pytest.mark.slow
def test_exhaustive_policy_grid_small_matrices():
    """Every policy x thread count on a fixed adversarial matrix set."""
    rng = np.random.default_rng(1234)
    x = rng.choice(_ACT_SPECIALS, size=(12, 16)).astype(np.int64)
    w = rng.choice(_WGT_SPECIALS, size=(16, 9)).astype(np.int64)
    for policy in POLICY_NAMES:
        for threads in (1, 2, 4):
            fast = NBSMTMatmul(threads, policy, collect_stats=True)
            reference = NBSMTMatmul(
                threads, policy, collect_stats=True, force_reference=True
            )
            np.testing.assert_array_equal(
                fast.matmul(x, w), reference.matmul(x, w), err_msg=f"{policy}/T{threads}"
            )
            if threads > 1:
                _assert_stats_equal(
                    fast.stats, reference.stats, f"{policy}/T{threads}"
                )
