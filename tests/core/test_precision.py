"""On-the-fly precision reduction: bounds, idempotence and paper examples."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core.precision import (
    act_fits_4bit,
    prepare_act_operand,
    prepare_wgt_operand,
    reduce_act_to_4bit_msb,
    reduce_wgt_to_4bit_msb,
    reduction_error_bound,
    wgt_fits_4bit,
)


def test_paper_example_values():
    # Fig. 2a: 46 -> 48 (nibble 3) and 178 -> 176 (nibble 11).
    assert int(reduce_act_to_4bit_msb(46)) == 48
    assert int(reduce_act_to_4bit_msb(178)) == 176


def test_reduced_values_are_multiples_of_16():
    values = np.arange(256)
    reduced = reduce_act_to_4bit_msb(values)
    assert np.all(reduced % 16 == 0)
    assert np.all((reduced >= 0) & (reduced <= 240))


def test_weight_reduction_range():
    values = np.arange(-128, 128)
    reduced = reduce_wgt_to_4bit_msb(values)
    assert np.all(reduced % 16 == 0)
    assert np.all((reduced >= -128) & (reduced <= 112))


@given(st.integers(min_value=0, max_value=255))
def test_act_reduction_error_bound(value):
    error = abs(int(reduce_act_to_4bit_msb(value)) - value)
    assert error <= reduction_error_bound() or value > 240 + reduction_error_bound()
    # Values above 248 clip to 240; the clip error is bounded by 15.
    assert error <= 15


@given(st.integers(min_value=-128, max_value=127))
def test_wgt_reduction_error_bound(value):
    error = abs(int(reduce_wgt_to_4bit_msb(value)) - value)
    assert error <= 15


def test_reduction_is_idempotent():
    values = np.arange(256)
    once = reduce_act_to_4bit_msb(values)
    twice = reduce_act_to_4bit_msb(once)
    assert np.array_equal(once, twice)


def test_fits_4bit_boundaries():
    assert bool(act_fits_4bit(0))
    assert bool(act_fits_4bit(15))
    assert not bool(act_fits_4bit(16))
    assert bool(wgt_fits_4bit(-8))
    assert bool(wgt_fits_4bit(7))
    assert not bool(wgt_fits_4bit(8))
    assert not bool(wgt_fits_4bit(-9))


@given(st.integers(min_value=0, max_value=255))
def test_prepare_act_operand_reconstruction(value):
    nibble, shift = prepare_act_operand(value)
    reconstructed = int(nibble) * (16 if int(shift) else 1)
    if value <= 15:
        assert reconstructed == value
        assert int(shift) == 0
    else:
        assert reconstructed == int(reduce_act_to_4bit_msb(value))
        assert int(shift) == 1
    assert 0 <= int(nibble) <= 15


@given(st.integers(min_value=-128, max_value=127))
def test_prepare_wgt_operand_reconstruction(value):
    nibble, shift = prepare_wgt_operand(value)
    reconstructed = int(nibble) * (16 if int(shift) else 1)
    if -8 <= value <= 7:
        assert reconstructed == value
    else:
        assert reconstructed == int(reduce_wgt_to_4bit_msb(value))
    assert -8 <= int(nibble) <= 15
