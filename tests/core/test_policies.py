"""Packing-policy registry semantics."""

import pytest

from repro.core.policies import (
    DEFAULT_POLICY_NAME,
    POLICY_NAMES,
    PackingPolicy,
    default_policy_for,
    get_policy,
)


def test_registry_contains_table_iii_columns():
    for name in ("min", "S", "A", "Aw", "S+A", "S+Aw", "W", "aW", "S+W", "S+aW"):
        assert name in POLICY_NAMES


def test_get_policy_unknown_name():
    with pytest.raises(KeyError):
        get_policy("does-not-exist")


def test_default_policy_is_s_plus_a():
    assert get_policy(DEFAULT_POLICY_NAME).sparsity
    assert get_policy(DEFAULT_POLICY_NAME).width_primary
    assert get_policy(DEFAULT_POLICY_NAME).reduce == "act"


def test_default_policy_for_resnet50_reduces_weights():
    assert default_policy_for("resnet50").reduce == "wgt"
    assert default_policy_for("resnet18").reduce == "act"
    assert default_policy_for("googlenet").name == "S+A"


def test_policy_flag_combinations():
    s_policy = get_policy("S")
    assert s_policy.sparsity and not s_policy.width_primary
    aw_policy = get_policy("Aw")
    assert aw_policy.width_primary and aw_policy.width_secondary
    assert not aw_policy.sparsity
    weight_family = get_policy("S+aW")
    assert weight_family.reduce == "wgt"
    assert weight_family.width_secondary


def test_invalid_policy_construction():
    with pytest.raises(ValueError):
        PackingPolicy("bad", sparsity=True, width_primary=False,
                      width_secondary=True)
    with pytest.raises(ValueError):
        PackingPolicy("bad", sparsity=True, width_primary=True,
                      width_secondary=False, reduce="other")


def test_policies_are_frozen():
    policy = get_policy("S+A")
    with pytest.raises(AttributeError):
        policy.sparsity = False
