"""Shared fixtures for the test suite.

Heavyweight artifacts (the fast-trained zoo model and its harness) are
session-scoped and cached on disk under ``artifacts/`` so repeated test runs
do not re-train.

The tiny reference stack (dataset, trained CNN, harness) is built by
:mod:`repro.serve.conformance` -- the same deterministic recipe that
produced the committed golden serving traces -- so the fixtures and the
conformance suite are guaranteed to exercise the identical model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import conformance
from repro.utils.rng import new_rng


@pytest.fixture
def rng() -> np.random.Generator:
    return new_rng(1234)


def make_quantized_pair(
    rng: np.random.Generator,
    m: int = 48,
    k: int = 64,
    n: int = 24,
    act_sparsity: float = 0.5,
    wgt_sparsity: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """Random quantized activation/weight matrices with bell-shaped values."""
    x = np.clip(np.rint(np.abs(rng.normal(0.0, 30.0, (m, k)))), 0, 255)
    x[rng.random((m, k)) < act_sparsity] = 0
    w = np.clip(np.rint(rng.normal(0.0, 25.0, (k, n))), -127, 127)
    w[rng.random((k, n)) < wgt_sparsity] = 0
    return x.astype(np.int64), w.astype(np.int64)


@pytest.fixture
def quantized_pair(rng) -> tuple[np.ndarray, np.ndarray]:
    return make_quantized_pair(rng)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small dataset for fast end-to-end tests."""
    return conformance.reference_dataset()


@pytest.fixture(scope="session")
def tiny_trained_model(tiny_dataset):
    """A tiny CNN trained for a couple of epochs on the tiny dataset."""
    return conformance.reference_model(tiny_dataset)


@pytest.fixture(scope="session")
def tiny_trained_entry(tiny_dataset, tiny_trained_model):
    """A TrainedModel wrapper around the tiny CNN (for harness-level tests)."""
    from repro.models.zoo import TrainedModel
    from repro.nn.train import evaluate_accuracy

    accuracy = evaluate_accuracy(
        tiny_trained_model, tiny_dataset.val_images, tiny_dataset.val_labels
    )
    return TrainedModel(
        name="tinynet",
        model=tiny_trained_model,
        dataset=tiny_dataset,
        fp32_accuracy=accuracy,
        train_config={},
    )


@pytest.fixture(scope="session")
def tiny_harness(tiny_trained_entry):
    from repro.eval.harness import SysmtHarness

    harness = SysmtHarness(
        tiny_trained_entry,
        max_eval_images=96,
        calibration_images=96,
        batch_size=48,
    )
    yield harness
    harness.close()
